"""Real-world applications driven through the OMPC programming model."""
