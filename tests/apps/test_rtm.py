"""Tests for RTM imaging and the distributed Awave application."""

import numpy as np
import pytest

from repro.apps.awave import (
    RtmConfig,
    VelocityModel,
    migrate_shot,
    rtm_cost_seconds,
    run_awave,
    sigsbee_like,
)
from repro.apps.awave.rtm import shot_positions, stack_images
from repro.core.config import OMPCConfig

FAST_OMPC = OMPCConfig(
    startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
    event_origin_overhead=0.0, event_handler_overhead=0.0,
    task_creation_overhead=0.0, schedule_unit_cost=0.0,
)


def layered_model(nz=70, nx=90):
    """Two-layer model with one sharp reflector for imaging checks."""
    vp = np.full((nz, nx), 2000.0)
    vp[nz // 2:, :] = 3000.0
    return VelocityModel("two-layer", vp, dx=10.0)


class TestRtmCost:
    def test_scales_with_problem_size(self):
        small = rtm_cost_seconds(100, 100, 1000)
        big = rtm_cost_seconds(200, 100, 1000)
        assert big == pytest.approx(2 * small)

    def test_validation(self):
        with pytest.raises(ValueError):
            rtm_cost_seconds(0, 10, 10)


class TestShotPositions:
    def test_even_spacing_within_margins(self):
        m = layered_model()
        pos = shot_positions(m, 4)
        assert len(pos) == 4
        assert pos == sorted(pos)
        assert pos[0] >= 4 and pos[-1] < m.nx

    def test_single_shot_centered_range(self):
        m = layered_model()
        (p,) = shot_positions(m, 1)
        assert 0 < p < m.nx

    def test_validation(self):
        with pytest.raises(ValueError):
            shot_positions(layered_model(), 0)


class TestStackImages:
    def test_sum(self):
        a, b = np.ones((2, 2)), np.full((2, 2), 2.0)
        np.testing.assert_array_equal(stack_images([a, b]), np.full((2, 2), 3.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stack_images([])


class TestMigrateShot:
    def test_image_focuses_energy_near_reflector(self):
        model = layered_model()
        config = RtmConfig(nt=500, f0=12.0, snapshot_every=4)
        image = migrate_shot(
            model, model.smoothed(10), source_ix=45, config=config
        )
        assert np.isfinite(image).all()
        assert np.abs(image).max() > 0
        # Energy density near the reflector depth (rows nz/2 +- 6) should
        # exceed the density in the shallow section above it (excluding
        # the source-dominated top rows).
        nz = model.nz
        near = np.abs(image[nz // 2 - 6: nz // 2 + 6, 10:-10]).mean()
        above = np.abs(image[10: nz // 2 - 8, 10:-10]).mean()
        assert near > above

    def test_homogeneous_model_weak_image(self):
        # No reflectors: migrating in the true (smooth, uniform) model
        # must produce far less focused energy below the source region.
        vp = np.full((70, 90), 2500.0)
        homo = VelocityModel("homo", vp, dx=10.0)
        config = RtmConfig(nt=400, snapshot_every=4)
        img_homo = migrate_shot(homo, homo, 45, config)
        img_layer = migrate_shot(
            layered_model(), layered_model().smoothed(10), 45, config
        )
        deep = slice(40, 60)
        assert (
            np.abs(img_layer[deep]).mean() > 3 * np.abs(img_homo[deep]).mean()
        )


class TestRunAwave:
    def test_weak_scaling_near_ideal(self):
        model = sigsbee_like(nx=60, nz=40)
        makespans = {}
        for workers in (1, 2, 4):
            res = run_awave(
                model,
                num_workers=workers,
                ompc_config=FAST_OMPC,
                compute_images=False,
            )
            makespans[workers] = res.makespan
            assert res.num_shots == workers
        # One shot per worker: wall time should stay nearly flat.
        assert makespans[4] < makespans[1] * 1.25

    def test_images_actually_computed_and_stacked(self):
        model = layered_model(nz=50, nx=60)
        res = run_awave(
            model,
            num_workers=2,
            config=RtmConfig(nt=200, snapshot_every=5),
            ompc_config=FAST_OMPC,
        )
        assert res.image.shape == model.vp.shape
        assert np.abs(res.image).max() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_awave(layered_model(), num_workers=0)
        from repro.cluster import ClusterSpec

        with pytest.raises(ValueError, match="num_workers"):
            run_awave(
                layered_model(), num_workers=2,
                cluster_spec=ClusterSpec(num_nodes=9),
            )

    def test_gpu_shots_accelerate(self):
        """§7 extension: shots offloaded to node-local GPUs run faster
        than the CPU second-level-parallel version on the same grid."""
        from repro.cluster import ClusterSpec, NodeSpec

        model = sigsbee_like(nx=60, nz=40)
        gpu_spec = ClusterSpec(
            num_nodes=3,
            node=NodeSpec(accelerators=1, accelerator_speed=200.0),
        )
        cpu = run_awave(
            model, num_workers=2, ompc_config=FAST_OMPC, compute_images=False
        )
        gpu = run_awave(
            model, num_workers=2, ompc_config=FAST_OMPC, compute_images=False,
            cluster_spec=gpu_spec, use_gpu=True,
        )
        assert gpu.run.counters.get("ompc.gpu_executions", 0) == 2
        assert cpu.run.counters.get("ompc.gpu_executions", 0) == 0
        # 200x single-core GPU vs 48-way threaded CPU shot: ~4x faster
        # on the shot kernels (overheads dilute the end-to-end ratio).
        assert gpu.makespan < cpu.makespan

    def test_model_replicated_not_invalidated(self):
        # The velocity model is read-only: every worker can hold a copy,
        # so the run must not retrieve/redistribute it between shots.
        model = sigsbee_like(nx=40, nz=30)
        res = run_awave(
            model, num_workers=3, ompc_config=FAST_OMPC, compute_images=False
        )
        counters = res.run.counters
        # The model is submitted/exchanged at most once per worker.
        data_moves = counters.get("ompc.events.submit", 0) + counters.get(
            "ompc.events.exchange_dst", 0
        )
        # 3 image allocs are not data moves; model to <=3 workers.
        assert data_moves <= 3
