"""The ``jobs`` subcommand: multi-tenant scheduling on one cluster.

Usage::

    python -m repro.bench jobs --policy backfill --nodes 17 --jobs 24
    python -m repro.bench jobs --policy all --seed 7
    python -m repro.bench jobs --trace workload.json --policy fifo
    python -m repro.bench jobs --overload --load 1 3 10 --policy all

Generates a seeded Poisson stream of Task Bench jobs (or replays a JSON
workload trace), runs it through the :class:`~repro.jobs.JobManager`
under the chosen admission policy, and prints the cluster-level report:
per-job wait/run/bounded-slowdown rows, queue-depth profile, and
space-shared utilization.  ``--policy all`` runs the same workload under
every policy and appends a comparison table — the quick-look version of
``benchmarks/bench_jobs_backfill.py``.

``--overload`` switches to the elastic overload scenario instead
(:class:`~repro.jobs.OverloadTrace` through the
:class:`~repro.jobs.ElasticJobManager`): a bursty multi-tenant day
replayed at each ``--load`` multiplier, reporting SLO attainment, shed
and dead-lettered fractions, and preemption counts — the quick-look
version of ``benchmarks/bench_jobs_overload.py``.  ``--json`` dumps the
exact counts for CI smoke assertions.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.cluster.machine import Cluster, ClusterSpec
from repro.jobs import (
    POLICIES,
    ElasticConfig,
    ElasticJobManager,
    JobManager,
    OverloadTrace,
    PoissonWorkload,
    format_jobs_report,
    jobs_from_json,
)

#: Canonical overload scenario: one source of truth shared by the CLI,
#: ``benchmarks/bench_jobs_overload.py``, the property tests, and the
#: CI overload-smoke job — change it in one place, re-pin CI numbers.
OVERLOAD_NODES = 17
OVERLOAD_SEED = 7


def overload_elastic_config() -> ElasticConfig:
    """Elastic knobs of the canonical overload scenario."""
    return ElasticConfig(
        rate=45.0,
        burst=10.0,
        queue_limit=24,
        initial_online=8,
        check_interval=0.005,
        warmup_time=0.02,
        cooldown=0.02,
        min_online=4,
        slo_bounded_slowdown=50.0,
    )


def overload_trace(seed: int = OVERLOAD_SEED, load: float = 1.0,
                   quick: bool = False):
    """The canonical bursty trace at a load multiplier."""
    return OverloadTrace(
        seed=seed, load=load, duration=0.4 if quick else 0.8
    ).generate()


def run_overload(
    policy: str,
    seed: int = OVERLOAD_SEED,
    load: float = 1.0,
    quick: bool = False,
    elastic: ElasticConfig | None = None,
):
    """Run the canonical overload scenario; returns (manager, report)."""
    trace = overload_trace(seed=seed, load=load, quick=quick)
    manager = ElasticJobManager(
        Cluster(ClusterSpec(num_nodes=OVERLOAD_NODES)),
        policy=policy,
        elastic=elastic or overload_elastic_config(),
    )
    return manager, manager.run(trace)


def overload_counts(manager, report) -> dict:
    """The exact integers CI pins (plus the SLO numbers)."""
    return {
        "submitted": report.total_jobs,
        "completed": report.completed,
        "failed": report.failed,
        "shed": report.shed,
        "dead_lettered": report.dead_lettered,
        "running": report.running,
        "accounted": report.accounted,
        "preempted": report.preempted,
        "requeued": report.requeued,
        "dead_letter_kinds": manager.dead_letters.by_kind(),
        "p99_bounded_slowdown": report.p99_bounded_slowdown,
        "slo_attainment": report.slo_attainment,
        "scale_ups": manager.autoscaler.scale_ups,
        "scale_downs": manager.autoscaler.scale_downs,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench jobs",
        description="Run a multi-tenant OMPC workload through the job "
        "manager and report scheduling metrics.",
    )
    parser.add_argument(
        "--policy",
        choices=sorted(POLICIES) + ["all"],
        default="backfill",
        help="admission policy (or 'all' for a comparison; "
        "default backfill)",
    )
    parser.add_argument("--nodes", type=int, default=17,
                        help="cluster size incl. the manager node "
                        "(default 17 -> 16-node worker pool)")
    parser.add_argument("--jobs", type=int, default=24,
                        help="jobs in the generated workload (default 24)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload seed (default 7)")
    parser.add_argument("--mean-interarrival", type=float, default=0.01,
                        help="mean Poisson inter-arrival time in "
                        "simulated seconds (default 0.01)")
    parser.add_argument("--trace", type=Path, default=None,
                        help="replay a JSON workload trace instead of "
                        "generating a Poisson stream")
    parser.add_argument("--quick", action="store_true",
                        help="small fast workload (8 jobs) for smoke tests")
    parser.add_argument("--no-per-job", action="store_true",
                        help="suppress the per-job table")
    parser.add_argument("--overload", action="store_true",
                        help="run the elastic overload scenario "
                        "(bursty trace through the elastic manager)")
    parser.add_argument("--load", type=float, nargs="+", default=[1.0],
                        help="overload load multipliers (default: 1)")
    parser.add_argument("--json", type=Path, default=None,
                        help="overload mode: write exact per-run counts "
                        "to this JSON file (CI smoke input)")
    return parser


def _workload(args: argparse.Namespace):
    if args.trace is not None:
        return jobs_from_json(args.trace.read_text())
    jobs = 8 if args.quick else args.jobs
    return PoissonWorkload(
        seed=args.seed,
        jobs=jobs,
        mean_interarrival=args.mean_interarrival,
        large=(8, 12),
        large_fraction=0.35,
        steps=(3, 6),
        task_seconds=(0.02, 0.08),
    ).generate()


def _run_policy(policy: str, workload, nodes: int):
    cluster = Cluster(ClusterSpec(num_nodes=nodes))
    manager = JobManager(cluster, policy=policy)
    return manager.run(workload)


def _main_overload(args: argparse.Namespace) -> int:
    from repro.bench.report import format_table

    policies = sorted(POLICIES) if args.policy == "all" else [args.policy]
    rows = []
    payload: dict[str, dict] = {}
    for load in args.load:
        for policy in policies:
            manager, report = run_overload(
                policy, seed=args.seed, load=load, quick=args.quick
            )
            counts = overload_counts(manager, report)
            payload[f"{load:g}x/{policy}"] = counts
            print(f"-- load {load:g}x, policy {policy} --")
            print(format_jobs_report(report, per_job=False))
            print()
            rows.append([
                f"{load:g}x", policy,
                counts["submitted"], counts["completed"],
                f"{report.shed_fraction * 100:.1f}",
                counts["dead_lettered"], counts["preempted"],
                f"{counts['p99_bounded_slowdown']:.2f}",
                f"{counts['slo_attainment'] * 100:.1f}",
            ])
    print(format_table(
        ["load", "policy", "jobs", "done", "shed %", "DLQ",
         "preempt", "p99 b.slow", "SLO %"],
        rows,
        title=(
            f"overload scenario — {OVERLOAD_NODES - 1}-node elastic pool "
            f"(seed {args.seed}{', quick' if args.quick else ''})"
        ),
    ))
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"\nexact counts -> {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.overload:
        return _main_overload(args)
    workload = _workload(args)
    largest = max(spec.nodes for _, spec in workload) if workload else 0
    if largest > args.nodes - 1:
        raise SystemExit(
            f"workload needs {largest}-node partitions; pass "
            f"--nodes >= {largest + 1}"
        )

    policies = sorted(POLICIES) if args.policy == "all" else [args.policy]
    reports = {}
    for policy in policies:
        report = _run_policy(policy, workload, args.nodes)
        reports[policy] = report
        print(format_jobs_report(report, per_job=not args.no_per_job))
        print()

    if len(reports) > 1:
        from repro.bench.report import format_table

        rows = [
            [
                name,
                f"{r.utilization * 100:.1f}",
                f"{r.mean_wait:.4f}",
                f"{r.mean_bounded_slowdown:.2f}",
                r.backfilled,
                r.completed,
                r.failed,
            ]
            for name, r in reports.items()
        ]
        print(format_table(
            ["policy", "util %", "mean wait (s)", "mean b.slowdown",
             "backfills", "completed", "failed"],
            rows,
            title="policy comparison (same workload)",
        ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
