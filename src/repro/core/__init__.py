"""The OMPC runtime: device plugin, event system, data manager, scheduler.

This is the paper's primary contribution (§3–§4): an OpenMP offloading
device that models a *cluster node*, built from

* a libomptarget-style device-plugin interface (:mod:`repro.core.device`)
  and its cluster implementation (:mod:`repro.core.plugin`),
* an MPI-based distributed event system (:mod:`repro.core.events`) with
  per-event tag isolation (:mod:`repro.core.tags`),
* a data manager that keeps buffer copies coherent across nodes and
  forwards worker-to-worker (:mod:`repro.core.datamanager`),
* a HEFT-based static task scheduler with the paper's adaptations
  (:mod:`repro.core.scheduler`), and
* the orchestrating runtime (:mod:`repro.core.runtime`).
"""

from repro.core.config import OMPCConfig
from repro.core.datamanager import DataManager
from repro.core.faultmodel import (
    FaultPlan,
    LinkDegradation,
    LinkLoss,
    MemoryPressure,
    NodeHang,
    NodeStall,
)
from repro.core.faults import (
    FailoverEvent,
    FailureInjector,
    FaultTolerantRuntime,
    FTRunResult,
    HeartbeatRing,
    NodeFailure,
    RecoveryError,
)
from repro.core.gossip import GossipMembership
from repro.core.headlog import HeadLog, LogRecord, Replicator
from repro.core.memory import DeviceMemory, DeviceMemoryError
from repro.core.runtime import OMPCRunResult, OMPCRuntime
from repro.core.shard import (
    ShardDirectory,
    ShardedRuntime,
    ShardPlaneError,
    ShardRunResult,
    ShardStats,
)
from repro.core.scheduler import (
    HeftScheduler,
    MinLoadScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Schedule,
)

__all__ = [
    "DataManager",
    "DeviceMemory",
    "DeviceMemoryError",
    "FTRunResult",
    "FailoverEvent",
    "FailureInjector",
    "FaultPlan",
    "FaultTolerantRuntime",
    "GossipMembership",
    "HeadLog",
    "HeartbeatRing",
    "HeftScheduler",
    "LogRecord",
    "LinkDegradation",
    "LinkLoss",
    "MemoryPressure",
    "MinLoadScheduler",
    "NodeFailure",
    "NodeHang",
    "NodeStall",
    "OMPCConfig",
    "OMPCRunResult",
    "OMPCRuntime",
    "RandomScheduler",
    "RecoveryError",
    "Replicator",
    "RoundRobinScheduler",
    "Schedule",
    "ShardDirectory",
    "ShardPlaneError",
    "ShardRunResult",
    "ShardStats",
    "ShardedRuntime",
]
