"""Tests for Resource, Store, and Container."""

import pytest

from repro.sim import Resource, Simulator, Store
from repro.sim.errors import SimulationError
from repro.sim.resources import Container


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grant_within_capacity_is_immediate(self, sim):
        res = Resource(sim, capacity=2)

        def proc():
            yield res.request()
            return sim.now

        p = sim.process(proc())
        assert sim.run(until=p) == 0.0
        assert res.in_use == 1

    def test_queueing_beyond_capacity(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def holder():
            yield res.request()
            log.append(("hold", sim.now))
            yield sim.timeout(5.0)
            res.release()

        def waiter():
            yield sim.timeout(1.0)
            yield res.request()
            log.append(("acquired", sim.now))
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert log == [("hold", 0.0), ("acquired", 5.0)]

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def holder():
            yield res.request()
            yield sim.timeout(1.0)
            res.release()

        def waiter(wid):
            yield sim.timeout(0.1 * (wid + 1))
            yield res.request()
            order.append(wid)
            res.release()

        sim.process(holder())
        for wid in range(3):
            sim.process(waiter(wid))
        sim.run()
        assert order == [0, 1, 2]

    def test_release_idle_raises(self, sim):
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_counters(self, sim):
        res = Resource(sim, capacity=3)

        def proc():
            yield res.request()
            yield res.request()

        sim.process(proc())
        sim.run()
        assert res.in_use == 2
        assert res.available == 1
        assert res.queue_length == 0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def proc():
            yield store.put("a")
            item = yield store.get()
            return item

        p = sim.process(proc())
        assert sim.run(until=p) == "a"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def getter():
            item = yield store.get()
            return (item, sim.now)

        def putter():
            yield sim.timeout(3.0)
            yield store.put("late")

        p = sim.process(getter())
        sim.process(putter())
        assert sim.run(until=p) == ("late", 3.0)

    def test_fifo_item_order(self, sim):
        store = Store(sim)

        def proc():
            for item in "abc":
                yield store.put(item)
            out = []
            for _ in range(3):
                out.append((yield store.get()))
            return out

        p = sim.process(proc())
        assert sim.run(until=p) == ["a", "b", "c"]

    def test_filtered_get_skips_nonmatching(self, sim):
        store = Store(sim)

        def proc():
            yield store.put(("x", 1))
            yield store.put(("y", 2))
            item = yield store.get(lambda it: it[0] == "y")
            leftover = yield store.get()
            return item, leftover

        p = sim.process(proc())
        assert sim.run(until=p) == (("y", 2), ("x", 1))

    def test_filtered_getters_matched_in_order(self, sim):
        store = Store(sim)
        received = {}

        def getter(name, want):
            item = yield store.get(lambda it: it == want)
            received[name] = (item, sim.now)

        def putter():
            yield sim.timeout(1.0)
            yield store.put("b")
            yield sim.timeout(1.0)
            yield store.put("a")

        sim.process(getter("first", "a"))
        sim.process(getter("second", "b"))
        sim.process(putter())
        sim.run()
        assert received == {"first": ("a", 2.0), "second": ("b", 1.0)}

    def test_bounded_capacity_blocks_putter(self, sim):
        store = Store(sim, capacity=1)
        log = []

        def putter():
            yield store.put(1)
            log.append(("put1", sim.now))
            yield store.put(2)
            log.append(("put2", sim.now))

        def getter():
            yield sim.timeout(4.0)
            yield store.get()

        sim.process(putter())
        sim.process(getter())
        sim.run()
        assert log == [("put1", 0.0), ("put2", 4.0)]

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_peek_does_not_remove(self, sim):
        store = Store(sim)

        def proc():
            yield store.put("only")
            assert store.peek() == "only"
            assert store.peek(lambda it: it == "nope") is None
            assert len(store) == 1
            item = yield store.get()
            return item

        p = sim.process(proc())
        assert sim.run(until=p) == "only"


class TestContainer:
    def test_get_blocks_until_level(self, sim):
        box = Container(sim, capacity=10.0)

        def getter():
            yield box.get(5.0)
            return sim.now

        def putter():
            yield sim.timeout(2.0)
            yield box.put(5.0)

        p = sim.process(getter())
        sim.process(putter())
        assert sim.run(until=p) == 2.0
        assert box.level == 0.0

    def test_put_blocks_at_capacity(self, sim):
        box = Container(sim, capacity=10.0, init=10.0)
        log = []

        def putter():
            yield box.put(1.0)
            log.append(sim.now)

        def getter():
            yield sim.timeout(3.0)
            yield box.get(2.0)

        sim.process(putter())
        sim.process(getter())
        sim.run()
        assert log == [3.0]
        assert box.level == 9.0

    def test_over_capacity_get_rejected(self, sim):
        box = Container(sim, capacity=5.0)
        with pytest.raises(ValueError):
            box.get(6.0)

    def test_negative_amounts_rejected(self, sim):
        box = Container(sim, capacity=5.0)
        with pytest.raises(ValueError):
            box.put(-1.0)
        with pytest.raises(ValueError):
            box.get(-1.0)

    def test_bad_init(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=1.0, init=2.0)
