"""Tests for admission policies: FIFO, fair-share, EASY backfill.

The policies only consult the manager through a narrow surface
(``pool.free_count``, ``running``, ``tenant_usage``, ``sim.now``,
``estimated_end_of``), so these tests drive them with a lightweight
stub manager and hand-built job lists — no simulation required.
"""

import pytest

from repro.jobs import (
    EasyBackfillPolicy,
    FairSharePolicy,
    FifoPolicy,
    Job,
    JobSpec,
    make_policy,
)


class _StubPool:
    def __init__(self, free):
        self.free_count = free


class _StubManager:
    """Just the surface the policies consult."""

    def __init__(self, free=8, now=0.0):
        self.pool = _StubPool(free)
        self.running = {}
        self.tenant_usage = {}
        self.now = now

    @property
    def sim(self):
        return self

    def start(self, job, start_time):
        job.start_time = start_time
        job.partition = tuple(range(100, 100 + job.spec.nodes))
        self.running[job.job_id] = job

    def estimated_end_of(self, job):
        if job.start_time is None or job.spec.est_runtime <= 0:
            return float("inf")
        return job.start_time + job.spec.est_runtime


def job(job_id, nodes, submit=0.0, tenant="t", priority=0, est=1.0):
    spec = JobSpec(
        name=f"j{job_id}", program=lambda: None, nodes=nodes,
        tenant=tenant, priority=priority, est_runtime=est,
    )
    return Job(job_id, spec, submit_time=submit)


class TestFifo:
    def test_order_and_head_of_line_blocking(self):
        mgr = _StubManager(free=4)
        queue = [job(0, 3, submit=0.0), job(1, 6, submit=0.1),
                 job(2, 2, submit=0.2)]
        picks = FifoPolicy().select(queue, mgr)
        # j0 fits (3<=4); j1 doesn't (6>1 remaining) and BLOCKS j2.
        assert [(j.job_id, bf) for j, bf in picks] == [(0, False)]

    def test_priority_beats_arrival(self):
        mgr = _StubManager(free=3)
        queue = [job(0, 3, submit=0.0, priority=0),
                 job(1, 3, submit=0.5, priority=5)]
        picks = FifoPolicy().select(queue, mgr)
        assert [j.job_id for j, _ in picks] == [1]


class TestFairShare:
    def test_light_tenant_jumps_heavy_tenant(self):
        mgr = _StubManager(free=3)
        mgr.tenant_usage = {"heavy": 100.0, "light": 1.0}
        queue = [job(0, 3, submit=0.0, tenant="heavy"),
                 job(1, 3, submit=0.5, tenant="light")]
        picks = FairSharePolicy().select(queue, mgr)
        assert [j.job_id for j, _ in picks] == [1]

    def test_unknown_tenant_counts_as_zero_usage(self):
        mgr = _StubManager(free=3)
        mgr.tenant_usage = {"old": 10.0}
        queue = [job(0, 3, tenant="old"), job(1, 3, submit=1.0, tenant="new")]
        picks = FairSharePolicy().select(queue, mgr)
        assert [j.job_id for j, _ in picks] == [1]


class TestEasyBackfill:
    def test_backfills_within_shadow_window(self):
        mgr = _StubManager(free=4, now=0.0)
        wide = job(9, 10, submit=-1.0, est=5.0)  # running, releases at t=5
        mgr.start(wide, 0.0)
        # Head needs 13 of the 14 that exist -> shadow t=5, extra = 1.
        queue = [job(0, 13, submit=0.0, est=1.0),  # head: blocked
                 job(1, 2, submit=0.1, est=2.0),   # fits window (0+2 <= 5)
                 job(2, 2, submit=0.2, est=9.0)]   # would delay the head
        picks = EasyBackfillPolicy().select(queue, mgr)
        assert [(j.job_id, bf) for j, bf in picks] == [(1, True)]

    def test_unestimated_job_only_fills_extra_nodes(self):
        # Head needs 6; the running job releases 10 at t=5, so the head's
        # reservation uses 6 of the 4+10 -> extra = 8.  An est=0 job can
        # never prove it ends before the shadow time, but 2 <= extra.
        mgr = _StubManager(free=4, now=0.0)
        wide = job(9, 10, submit=-1.0, est=5.0)
        mgr.start(wide, 0.0)
        queue = [job(0, 6, submit=0.0, est=1.0),
                 job(1, 2, submit=0.1, est=0.0)]
        picks = EasyBackfillPolicy().select(queue, mgr)
        assert [(j.job_id, bf) for j, bf in picks] == [(1, True)]

    def test_reduces_to_fcfs_when_everything_fits(self):
        mgr = _StubManager(free=8)
        queue = [job(0, 3), job(1, 3, submit=0.1), job(2, 2, submit=0.2)]
        picks = EasyBackfillPolicy().select(queue, mgr)
        assert [(j.job_id, bf) for j, bf in picks] == [
            (0, False), (1, False), (2, False)]

    def test_never_delays_the_reservation(self):
        # Every queued small job's estimate overruns the shadow time and
        # the extra pool is empty -> nothing backfills.
        mgr = _StubManager(free=4, now=0.0)
        wide = job(9, 10, submit=-1.0, est=5.0)
        mgr.start(wide, 0.0)
        queue = [job(0, 14, submit=0.0, est=1.0),  # reserves everything
                 job(1, 2, submit=0.1, est=9.0)]
        picks = EasyBackfillPolicy().select(queue, mgr)
        assert picks == []


class TestRegistry:
    def test_make_policy_by_name(self):
        assert make_policy("fifo").name == "fifo"
        assert make_policy("fair").name == "fair"
        assert make_policy("backfill").name == "backfill"

    def test_make_policy_passthrough_and_unknown(self):
        policy = FifoPolicy()
        assert make_policy(policy) is policy
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("lottery")
