"""Tests for collective operations at several rank counts."""

import operator

import pytest

from repro.cluster import Cluster, ClusterSpec, NetworkSpec
from repro.mpi import MpiWorld
from repro.mpi.collectives import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
)


def run_collective(n, body, root=0):
    """Run `body(rank_handle, results_dict)` on every rank; return results."""
    cluster = Cluster(
        ClusterSpec(num_nodes=n, network=NetworkSpec(latency=1e-6, bandwidth=1e10))
    )
    mpi = MpiWorld(cluster, overhead=0.0)
    results = {}
    for rid in range(n):
        cluster.sim.process(body(mpi.world.rank(rid), results), name=f"rank{rid}")
    cluster.sim.run(check_deadlock=True)
    assert len(results) == n
    return results


SIZES = [1, 2, 3, 4, 5, 8, 13, 16]


class TestBcast:
    @pytest.mark.parametrize("n", SIZES)
    def test_all_ranks_receive(self, n):
        def body(rank, results):
            value = "payload" if rank.rank_id == 0 else None
            got = yield from bcast(rank, value, nbytes=10, root=0)
            results[rank.rank_id] = got

        results = run_collective(n, body)
        assert all(v == "payload" for v in results.values())

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_nonzero_root(self, root):
        def body(rank, results):
            value = f"from-{root}" if rank.rank_id == root else None
            got = yield from bcast(rank, value, root=root)
            results[rank.rank_id] = got

        results = run_collective(4, body, root=root)
        assert all(v == f"from-{root}" for v in results.values())


class TestGather:
    @pytest.mark.parametrize("n", SIZES)
    def test_root_collects_all(self, n):
        def body(rank, results):
            got = yield from gather(rank, rank.rank_id * 2, root=0)
            results[rank.rank_id] = got

        results = run_collective(n, body)
        assert results[0] == [i * 2 for i in range(n)]
        assert all(results[i] is None for i in range(1, n))


class TestReduce:
    @pytest.mark.parametrize("n", SIZES)
    def test_sum_to_root(self, n):
        def body(rank, results):
            got = yield from reduce(rank, rank.rank_id + 1, operator.add, root=0)
            results[rank.rank_id] = got

        results = run_collective(n, body)
        assert results[0] == n * (n + 1) // 2
        assert all(results[i] is None for i in range(1, n))

    def test_max_reduction(self):
        def body(rank, results):
            got = yield from reduce(rank, rank.rank_id, max, root=0)
            results[rank.rank_id] = got

        results = run_collective(6, body)
        assert results[0] == 5


class TestAllreduce:
    @pytest.mark.parametrize("n", SIZES)
    def test_sum_everywhere(self, n):
        def body(rank, results):
            got = yield from allreduce(rank, rank.rank_id + 1, operator.add)
            results[rank.rank_id] = got

        results = run_collective(n, body)
        assert all(v == n * (n + 1) // 2 for v in results.values())


class TestBarrier:
    @pytest.mark.parametrize("n", SIZES)
    def test_no_rank_leaves_before_last_enters(self, n):
        cluster = Cluster(ClusterSpec(num_nodes=n))
        mpi = MpiWorld(cluster, overhead=0.0)
        sim = cluster.sim
        enter, leave = {}, {}

        def body(rid):
            # Stagger arrival: rank i enters the barrier at t=i.
            yield sim.timeout(float(rid))
            enter[rid] = sim.now
            yield from barrier(mpi.world.rank(rid))
            leave[rid] = sim.now

        for rid in range(n):
            sim.process(body(rid), name=f"rank{rid}")
        sim.run(check_deadlock=True)
        last_entry = max(enter.values())
        assert all(t >= last_entry for t in leave.values())


class TestScatter:
    @pytest.mark.parametrize("n", SIZES)
    def test_each_rank_gets_its_slice(self, n):
        def body(rank, results):
            values = [f"v{i}" for i in range(n)] if rank.rank_id == 0 else None
            got = yield from scatter(rank, values, root=0)
            results[rank.rank_id] = got

        results = run_collective(n, body)
        assert results == {i: f"v{i}" for i in range(n)}

    def test_root_without_values_rejected(self):
        cluster = Cluster(ClusterSpec(num_nodes=2))
        mpi = MpiWorld(cluster, overhead=0.0)

        def bad_root():
            yield from scatter(mpi.world.rank(0), None, root=0)

        cluster.sim.process(bad_root())
        with pytest.raises(ValueError):
            cluster.sim.run()


class TestAllgather:
    @pytest.mark.parametrize("n", SIZES)
    def test_everyone_gets_everything(self, n):
        def body(rank, results):
            got = yield from allgather(rank, f"v{rank.rank_id}")
            results[rank.rank_id] = got

        results = run_collective(n, body)
        expected = [f"v{i}" for i in range(n)]
        assert all(v == expected for v in results.values())


class TestAlltoall:
    @pytest.mark.parametrize("n", SIZES)
    def test_personalized_exchange(self, n):
        def body(rank, results):
            outgoing = [f"{rank.rank_id}->{j}" for j in range(n)]
            got = yield from alltoall(rank, outgoing)
            results[rank.rank_id] = got

        results = run_collective(n, body)
        for rid, got in results.items():
            assert got == [f"{src}->{rid}" for src in range(n)]

    def test_wrong_length_rejected(self):
        cluster = Cluster(ClusterSpec(num_nodes=3))
        mpi = MpiWorld(cluster, overhead=0.0)

        def bad():
            yield from alltoall(mpi.world.rank(0), [1, 2])

        cluster.sim.process(bad())
        with pytest.raises(ValueError):
            cluster.sim.run()


class TestVciPool:
    def test_round_robin_selection(self):
        from repro.mpi import CommunicatorPool

        cluster = Cluster(ClusterSpec(num_nodes=2))
        mpi = MpiWorld(cluster)
        pool = CommunicatorPool(mpi, 4)
        assert len(pool) == 4
        assert pool.select(0) is pool.comms[0]
        assert pool.select(5) is pool.comms[1]
        assert pool.select(4) is pool.comms[0]
        # Distinct communicator ids.
        assert len({c.comm_id for c in pool.comms}) == 4

    def test_bad_pool_size(self):
        from repro.mpi import CommunicatorPool

        cluster = Cluster(ClusterSpec(num_nodes=2))
        mpi = MpiWorld(cluster)
        with pytest.raises(ValueError):
            CommunicatorPool(mpi, 0)
        pool = CommunicatorPool(mpi, 2)
        with pytest.raises(ValueError):
            pool.select(-1)
