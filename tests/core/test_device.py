"""Tests for the device-plugin interface and the cluster plugin."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.device import LoopbackPlugin
from repro.core.plugin import ClusterPlugin
from repro.omp.task import Buffer, Task, TaskKind, depend_inout
from repro.sim import Simulator


class TestLoopbackPlugin:
    def test_full_data_lifecycle(self):
        sim = Simulator()
        plugin = LoopbackPlugin(sim, num_devices=2)

        def main():
            yield from plugin.data_alloc(0, 1)
            yield from plugin.data_submit(0, 1, "payload", 100)
            yield from plugin.data_exchange(0, 1, 1, 100)
            back = yield from plugin.data_retrieve(1, 1, 100)
            yield from plugin.data_delete(0, 1)
            return back

        p = sim.process(main())
        assert sim.run(until=p) == "payload"
        assert 1 not in plugin.tables[0]
        assert plugin.tables[1][1] == "payload"

    def test_run_target_region_charges_cost_and_runs_fn(self):
        sim = Simulator()
        plugin = LoopbackPlugin(sim)
        buf = Buffer(8)
        seen = []
        task = Task(
            task_id=3,
            kind=TaskKind.TARGET,
            deps=(depend_inout(buf),),
            cost=1.5,
            fn=lambda a: seen.append(a),
        )

        def main():
            yield from plugin.data_submit(0, buf.buffer_id, 42, 8)
            yield from plugin.run_target_region(0, task)

        p = sim.process(main())
        sim.run(until=p)
        assert sim.now == pytest.approx(1.5)
        assert seen == [42]
        assert plugin.executed == [(0, 3)]

    def test_op_latency(self):
        sim = Simulator()
        plugin = LoopbackPlugin(sim, op_latency=0.1)

        def main():
            yield from plugin.data_alloc(0, 1)

        p = sim.process(main())
        sim.run(until=p)
        assert sim.now == pytest.approx(0.1)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LoopbackPlugin(sim, num_devices=0)
        with pytest.raises(ValueError):
            LoopbackPlugin(sim, op_latency=-1)


class TestClusterPlugin:
    def make(self, n=3):
        cluster = Cluster(ClusterSpec(num_nodes=n))
        cfg = OMPCConfig(
            first_event_interval=0.0,
            event_origin_overhead=0.0,
            event_handler_overhead=0.0,
        )
        plugin = ClusterPlugin(cluster, cfg)
        plugin.start()
        return cluster, plugin

    def test_one_device_per_worker(self):
        cluster, plugin = self.make(n=5)
        assert plugin.number_of_devices() == 4
        assert plugin.node_of(0) == 1
        assert plugin.device_of(4) == 3

    def test_id_mapping_validation(self):
        cluster, plugin = self.make()
        with pytest.raises(ValueError):
            plugin.node_of(99)
        with pytest.raises(ValueError):
            plugin.device_of(0)  # the head node is not a device

    def test_requires_worker(self):
        with pytest.raises(ValueError):
            ClusterPlugin(Cluster(ClusterSpec(num_nodes=1)))

    def test_data_path_through_event_system(self):
        cluster, plugin = self.make()

        def main():
            yield from plugin.data_submit(0, 7, "x", 100)
            yield from plugin.data_exchange(0, 1, 7, 100)
            back = yield from plugin.data_retrieve(1, 7, 100)
            yield from plugin.shutdown()
            return back

        p = cluster.sim.process(main())
        assert cluster.sim.run(until=p) == "x"
        # Device 0 is node 1, device 1 is node 2.
        assert plugin.events.memories[1].read(7) == "x"
        assert plugin.events.memories[2].read(7) == "x"

    def test_run_target_region(self):
        cluster, plugin = self.make()
        task = Task(task_id=0, kind=TaskKind.TARGET, cost=1.0)

        def main():
            yield from plugin.run_target_region(1, task)

        p = cluster.sim.process(main())
        cluster.sim.run(until=p)
        assert cluster.sim.now == pytest.approx(1.0, rel=0.01)
