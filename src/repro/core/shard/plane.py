"""The sharded control plane: K shard managers drive one task graph.

The classic runtime (:class:`~repro.core.runtime.OMPCRuntime`) is the
paper's design: one head node owns the whole task graph, and every
in-flight task blocks one of ``head_threads`` OpenMP slots — the §7
knee.  :class:`ShardedRuntime` breaks the knee by partitioning control:

* nodes ``0..K-1`` are reserved *shard-manager* nodes (like the job
  manager's reserved node in :mod:`repro.cluster.partition`); node 0
  doubles as the host (shard 0 owns classical and ``exit data`` work);
* the remaining nodes are compute workers, sliced contiguously so each
  shard schedules — with its **own scheduler instance** over its own
  subgraph — and dispatches — with its **own** ``head_threads`` slot
  pool — against a private node set;
* task/buffer ownership comes from the
  :class:`~repro.core.shard.directory.ShardDirectory` (consistent hash
  of the affinity key by default, pluggable policy hook);
* cross-shard dependences resolve by **lease/subscription**: at plane
  start-up each shard sends one LEASE per remote producer task it
  depends on; the owner replies with a NOTIFY when (or immediately if)
  the producer completed.  No polling, and consumers dedup
  notifications by task id exactly like the PR 3 worker-side dispatch
  dedup — a failover's replayed messages are no-ops;
* each shard reuses :mod:`repro.core.headlog` for failover: dispatches,
  completions, and processed notifications append to a per-shard
  commit log replicated to ``head_standbys`` standbys drawn from the
  shard's worker slice.  On a gossip-confirmed manager death the
  standard election/adopt/replay sequence promotes a standby, the
  shard's slot pool and service loops restart on the winner, leases
  are re-sent for unsatisfied subscriptions (closing the lost-NOTIFY
  window) and in-flight tasks are re-dispatched with ``dedup=True``;
* membership is :class:`~repro.core.gossip.GossipMembership` (SWIM),
  not the O(N) heartbeat ring — required whenever failures are
  injected, optional otherwise.

Input staging is *sharded ingest*: each manager stages its shard's
host-resident buffers itself (``events.submit`` with the manager as
origin), so enter-data traffic does not all funnel through node 0.
Host-side retrieval (``exit data``) still lands on node 0, which owns
that work by construction.

Deliberately out of scope (validated): the tiered memory store and
broadcast events (single-head features, see ROADMAP), and failures of
node 0 itself — root-head failover is
:class:`~repro.core.faults.FaultTolerantRuntime`'s job.
"""

from __future__ import annotations

from repro.analysis.hooks import Analysis
from repro.cluster.machine import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.datamanager import HOST, DataManager, Move
from repro.core.events import EventSystem
from repro.core.gossip import GossipMembership
from repro.core.headlog import HeadLog, Replicator
from repro.core.scheduler import HeftScheduler, Schedule, Scheduler
from repro.core.shard.directory import PartitionPolicy, ShardDirectory
from repro.core.shard.messages import LEASE_TAG, NOTIFY_TAG
from repro.core.shard.report import ShardRunResult, ShardStats
from repro.mpi.comm import MpiWorld
from repro.obs.observer import Observer
from repro.omp.api import OmpProgram
from repro.omp.task import Task, TaskKind
from repro.sim.errors import Interrupt, SimulationError
from repro.sim.primitives import AllOf
from repro.sim.resources import Resource


class ShardPlaneError(SimulationError):
    """Unrecoverable sharded-control-plane failure."""


class _Shard:
    """Mutable runtime state of one shard manager."""

    __slots__ = (
        "sid", "manager", "nodes", "slots", "procs", "issued",
        "subs", "notified", "log", "repl", "pumps", "failing",
        "stats", "sub_edges",
    )

    def __init__(self, sid: int, manager: int, nodes: tuple[int, ...]):
        self.sid = sid
        self.manager = manager
        self.nodes = nodes
        self.slots: Resource | None = None
        #: Live control-frame processes (interrupted on failover).
        self.procs: set = set()
        #: Task ids ever handed to a control frame this epoch.
        self.issued: set[int] = set()
        #: producer task id → subscriber shard ids (never popped: kept
        #: for failover re-notification).
        self.subs: dict[int, set[int]] = {}
        #: Remote producer ids whose NOTIFY this shard has processed.
        self.notified: set[int] = set()
        self.log: HeadLog | None = None
        self.repl: Replicator | None = None
        self.pumps: list = []
        self.failing = False
        self.stats: ShardStats | None = None
        self.sub_edges = 0


class _ShardClusterFacade:
    """What a shard's private scheduler sees: the full fabric and node
    table, but only the shard's compute slice as ``workers``."""

    def __init__(self, cluster, nodes: tuple[int, ...], manager: int):
        self._cluster = cluster
        self._nodes = nodes
        self._manager = manager
        self.network = cluster.network

    @property
    def num_nodes(self) -> int:
        return self._cluster.num_nodes

    @property
    def head(self):
        return self._cluster.node(self._manager)

    @property
    def workers(self):
        return [self._cluster.node(n) for n in self._nodes]

    def node(self, node_id: int):
        return self._cluster.node(node_id)


class ShardedRuntime:
    """Run OmpPrograms through K shard managers instead of one head.

    ``inject_failures`` is the chaos hook: ``((time, node), ...)``
    crashes of shard-manager nodes (never node 0 — see the module
    docstring), requiring ``gossip=True`` and ``head_standbys >= 1``.
    """

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        config: OMPCConfig | None = None,
        scheduler: Scheduler | None = None,
        policy: PartitionPolicy | None = None,
        inject_failures: tuple = (),
    ):
        cfg = config or OMPCConfig()
        k = cfg.head_shards
        if k < 2:
            raise ValueError(
                "ShardedRuntime needs head_shards >= 2 (use OMPCRuntime "
                "for the single-head plane)"
            )
        if cluster_spec.num_nodes < 2 * k:
            raise ValueError(
                f"{k} shards need >= {2 * k} nodes (one manager plus at "
                f"least one worker each), got {cluster_spec.num_nodes}"
            )
        if cfg.device_memory_bytes > 0 and cfg.eviction_policy != "none":
            raise ValueError(
                "the sharded control plane does not support the tiered "
                "memory store yet (single-head MemoryDirector)"
            )
        if cfg.broadcast_events:
            raise ValueError(
                "the sharded control plane does not support broadcast "
                "events yet"
            )
        injections = tuple(
            (float(t), int(node)) for t, node in inject_failures
        )
        if injections:
            if not cfg.gossip:
                raise ValueError(
                    "failure injection in sharded runs requires "
                    "gossip=True (the heartbeat ring assumes one head)"
                )
            if cfg.head_standbys < 1:
                raise ValueError(
                    "failure injection requires head_standbys >= 1 for "
                    "the per-shard replication log"
                )
            for _t, node in injections:
                if node == 0:
                    raise ValueError(
                        "node 0 (the host shard manager) cannot be "
                        "killed here; root-head failover is "
                        "FaultTolerantRuntime's job"
                    )
                if not 1 <= node < k:
                    raise ValueError(
                        f"only shard-manager nodes (1..{k - 1}) may be "
                        f"killed in the sharded plane, got {node}"
                    )
        self.cluster_spec = cluster_spec
        self.config = cfg
        self.num_shards = k
        self.scheduler = scheduler
        self.policy = policy
        self.inject_failures = injections
        self.last_cluster: Cluster | None = None
        self.last_directory: ShardDirectory | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def compute_slices(num_nodes: int, k: int) -> list[tuple[int, ...]]:
        """Contiguous worker slices: shard s owns its share of K..N-1."""
        workers = list(range(k, num_nodes))
        w = len(workers)
        return [
            tuple(workers[s * w // k:(s + 1) * w // k]) for s in range(k)
        ]

    def run(self, program: OmpProgram) -> ShardRunResult:
        main_proc, finish = self.launch(program)
        main_proc.sim.run(until=main_proc)
        return finish()

    # ------------------------------------------------------------------
    def launch(self, program: OmpProgram, cluster=None):
        """Set up one sharded execution; returns ``(main_proc, finish)``
        with :class:`~repro.core.runtime.OMPCRuntime.launch` semantics."""
        program.validate()
        cfg = self.config
        k = self.num_shards
        if cluster is None:
            cluster = Cluster(self.cluster_spec)
        elif cluster.num_nodes != self.cluster_spec.num_nodes:
            raise ValueError(
                f"cluster has {cluster.num_nodes} nodes, spec expects "
                f"{self.cluster_spec.num_nodes}"
            )
        self.last_cluster = cluster
        sim = cluster.sim
        t0 = sim.now
        if cfg.trace and not cluster.obs.enabled:
            cluster.install_observer(Observer(sim))
        obs = cluster.obs
        if cfg.analysis and not cluster.analysis.enabled:
            cluster.install_analysis(Analysis())
        analysis = cluster.analysis
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, cfg)
        dm = DataManager(analysis=analysis if analysis.enabled else None)
        analysis.program_begin(program)
        trace = cluster.trace
        graph = program.graph

        directory = ShardDirectory(
            graph, k, self.policy if self.policy is not None
            else cfg.shard_policy,
        )
        self.last_directory = directory
        trace.count("shard.cross_edges", len(directory.cross_edges))
        lease_needs = directory.lease_needs()

        slices = self.compute_slices(cluster.num_nodes, k)
        shards = [_Shard(s, s, slices[s]) for s in range(k)]
        owner_of = directory.owner_of

        # -- per-shard scheduling (own scheduler instance each) -----------
        def shard_scheduler() -> Scheduler:
            if self.scheduler is not None:
                return self.scheduler
            return HeftScheduler(exec_slots_per_node=cfg.event_handlers)

        assignment: dict[int, int] = {}
        planned: dict[int, tuple[float, float]] = {}
        for shard in shards:
            sub = directory.subgraph(shard.sid)
            shard.sub_edges = sub.num_edges
            facade = _ShardClusterFacade(cluster, shard.nodes,
                                         shard.manager)
            sched = shard_scheduler().schedule(sub, facade)
            assignment.update(sched.assignment)
            planned.update(sched.planned)
            shard.stats = ShardStats(
                shard=shard.sid, manager=shard.manager,
                nodes=shard.nodes, tasks=len(sub),
            )
        schedule = Schedule(assignment, planned)

        result = ShardRunResult(
            makespan=0.0,
            startup_time=0.0,
            scheduling_time=0.0,
            shutdown_time=0.0,
            schedule=schedule,
        )

        remaining = {t.task_id: graph.in_degree(t) for t in graph.tasks()}
        pending = len(remaining)
        completed: set[int] = set()
        dm_done: set[int] = set()
        all_done = sim.event("all-tasks-done")
        plane_up = sim.event("shard-plane-up")
        shard_comm = mpi.new_communicator(service=True)
        for shard in shards:
            shard.slots = Resource(
                sim, capacity=cfg.head_threads,
                name=f"shard{shard.sid}-threads",
            )

        membership = None
        if cfg.gossip:
            membership = GossipMembership(
                cluster, mpi, events,
                interval=cfg.gossip_interval,
                ping_timeout=cfg.heartbeat_ping_timeout,
                fanout=cfg.gossip_fanout,
                piggyback=cfg.gossip_piggyback,
                seed=cfg.gossip_seed,
            )

        if cfg.head_standbys > 0:
            for shard in shards:
                standbys = list(
                    shard.nodes[:min(cfg.head_standbys, len(shard.nodes))]
                )
                shard.log = HeadLog(record_bytes=cfg.log_record_bytes)
                shard.repl = Replicator(
                    sim, mpi, events, shard.log, standbys,
                    head=shard.manager, max_lag=cfg.replication_max_lag,
                    election_bytes=cfg.log_record_bytes,
                )

        def fail_run(exc: Exception) -> None:
            if not all_done.triggered:
                all_done.fail(exc)

        def log_append(shard: _Shard, kind: str, **data) -> None:
            if shard.log is not None:
                shard.log.append(kind, **data)
                shard.repl.notify()

        # -- dependence resolution ----------------------------------------
        def spawn_task(task: Task) -> None:
            shard = shards[owner_of(task.task_id)]
            if shard.failing or task.task_id in shard.issued:
                # Mid-failover (the restart rescan picks it up) or
                # already in flight this epoch.
                return
            shard.issued.add(task.task_id)
            _spawn_frame(shard, task, dedup=False)

        def _spawn_frame(shard: _Shard, task: Task, dedup: bool) -> None:
            def body():
                try:
                    yield from run_task(shard, task, dedup)
                except Interrupt:
                    return  # manager died; failover re-issues the work
                except SimulationError as exc:
                    fail_run(exc)
                finally:
                    shard.procs.discard(proc)

            proc = sim.process(body(), name=f"task:{task.name}")
            shard.procs.add(proc)

        def complete(task: Task) -> None:
            nonlocal pending
            tid = task.task_id
            if tid in completed:
                return
            completed.add(tid)
            pending -= 1
            shard = shards[owner_of(tid)]
            shard.stats.dispatched += 1
            log_append(shard, "done", task=tid)
            for succ in graph.successors(task):
                if owner_of(succ.task_id) == shard.sid:
                    remaining[succ.task_id] -= 1
                    if remaining[succ.task_id] == 0:
                        spawn_task(succ)
            subscribers = shard.subs.get(tid)
            if subscribers:
                for sc in sorted(subscribers):
                    send_notify(shard, tid, sc)
            if pending == 0 and not all_done.triggered:
                all_done.succeed()

        def send_notify(shard: _Shard, producer_id: int, sc: int) -> None:
            trace.count("shard.forwards")
            shard.stats.forwards_sent += 1
            shard_comm.rank(shard.manager).isend(
                shards[sc].manager,
                ("notify", producer_id, shard.sid),
                cfg.notification_bytes, tag=NOTIFY_TAG,
            )

        def send_lease(shard: _Shard, producer_id: int) -> None:
            trace.count("shard.leases")
            shard.stats.leases_sent += 1
            sp = owner_of(producer_id)
            shard_comm.rank(shard.manager).isend(
                shards[sp].manager,
                ("lease", producer_id, shard.sid),
                cfg.notification_bytes, tag=LEASE_TAG,
            )

        def lease_service(shard: _Shard, node: int):
            """Producer-side subscriptions, running on ``node`` while it
            is this shard's manager."""
            rank = shard_comm.rank(node)
            while True:
                msg = yield from rank.recv(tag=LEASE_TAG)
                if events.node_failed(node) or shard.manager != node:
                    return
                _kind, producer_id, sc = msg.payload
                shard.subs.setdefault(producer_id, set()).add(sc)
                if producer_id in completed:
                    # The race-free no-barrier path: the producer beat
                    # the lease; answer immediately.
                    send_notify(shard, producer_id, sc)

        def notify_service(shard: _Shard, node: int):
            """Consumer-side completion notifications."""
            rank = shard_comm.rank(node)
            while True:
                msg = yield from rank.recv(tag=NOTIFY_TAG)
                if events.node_failed(node) or shard.manager != node:
                    return
                _kind, producer_id, _sp = msg.payload
                if producer_id in shard.notified:
                    trace.count("shard.dedup_hits")
                    shard.stats.dedup_hits += 1
                    continue
                shard.notified.add(producer_id)
                log_append(shard, "notify", task=producer_id)
                producer = graph.task(producer_id)
                for succ in graph.successors(producer):
                    if owner_of(succ.task_id) == shard.sid:
                        remaining[succ.task_id] -= 1
                        if remaining[succ.task_id] == 0:
                            spawn_task(succ)

        def start_services(shard: _Shard) -> None:
            node = shard.manager
            sim.process(lease_service(shard, node),
                        name=f"shard{shard.sid}-lease@{node}")
            sim.process(notify_service(shard, node),
                        name=f"shard{shard.sid}-notify@{node}")

        def shielded(gen):
            """Absorb the failover-teardown Interrupt.

            Replication pumps have no waiter by design, and a failing
            process with no waiter crashes the whole simulation.
            """
            try:
                yield from gen
            except Interrupt:
                return

        # -- buffer movement (per-manager origin) --------------------------
        def perform_move(shard: _Shard, move: Move):
            buf = move.buffer
            origin = shard.manager
            move_span = obs.begin(
                "data", f"move:{buf.name}", 0,
                src=move.src, dst=move.dst, nbytes=buf.nbytes,
            ) if obs.enabled else None
            if move.src == HOST:
                # Sharded ingest: the manager stages its shard's
                # host-resident inputs itself.
                yield from events.submit(move.dst, buf.buffer_id,
                                         buf.data, buf.nbytes,
                                         origin=origin, label=buf.name)
            elif move.dst == HOST:
                payload = yield from events.retrieve(
                    move.src, buf.buffer_id, buf.nbytes, origin=origin
                )
                buf.data = payload
            elif cfg.forwarding_enabled:
                yield from events.exchange(
                    move.src, move.dst, buf.buffer_id, buf.nbytes,
                    origin=origin, label=buf.name,
                )
            else:
                payload = yield from events.retrieve(
                    move.src, buf.buffer_id, buf.nbytes, origin=origin
                )
                yield from events.submit(move.dst, buf.buffer_id, payload,
                                         buf.nbytes, origin=origin,
                                         label=buf.name)
            dm.commit_move(move)
            if move_span is not None:
                obs.end(move_span)

        def perform_moves(shard: _Shard, moves: list[Move]):
            if not moves:
                return
            if len(moves) == 1:
                yield from perform_move(shard, moves[0])
                return
            procs = [
                sim.process(perform_move(shard, m),
                            name=f"move:{m.buffer.name}")
                for m in moves
            ]
            yield AllOf(sim, procs)

        def perform_deletes(shard: _Shard, stale: list):
            for buf, holder in stale:
                if holder != HOST:
                    yield from events.delete(holder, buf.buffer_id,
                                             origin=shard.manager)
                    dm.mem_release(buf, holder)

        # -- per-task execution --------------------------------------------
        def run_task(shard: _Shard, task: Task, dedup: bool):
            enabled = obs.enabled
            # Capture the epoch's slot pool: a failover replaces
            # ``shard.slots``, and a frame interrupted mid-task must
            # release into the pool it acquired from, not the fresh one.
            slots = shard.slots
            yield slots.request()
            if enabled:
                obs.gauge_add("head.inflight", 1)
            analysis.task_begin(task)
            log_append(shard, "dispatch", task=task.task_id)
            if shard.repl is not None:
                yield from shard.repl.throttle()
            trace.count("shard.dispatches")
            start = sim.now
            try:
                node = schedule.node_of(task)
                if task.kind == TaskKind.CLASSICAL:
                    yield from run_classical(task)
                elif task.kind == TaskKind.TARGET_ENTER_DATA:
                    yield from run_enter_data(shard, task, node)
                elif task.kind == TaskKind.TARGET_EXIT_DATA:
                    yield from run_exit_data(shard, task)
                else:
                    yield from run_target(shard, task, node, dedup)
            finally:
                slots.release()
                if enabled:
                    obs.gauge_add("head.inflight", -1)
            result.task_intervals[task.task_id] = (start, sim.now)
            shard.stats.busy_time += sim.now - start
            trace.record("task", task.name, start, sim.now)
            analysis.task_end(task)
            complete(task)

        def run_classical(task: Task):
            analysis.on_host_task(task, dm)
            head = cluster.head
            yield head.cpu.request()
            try:
                if task.cost:
                    yield sim.timeout(head.compute_time(task.cost))
                if task.fn is not None:
                    task.fn(*(d.buffer.data for d in task.deps))
            finally:
                head.cpu.release()

        def run_enter_data(shard: _Shard, task: Task, node: int):
            if node == HOST:
                return
            moves = []
            for buf in task.buffers:
                moves.extend(dm.plan_enter_data(buf, node))
            yield from perform_moves(shard, moves)
            for buf in task.buffers:
                dm.commit_enter_data(buf, node)

        def run_exit_data(shard: _Shard, task: Task):
            moves = []
            for buf in task.buffers:
                moves.extend(dm.plan_exit_data(buf))
            yield from perform_moves(shard, moves)
            for buf in task.buffers:
                removals = dm.commit_exit_data(buf)
                yield from perform_deletes(shard, removals)

        def run_target(shard: _Shard, task: Task, node: int, dedup: bool):
            moves, allocs = dm.plan_for_task(task, node)
            for mv in moves:
                analysis.on_move(task, mv.buffer)
            for buf in allocs:
                yield from events.alloc(node, buf.buffer_id,
                                        payload=buf.data,
                                        origin=shard.manager,
                                        nbytes=buf.nbytes, label=buf.name,
                                        owner=task.name)
                dm.commit_alloc(buf, node)
            yield from perform_moves(shard, moves)
            detected = yield from events.execute(
                node, task, origin=shard.manager, dedup=dedup
            )
            if task.task_id not in dm_done:
                # Guard the re-dispatch path: a manager that died after
                # committing but before logging must not double-commit.
                dm_done.add(task.task_id)
                stale = dm.commit_task_done(
                    task, node,
                    written_ids=set(detected)
                    if detected is not None else None,
                )
                yield from perform_deletes(shard, stale)

        # -- membership & failover -----------------------------------------
        def on_death(dead: int, by: int) -> None:
            target = None
            for shard in shards:
                if shard.manager == dead:
                    target = shard
                    break
            if target is None:
                # A compute node died: the sharded plane has no worker
                # recovery (that is FaultTolerantRuntime's machinery).
                fail_run(ShardPlaneError(
                    f"worker node {dead} died under the sharded plane; "
                    f"worker fault tolerance needs FaultTolerantRuntime"
                ))
                return
            if target.repl is None:
                fail_run(ShardPlaneError(
                    f"shard {target.sid} manager (node {dead}) died "
                    f"with no standbys (head_standbys=0)"
                ))
                return
            sim.process(failover(target, by),
                        name=f"shard{target.sid}-failover")

        def failover(shard: _Shard, by: int):
            old = shard.manager
            shard.failing = True
            trace.count("shard.failovers")
            shard.stats.failovers += 1
            if not events.node_failed(old):
                events.fail_node(old)  # STONITH: silence the old manager
            for proc in list(shard.procs):
                if proc.is_alive:
                    proc.interrupt()
            shard.procs.clear()
            for pump in shard.pumps:
                if pump.is_alive:
                    pump.interrupt()
            shard.pumps = []
            outcome = yield from shard.repl.elect(
                by, exclude=frozenset({old})
            )
            if outcome is None:
                fail_run(ShardPlaneError(
                    f"shard {shard.sid}: no live standby left to elect"
                ))
                return
            winner, votes = outcome
            live = [n for n in range(cluster.num_nodes)
                    if not events.node_failed(n)]
            yield from shard.repl.announce(by, winner, live)
            shard.log.adopt(shard.repl.replicas[winner],
                            shard.log.epoch + 1)
            shard.repl.set_head(winner, votes)
            shard.manager = winner
            shard.stats.manager = winner
            # Replay the adopted log into a fresh manager state.
            replay = len(shard.log.records) * cfg.log_replay_unit_cost
            if replay:
                yield sim.timeout(replay)
            shard.slots = Resource(
                sim, capacity=cfg.head_threads,
                name=f"shard{shard.sid}-threads-e{shard.log.epoch}",
            )
            start_services(shard)
            for standby in shard.repl.live_standbys():
                shard.pumps.append(sim.process(
                    shielded(shard.repl.pump(standby)),
                    name=f"shard{shard.sid}-pump{standby}",
                ))
            dispatched = {
                rec.data["task"] for rec in shard.log.records
                if rec.kind == "dispatch"
            }
            # Re-send leases whose NOTIFY may have died with the old
            # manager (idempotent: the consumer-side dedup and the
            # producer-side subscription set both absorb replays).
            # Completed producers are NOT excluded: a producer that
            # finished before the crash is exactly the one whose NOTIFY
            # may have been in flight to the dying manager, and the
            # producer-side lease service answers those immediately.
            for producer_id in sorted(lease_needs[shard.sid]):
                if producer_id not in shard.notified:
                    send_lease(shard, producer_id)
            # The symmetric loss: a LEASE in flight *to* the old
            # manager died with it, so consumers of this shard's
            # producers re-subscribe against the new manager.
            for other in shards:
                if other.sid == shard.sid or other.failing:
                    continue
                for producer_id in sorted(lease_needs[other.sid]):
                    if owner_of(producer_id) == shard.sid \
                            and producer_id not in other.notified:
                        send_lease(other, producer_id)
            # Re-notify subscribers of already-completed local producers
            # (a NOTIFY in flight when the manager died is lost).
            for producer_id, subscribers in sorted(shard.subs.items()):
                if producer_id in completed:
                    for sc in sorted(subscribers):
                        send_notify(shard, producer_id, sc)
            # Re-issue the epoch's work: everything ready and not done.
            shard.issued = {
                tid for tid in shard.issued if tid in completed
            }
            shard.failing = False
            for task in directory.tasks_of(shard.sid):
                tid = task.task_id
                if (tid in completed or tid in shard.issued
                        or remaining[tid] != 0):
                    continue
                shard.issued.add(tid)
                _spawn_frame(shard, task, dedup=tid in dispatched)

        def injector(at: float, node: int):
            yield sim.timeout(at)
            if not events.node_failed(node):
                events.fail_node(node)

        # -- manager and main processes ------------------------------------
        def manager_body(shard: _Shard):
            yield plane_up
            own = directory.tasks_of(shard.sid)
            creation = len(own) * cfg.task_creation_overhead
            if creation:
                yield sim.timeout(creation)
            sched_cost = (
                shard.sub_edges
                * max(len(shard.nodes), 1)
                * cfg.schedule_unit_cost
            )
            if sched_cost:
                yield sim.timeout(sched_cost)
            result.scheduling_time = max(result.scheduling_time,
                                         sched_cost)
            if shard.log is not None:
                log_append(shard, "bootstrap",
                           tasks=len(own), sid=shard.sid)
                yield from shard.repl.flush()
            for producer_id in sorted(lease_needs[shard.sid]):
                send_lease(shard, producer_id)
            for task in own:
                if remaining[task.task_id] == 0:
                    spawn_task(task)

        def main():
            try:
                yield from main_body()
            except BaseException:
                if events._started:
                    for node_id in range(cluster.num_nodes):
                        if not events.node_failed(node_id):
                            events.fail_node(node_id)
                raise

        def main_body():
            span = trace.begin("runtime", "startup")
            obs_span = obs.begin("sched", "startup", 0)
            yield sim.timeout(cfg.startup_time)
            events.start()
            if membership is not None:
                membership.on_detect = on_death
                membership.on_head_detect = on_death
                membership.start()
            for shard in shards:
                if shard.repl is not None:
                    shard.repl.start()
                    for standby in shard.repl.live_standbys():
                        shard.pumps.append(sim.process(
                            shielded(shard.repl.pump(standby)),
                            name=f"shard{shard.sid}-pump{standby}",
                        ))
                start_services(shard)
            for at, node in self.inject_failures:
                sim.process(injector(at, node), name=f"kill@{node}")
            trace.end(span)
            obs.end(obs_span)
            result.startup_time = cfg.startup_time
            plane_up.succeed()
            if pending == 0 and not all_done.triggered:
                all_done.succeed()
            yield all_done
            if membership is not None:
                membership.stop()
            span = trace.begin("runtime", "shutdown")
            obs_span = obs.begin("sched", "shutdown", 0)
            yield from events.shutdown()
            yield sim.timeout(cfg.shutdown_time)
            trace.end(span)
            obs.end(obs_span)
            result.shutdown_time = cfg.shutdown_time

        for shard in shards:
            sim.process(manager_body(shard),
                        name=f"shard{shard.sid}-manager")
        main_proc = sim.process(main(), name="shard-main")
        net_bytes0 = cluster.network.total_bytes
        net_msgs0 = cluster.network.total_messages

        def finish() -> ShardRunResult:
            result.makespan = sim.now - t0
            result.counters = dict(trace.counters)
            result.network_bytes = cluster.network.total_bytes - net_bytes0
            result.network_messages = (
                cluster.network.total_messages - net_msgs0
            )
            result.shard_stats = {s.sid: s.stats for s in shards}
            if membership is not None:
                result.membership_timeline = list(membership.timeline)
                result.detections = list(membership.detections)
                result.gossip_rounds = membership.rounds
            if obs.enabled:
                for stat, value in mpi.stats.items():
                    obs.count(f"mpi.transport.{stat}", value)
                for counter_name, value in trace.counters.items():
                    obs.count(counter_name, value)
                result.obs = obs
            if analysis.enabled:
                result.analysis = analysis.finalize(
                    [mpi], failed=events._failed, obs=obs
                )
            return result

        return main_proc, finish
