"""Fault tolerance: heartbeat ring, failure injection, task restart.

§3.1: "each node in OMPC (head node and worker nodes) has a heart-beat
mechanism, connected in a ring topology, which allows nodes to monitor
their neighbors.  Thus, if a node fails, the system detects and
restarts the failed tasks.  Fault tolerance work on OMPC is underway
and will be released in a future version."

This module implements that future version on the simulated cluster:

* :class:`HeartbeatRing` — every node periodically sends a heartbeat to
  its ring successor and monitors its predecessor.  Because the fabric
  may drop or delay messages (see :mod:`repro.core.faultmodel`), a
  missed deadline no longer proves death: the monitor *suspects* a
  predecessor only after ``suspect_windows`` consecutive missed
  windows, reports the suspect to the head node, and the head confirms
  with a direct ping before declaring the node dead.  False positives
  (alive nodes declared dead) and cleared suspicions are counted.
* :class:`FailureInjector` — crashes chosen worker nodes at chosen
  simulated times (kills their event machinery and wipes their device
  memory).
* :class:`FaultTolerantRuntime` — an OMPC runtime whose dispatch
  survives worker failures: in-flight tasks on a dead node are
  re-dispatched to survivors, and buffers whose only copy died are
  recovered by lineage — re-executing their recorded producer task
  (transitively) — or, when periodic checkpointing is enabled
  (``OMPCConfig.checkpoint_interval``), from head-side snapshots, which
  also rescues in-place/INOUT producers that checkpoint-free lineage
  cannot rebuild.  Straggler mitigation
  (``OMPCConfig.straggler_factor``) speculatively re-dispatches a
  too-slow target task to a second node and keeps whichever attempt
  finishes first.  An unrecoverable loss raises :class:`RecoveryError`.

Transient faults (message loss, degraded links, stalls, hangs) are
injected by passing a :class:`~repro.core.faultmodel.FaultPlan` to
:meth:`FaultTolerantRuntime.run`; a lossy plan automatically enables the
reliable MPI transport (:class:`~repro.mpi.comm.TransportConfig`) so
loss costs simulated time rather than correctness.
"""

from __future__ import annotations

import copy as _copy
import itertools

import numpy as np
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.machine import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.datamanager import HOST, DataManager, Move
from repro.core.events import EventSystem
from repro.core.faultmodel import FaultPlan
from repro.core.scheduler import HeftScheduler, Schedule, Scheduler
from repro.mpi.comm import MpiWorld, TransportConfig
from repro.omp.api import OmpProgram
from repro.omp.task import Buffer, Task, TaskKind
from repro.sim.errors import SimulationError
from repro.sim.primitives import AnyOf
from repro.sim.resources import Resource
from repro.util.units import MILLISECOND

#: Ring-communicator tags: heartbeats, suspect reports to the head.
HB_TAG = 1
SUSPECT_TAG = 2
#: Ping-communicator tags: pings carry the tag their pong must use.
PING_TAG = 1
_PONG_TAG_BASE = 16


class RecoveryError(SimulationError):
    """A lost buffer cannot be reconstructed from surviving data."""


@dataclass(frozen=True)
class NodeFailure:
    """One injected crash."""

    time: float
    node: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be >= 0")
        if self.node == 0:
            raise ValueError("the head node cannot fail in this model")


class FailureInjector:
    """Schedules crashes against a running event system."""

    def __init__(self, events: EventSystem):
        self.events = events
        self.injected: list[NodeFailure] = []

    def arm(self, failures: Sequence[NodeFailure],
            on_fail: Callable[[int], None] | None = None) -> None:
        sim = self.events.sim
        for failure in tuple(failures):
            def crash(f=failure):
                yield sim.timeout(f.time)
                self.events.fail_node(f.node)
                self.injected.append(f)
                if on_fail is not None:
                    on_fail(f.node)

            sim.process(crash(), name=f"failure@{failure.node}")


class HeartbeatRing:
    """Ring-topology liveness monitoring (§3.1), loss-hardened.

    Node ``i`` heartbeats to ``(i+1) % n`` every ``interval``; the
    monitor on the successor counts consecutive ``timeout`` windows
    without a beat.  After ``suspect_windows`` misses the monitor
    reports the suspect to the head node, which pings the suspect
    directly and declares it dead only if no pong arrives within
    ``ping_timeout`` — so a node behind a lossy or degraded link is
    cleared rather than killed.  After a detection the monitor re-wires
    to the next living predecessor so later failures are still caught.

    Heartbeats and suspect reports travel as datagrams (the ring
    communicator opts out of reliable transport — retransmitting a
    heartbeat would defeat its purpose); pings use a separate
    communicator that inherits the world's transport.
    """

    def __init__(
        self,
        cluster: Cluster,
        mpi: MpiWorld,
        events: EventSystem,
        interval: float = 1.0 * MILLISECOND,
        timeout: float = 3.5 * MILLISECOND,
        heartbeat_bytes: float = 16.0,
        suspect_windows: int = 2,
        ping_timeout: float = 1.0 * MILLISECOND,
    ):
        if interval <= 0 or timeout <= interval:
            raise ValueError("need 0 < interval < timeout")
        if suspect_windows < 1:
            raise ValueError("suspect_windows must be >= 1")
        if ping_timeout <= 0:
            raise ValueError("ping_timeout must be > 0")
        self.cluster = cluster
        self.sim = cluster.sim
        self.events = events
        self.interval = interval
        self.timeout = timeout
        self.heartbeat_bytes = heartbeat_bytes
        self.suspect_windows = suspect_windows
        self.ping_timeout = ping_timeout
        self.head = 0
        self.comm = mpi.new_communicator(reliable=False)
        self.ping_comm = mpi.new_communicator()
        self.on_detect: Callable[[int, int], None] | None = None
        #: (dead_node, detected_by, detection_time) records.
        self.detections: list[tuple[int, int, float]] = []
        #: Suspects that answered the head's ping (kept alive).
        self.suspicions_cleared = 0
        #: Nodes declared dead that had not actually failed.
        self.false_positives = 0
        self._dead: set[int] = set()
        self._confirming: set[int] = set()
        self._pong_seq = itertools.count()
        self._stopped = False

    def start(self) -> None:
        n = self.cluster.num_nodes
        if n < 2:
            return
        for node in range(n):
            self.sim.process(self._sender(node), name=f"hb-send{node}")
            self.sim.process(self._monitor(node), name=f"hb-mon{node}")
            self.sim.process(self._responder(node), name=f"hb-pong{node}")
        self.sim.process(self._confirm_service(), name="hb-confirm")

    def stop(self) -> None:
        """End monitoring (called at runtime shutdown)."""
        self._stopped = True

    def _alive(self, node: int) -> bool:
        return not self.events.node_failed(node) and node not in self._dead

    def _sender(self, node: int):
        n = self.cluster.num_nodes
        rank = self.comm.rank(node)
        seq = 0
        while not self._stopped:
            if self.events.node_failed(node):
                return  # this node has crashed; no more beats
            successor = (node + 1) % n
            # Skip dead successors so the ring stays closed.
            while not self._alive(successor) and successor != node:
                successor = (successor + 1) % n
            if successor != node:
                rank.isend(successor, ("hb", node, seq),
                           self.heartbeat_bytes, tag=HB_TAG)
            seq += 1
            yield self.sim.timeout(self.interval)

    def _monitor(self, node: int):
        rank = self.comm.rank(node)
        watched_prev: int | None = None
        misses = 0
        while not self._stopped:
            if self.events.node_failed(node):
                return
            watched = self._predecessor(node)
            if watched is None:
                return  # no other live node to monitor
            if watched != watched_prev:
                watched_prev = watched
                misses = 0
            req = rank.irecv(src=watched, tag=HB_TAG)
            deadline = self.sim.timeout(self.timeout)
            yield AnyOf(self.sim, [req.event, deadline])
            if self._stopped or self.events.node_failed(node):
                return
            if req.test():
                misses = 0
                continue  # a beat arrived in time
            # Withdraw the unmatched receive before the next window so a
            # late beat from a slow-but-alive predecessor can never be
            # swallowed by a request nobody is watching anymore.
            req.cancel()
            misses += 1
            if misses < self.suspect_windows:
                continue
            misses = 0
            if watched in self._dead or watched in self._confirming:
                continue
            # Suspect: the fabric may merely have dropped or delayed the
            # beats, so ask the head to confirm with a direct ping.
            rank.isend(self.head, ("suspect", watched, node),
                       self.heartbeat_bytes, tag=SUSPECT_TAG)

    def _confirm_service(self):
        """Head-side loop turning suspect reports into ping confirms."""
        rank = self.comm.rank(self.head)
        while not self._stopped:
            msg = yield from rank.recv(tag=SUSPECT_TAG)
            if self._stopped:
                return
            _kind, suspect, reporter = msg.payload
            if suspect in self._dead or suspect in self._confirming:
                continue
            self._confirming.add(suspect)
            self.sim.process(
                self._confirm(suspect, reporter), name=f"hb-ping{suspect}"
            )

    def _confirm(self, suspect: int, reporter: int):
        """Ping ``suspect`` from the head; declare dead only on silence."""
        reply_tag = _PONG_TAG_BASE + next(self._pong_seq)
        rank = self.ping_comm.rank(self.head)
        pong = rank.irecv(src=suspect, tag=reply_tag)
        rank.isend(suspect, reply_tag, self.heartbeat_bytes, tag=PING_TAG)
        yield AnyOf(self.sim, [pong.event, self.sim.timeout(self.ping_timeout)])
        self._confirming.discard(suspect)
        if pong.test():
            self.suspicions_cleared += 1
            return  # alive after all — the window misses were transient
        pong.cancel()
        if suspect == self.head:
            # The head cannot fail in this model; its silence is always
            # transient, so a head suspicion never becomes a declaration.
            self.suspicions_cleared += 1
            return
        if not self.events.node_failed(suspect):
            self.false_positives += 1
        self._declare(suspect, reporter)

    def _responder(self, node: int):
        """Answer head pings (the liveness proof of the confirm step)."""
        rank = self.ping_comm.rank(node)
        while not self._stopped:
            msg = yield from rank.recv(tag=PING_TAG)
            if self._stopped:
                return
            if self.events.node_failed(node):
                return  # a dead node answers nothing
            rank.isend(msg.src, ("pong", node), self.heartbeat_bytes,
                       tag=msg.payload)

    def _predecessor(self, node: int) -> int | None:
        """The nearest ring predecessor this node *believes* is alive."""
        n = self.cluster.num_nodes
        pred = (node - 1) % n
        while pred != node:
            if pred not in self._dead:
                return pred
            pred = (pred - 1) % n
        return None

    def _declare(self, dead: int, by: int) -> None:
        if dead in self._dead or dead == self.head:
            return
        self._dead.add(dead)
        self.detections.append((dead, by, self.sim.now))
        if self.on_detect is not None:
            self.on_detect(dead, by)


@dataclass
class FTRunResult:
    """Outcome of a fault-tolerant execution."""

    makespan: float
    schedule: Schedule
    failures: list[int] = field(default_factory=list)
    detections: list[tuple[int, int, float]] = field(default_factory=list)
    reexecuted_tasks: int = 0
    task_attempts: dict[int, int] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    #: Suspect→confirm outcomes: suspicions the head's ping cleared, and
    #: detection errors against ground truth (a false positive is an
    #: alive node declared dead; a false negative is a crashed node the
    #: ring never declared).
    suspicions_cleared: int = 0
    false_positive_detections: int = 0
    false_negative_detections: int = 0
    #: Checkpoint activity (0 unless ``checkpoint_interval`` > 0).
    checkpoints_taken: int = 0
    checkpoint_restores: int = 0
    #: Straggler mitigation: backup dispatches issued / races they won.
    speculative_attempts: int = 0
    speculation_wins: int = 0
    #: Reliable-transport counters (drops, retransmissions, acks,
    #: duplicates) — empty dict when the fabric is clean.
    transport: dict[str, int] = field(default_factory=dict)


class FaultTolerantRuntime:
    """OMPC with the §3.1 heartbeat/restart mechanism enabled."""

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        config: OMPCConfig | None = None,
        scheduler: Scheduler | None = None,
        heartbeat_interval: float = 1.0 * MILLISECOND,
        heartbeat_timeout: float = 3.5 * MILLISECOND,
        transport: TransportConfig | None = None,
    ):
        if cluster_spec.num_nodes < 3:
            raise ValueError(
                "fault tolerance needs a head node plus at least two "
                "workers (a lone worker's failure is unrecoverable)"
            )
        self.cluster_spec = cluster_spec
        self.config = config or OMPCConfig()
        self.scheduler = scheduler or HeftScheduler(
            exec_slots_per_node=self.config.event_handlers
        )
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        #: Explicit transport override; by default the reliable transport
        #: switches on exactly when the fault plan is lossy.
        self.transport = transport
        self.last_cluster: Cluster | None = None

    # ------------------------------------------------------------------
    def run(
        self,
        program: OmpProgram,
        failures: Sequence[NodeFailure] = (),
        fault_plan: FaultPlan | None = None,
    ) -> FTRunResult:
        program.validate()
        failures = tuple(failures)
        cluster = Cluster(self.cluster_spec)
        self.last_cluster = cluster
        sim = cluster.sim
        active = fault_plan.install(cluster) if fault_plan is not None else None
        transport = self.transport
        if transport is None and active is not None and active.plan.lossy:
            transport = TransportConfig()
        mpi = MpiWorld(cluster, transport=transport)
        events = EventSystem(cluster, mpi, self.config)
        cfg = self.config
        ring = HeartbeatRing(
            cluster, mpi, events,
            interval=self.heartbeat_interval,
            timeout=self.heartbeat_timeout,
            suspect_windows=cfg.heartbeat_suspect_windows,
            ping_timeout=cfg.heartbeat_ping_timeout,
        )
        dm = DataManager()
        graph = program.graph

        schedule = self.scheduler.schedule(graph, cluster)
        result = FTRunResult(makespan=0.0, schedule=schedule)

        dead: set[int] = set()
        live_workers = lambda: [  # noqa: E731 - tiny local helper
            n for n in range(1, cluster.num_nodes) if n not in dead
        ]

        remaining = {t.task_id: graph.in_degree(t) for t in graph.tasks()}
        pending = len(remaining)
        all_done = sim.event("all-tasks-done")
        slots = Resource(sim, capacity=cfg.head_threads, name="head-threads")
        #: Which task last produced each buffer's current value.
        writer_of: dict[int, Task] = {}
        #: Monotone write counter per buffer (checkpoint freshness).
        write_version: dict[int, int] = {}
        #: Full write history per buffer: (version, task) in commit
        #: order — checkpoint recovery replays every write newer than
        #: the snapshot, not just the last one.
        write_log: dict[int, list[tuple[int, Task]]] = {}
        #: Written buffers by id (the checkpointer's worklist).
        written_buffers: dict[int, Buffer] = {}
        #: Head-side snapshots: buffer id → (version, pristine copy).
        checkpoints: dict[int, tuple[int, Any]] = {}
        attempts: dict[int, int] = {}
        exec_attempt = itertools.count(1)
        # Serialize recoveries of the same buffer.
        recovering: dict[int, object] = {}
        ckpt_stop = False

        def target_node(task: Task) -> int:
            node = schedule.node_of(task)
            if node in dead and node != HOST:
                # Deterministic re-map: spread by task id over survivors.
                survivors = live_workers()
                if not survivors:
                    raise RecoveryError("all worker nodes have failed")
                node = survivors[task.task_id % len(survivors)]
            return node

        def complete(task: Task) -> None:
            nonlocal pending
            pending -= 1
            for succ in graph.successors(task):
                remaining[succ.task_id] -= 1
                if remaining[succ.task_id] == 0:
                    sim.process(run_task(succ), name=f"ft-task:{succ.name}")
            if pending == 0:
                all_done.succeed()

        # -- buffer movement and recovery -------------------------------
        def ensure_available(buffer: Buffer, chain: frozenset = frozenset()):
            """Generator: guarantee a live copy of ``buffer`` exists.

            ``chain`` carries the buffer ids already being recovered on
            this call stack: needing one of them again means the lost
            value can only be rebuilt from itself (an in-place/INOUT
            producer), which is unrecoverable *without checkpoints* —
            with checkpointing on, the snapshot breaks the cycle.
            """
            bid = buffer.buffer_id
            while True:
                locations = dm.locations(buffer) - dead
                if locations:
                    return
                entry = checkpoints.get(bid)
                if bid in chain:
                    if entry is None:
                        raise RecoveryError(
                            f"buffer {buffer.name} can only be rebuilt "
                            "from its own lost value (in-place producer); "
                            "checkpoint-free lineage recovery cannot help"
                        )
                    # A recursive loss mid-replay of this very buffer:
                    # the in-flight restore sequence is void, tell the
                    # owning frame to start over from the snapshot.
                    raise _RecoveryRestart(bid)
                token = recovering.get(bid)
                if token is not None:
                    yield token  # someone else is already recovering it
                    continue
                producer = writer_of.get(bid)
                if entry is None and producer is None:
                    raise RecoveryError(
                        f"buffer {buffer.name} lost with no recorded "
                        "producer; its initial value existed only on the "
                        "failed node"
                    )
                done = sim.event(f"recover:{buffer.name}")
                recovering[bid] = done
                try:
                    if entry is not None:
                        yield from restore_and_replay(buffer, chain)
                    else:
                        yield from execute_once(producer, chain | {bid})
                        result.reexecuted_tasks += 1
                finally:
                    del recovering[bid]
                    done.succeed()

        def restore_and_replay(buffer: Buffer, chain: frozenset):
            """Generator: rebuild ``buffer`` from its newest checkpoint.

            Restores the snapshot to the head, then replays — in commit
            order — every write newer than the snapshot, so multi-step
            in-place chains come back complete, not just their last
            link.  If a replayed copy is lost again mid-sequence the
            whole sequence restarts from a fresh restore (partial
            replays would otherwise double-apply in-place writes).
            """
            bid = buffer.buffer_id
            while True:
                version, snap = checkpoints[bid]
                _restore_into(buffer, snap)
                dm.commit_restore(buffer)
                result.checkpoint_restores += 1
                cluster.trace.count("ft.checkpoint_restores")
                # Replays append to the log too; keep each task's first
                # occurrence only, in original commit order.
                seen: set[int] = set()
                pending = []
                for ver, task in write_log.get(bid, []):
                    if ver > version and task.task_id not in seen:
                        seen.add(task.task_id)
                        pending.append(task)
                try:
                    for task in pending:
                        yield from execute_once(task, chain | {bid})
                        result.reexecuted_tasks += 1
                except _RecoveryRestart as restart:
                    if restart.buffer_id != bid:
                        raise
                    continue
                return

        def safe_source_move(buffer: Buffer, dst: int, chain: frozenset = frozenset()):
            """Generator: materialize ``buffer`` on ``dst``.

            Retries with a fresh source if the source node crashes
            mid-transfer; a crash of ``dst`` propagates to the caller
            (the whole task attempt restarts elsewhere).
            """
            while True:
                yield from ensure_available(buffer, chain)
                locations = dm.locations(buffer) - dead
                if dst in locations:
                    return
                src = dm.latest(buffer)
                if src in dead or src not in locations:
                    src = HOST if HOST in locations else min(locations)
                if src == HOST:
                    op = events.submit(dst, buffer.buffer_id, buffer.data,
                                       buffer.nbytes)
                    watch = [dst]
                else:
                    op = events.exchange(src, dst, buffer.buffer_id,
                                         buffer.nbytes)
                    watch = [src, dst]
                try:
                    yield from guarded(watch, op)
                except _NodeCrashed as crash:
                    handle_node_death(crash.node)
                    if crash.node == dst:
                        raise  # the task itself must move
                    continue  # source died: pick another source
                if src not in dm.locations(buffer) - dead:
                    # The source was declared dead mid-transfer (possibly
                    # a false positive under heavy transients) and its
                    # copy invalidated; redo the move from a live source.
                    continue
                dm.commit_move(Move(buffer, src, dst))
                return

        # -- task execution with failure racing ---------------------------
        def execute_once(task: Task, chain: frozenset = frozenset()):
            """Generator: run ``task`` to completion, retrying on crashes."""
            while True:
                node = target_node(task)
                attempts[task.task_id] = attempts.get(task.task_id, 0) + 1
                try:
                    if task.kind == TaskKind.CLASSICAL:
                        yield from run_classical(task)
                    elif task.kind == TaskKind.TARGET_ENTER_DATA:
                        yield from run_enter_data(task, node)
                    elif task.kind == TaskKind.TARGET_EXIT_DATA:
                        yield from run_exit_data(task)
                    elif speculatable(task):
                        yield from run_target_speculative(task, node, chain)
                    else:
                        yield from run_target(task, node, chain)
                    return
                except _NodeCrashed as crash:
                    handle_node_death(crash.node)
                    continue  # retry on a survivor

        def run_classical(task: Task):
            head = cluster.head
            yield head.cpu.request()
            try:
                if task.cost:
                    yield sim.timeout(head.compute_time(task.cost))
                if task.fn is not None:
                    task.fn(*(d.buffer.data for d in task.deps))
            finally:
                head.cpu.release()
            record_writes(task, HOST)

        def run_enter_data(task: Task, node: int):
            if node == HOST or node in dead:
                node = HOST
            if node != HOST:
                for buf in task.buffers:
                    yield from safe_source_move(buf, node)
                for buf in task.buffers:
                    dm.commit_enter_data(buf, node)

        def run_exit_data(task: Task):
            for buf in task.buffers:
                while True:
                    yield from ensure_available(buf)
                    locations = dm.locations(buf) - dead
                    if HOST in locations and dm.latest(buf) == HOST:
                        break
                    src = dm.latest(buf)
                    if src in dead or src not in locations:
                        src = min(locations)
                    if src == HOST:
                        break
                    payload = yield from events.retrieve(
                        src, buf.buffer_id, buf.nbytes
                    )
                    if src not in dm.locations(buf) - dead:
                        continue  # source declared dead mid-retrieve
                    buf.data = payload
                    dm.commit_move(Move(buf, src, HOST))
                    break
                for stale_buf, holder in dm.commit_exit_data(buf):
                    if holder != HOST and holder not in dead:
                        yield from events.delete(holder, stale_buf.buffer_id)

        def run_target(task: Task, node: int, chain: frozenset = frozenset(),
                       attempt: int = 0):
            moves, allocs = dm.plan_for_task(task, node)
            for buf in allocs:
                yield from guarded(node, events.alloc(node, buf.buffer_id,
                                                      payload=buf.data))
                dm.commit_alloc(buf, node)
            for dep in task.deps:
                if task.dep_type_for(dep.buffer).reads and not dm.is_resident(
                    dep.buffer, node
                ):
                    yield from safe_source_move(dep.buffer, node, chain)
            yield from guarded(node, events.execute(node, task, attempt=attempt))
            record_writes(task, node)
            stale = dm.commit_task_done(task, node)
            for buf, holder in stale:
                if holder != HOST and holder not in dead:
                    yield from events.delete(holder, buf.buffer_id)

        # -- straggler mitigation -----------------------------------------
        def speculatable(task: Task) -> bool:
            """Target tasks eligible for speculative re-dispatch.

            Only pure-``out`` writers qualify: a losing attempt's kernel
            launch is revoked, but one that already ran merely rewrote
            outputs it fully overwrites — the same idempotence contract
            lineage recovery relies on.  INOUT writers are excluded.
            """
            return (
                cfg.straggler_factor > 0
                and task.kind == TaskKind.TARGET
                and task.cost > 0
                and all(not (d.type.writes and d.type.reads) for d in task.deps)
                and len(live_workers()) > 1
            )

        def run_target_speculative(task: Task, node: int, chain: frozenset):
            """Generator: race a backup attempt against a straggler.

            The primary attempt gets ``straggler_factor`` times its cost
            estimate; past that, a second attempt starts on another live
            worker and whichever finishes first wins.  The loser's
            kernel launch is revoked through the event system so a
            late-finishing attempt cannot clobber downstream writes.
            """
            estimate = cluster.node(node).compute_time(task.cost)
            attempt_a = next(exec_attempt)
            primary = sim.process(
                run_target(task, node, chain, attempt_a),
                name=f"ft-spec:{task.name}.a",
            )
            p_done = sim.event(f"settle:{task.name}.a")
            primary.add_callback(lambda _ev: p_done.succeed())
            yield AnyOf(sim, [
                p_done, sim.timeout(cfg.straggler_factor * estimate)
            ])
            if not primary.triggered:
                spare = [n for n in live_workers() if n != node]
                if spare:
                    backup_node = spare[task.task_id % len(spare)]
                    attempt_b = next(exec_attempt)
                    attempts[task.task_id] = attempts.get(task.task_id, 0) + 1
                    result.speculative_attempts += 1
                    cluster.trace.count("ft.speculative_attempts")
                    backup = sim.process(
                        run_target(task, backup_node, chain, attempt_b),
                        name=f"ft-spec:{task.name}.b",
                    )
                    b_done = sim.event(f"settle:{task.name}.b")
                    backup.add_callback(lambda _ev: b_done.succeed())
                    yield AnyOf(sim, [p_done, b_done])
                    first, first_att, second, second_att, second_done = (
                        (primary, attempt_a, backup, attempt_b, b_done)
                        if primary.triggered
                        else (backup, attempt_b, primary, attempt_a, p_done)
                    )
                    if first.ok:
                        if first is backup:
                            result.speculation_wins += 1
                        events.cancel_execution(task.task_id, second_att)
                        if second.is_alive:
                            second.interrupt("lost speculation race")
                        return
                    # The first finisher crashed; absorb its node's death
                    # and let the surviving attempt decide the task.
                    if not isinstance(first.value, _NodeCrashed):
                        raise first.value
                    handle_node_death(first.value.node)
                    if not second.triggered:
                        yield second_done
                    if second.ok:
                        if second is backup:
                            result.speculation_wins += 1
                        return
                    raise second.value  # both attempts crashed: retry
            if not primary.triggered:
                yield p_done  # no spare worker: just wait the straggler out
            if not primary.ok:
                raise primary.value
            return

        def record_writes(task: Task, node: int) -> None:
            for buf in task.writes:
                writer_of[buf.buffer_id] = task
                version = write_version.get(buf.buffer_id, 0) + 1
                write_version[buf.buffer_id] = version
                write_log.setdefault(buf.buffer_id, []).append((version, task))
                written_buffers[buf.buffer_id] = buf

        def guarded(nodes, operation):
            """Generator: race ``operation`` against any of ``nodes`` dying.

            A crash mid-operation may strand the remote half of the
            event (e.g. an EXCHANGE destination waiting on a dead
            source); the origin-side process is interrupted and the
            crash is reported to the caller for retry.
            """
            if isinstance(nodes, int):
                nodes = [nodes]
            for node in nodes:
                if node in dead or events.node_failed(node):
                    raise _NodeCrashed(node)
            proc = sim.process(operation, name="ft-op")
            races = [proc] + [events.failure_event(n) for n in nodes]
            yield AnyOf(sim, races)
            if proc.triggered:
                if not proc.ok:
                    raise proc.value
                return proc.value
            if proc.is_alive:
                proc.interrupt("node failure")
            crashed = next(n for n in nodes if events.node_failed(n))
            raise _NodeCrashed(crashed)

        def handle_node_death(node: int) -> None:
            if node in dead:
                return
            dead.add(node)
            dm.on_node_failure(node)
            result.failures.append(node)

        def run_task(task: Task):
            yield slots.request()
            try:
                yield from execute_once(task)
            finally:
                slots.release()
            complete(task)

        # -- checkpointing ------------------------------------------------
        def checkpointer():
            """Generator: periodically snapshot written buffers head-side.

            Every snapshot is retrieved through the event system, so
            checkpoint traffic is charged like any other data movement.
            Only buffers whose newest write postdates their last
            snapshot are refreshed.
            """
            while not ckpt_stop:
                yield sim.timeout(cfg.checkpoint_interval)
                if ckpt_stop:
                    return
                for bid in sorted(written_buffers):
                    buf = written_buffers[bid]
                    version = write_version.get(bid, 0)
                    entry = checkpoints.get(bid)
                    if entry is not None and entry[0] >= version:
                        continue  # snapshot already current
                    locations = dm.locations(buf) - dead
                    if not locations:
                        continue  # already lost; recovery owns it now
                    src = dm.latest(buf)
                    if src in dead or src not in locations:
                        src = HOST if HOST in locations else min(locations)
                    if src == HOST:
                        checkpoints[bid] = (version, _snapshot(buf.data))
                    else:
                        try:
                            payload = yield from guarded(
                                [src],
                                events.retrieve(src, bid, buf.nbytes),
                            )
                        except _NodeCrashed as crash:
                            handle_node_death(crash.node)
                            continue
                        if write_version.get(bid, 0) != version:
                            continue  # changed mid-flight; next round
                        checkpoints[bid] = (version, _snapshot(payload))
                    result.checkpoints_taken += 1
                    cluster.trace.count("ft.checkpoints")

        # -- failure plumbing ---------------------------------------------
        def on_detect(dead_node: int, by: int) -> None:
            # The head learns through the ring; recovery state updates
            # immediately (in-flight guards race the failure event).
            handle_node_death(dead_node)

        ring.on_detect = on_detect
        injector = FailureInjector(events)

        def main():
            nonlocal ckpt_stop
            yield sim.timeout(cfg.startup_time)
            events.start()
            ring.start()
            injector.arm(failures)
            if cfg.checkpoint_interval > 0:
                sim.process(checkpointer(), name="ft-checkpoint")
            creation = len(remaining) * cfg.task_creation_overhead
            if creation:
                yield sim.timeout(creation)
            sched_cost = (
                graph.num_edges
                * max(cluster.num_nodes - 1, 1)
                * cfg.schedule_unit_cost
            )
            if sched_cost:
                yield sim.timeout(sched_cost)
            if pending == 0:
                all_done.succeed()
            else:
                for root in graph.roots():
                    sim.process(run_task(root), name=f"ft-task:{root.name}")
            yield all_done
            ckpt_stop = True
            ring.stop()
            yield from events.shutdown()
            yield sim.timeout(cfg.shutdown_time)

        main_proc = sim.process(main(), name="ompc-ft-main")
        sim.run(until=main_proc)
        result.makespan = sim.now
        result.detections = list(ring.detections)
        result.task_attempts = dict(attempts)
        result.counters = dict(cluster.trace.counters)
        result.suspicions_cleared = ring.suspicions_cleared
        result.false_positive_detections = ring.false_positives
        declared = {d for d, _by, _t in ring.detections}
        result.false_negative_detections = len(
            {f.node for f in injector.injected} - declared
        )
        result.transport = dict(mpi.stats)
        if active is not None:
            result.counters["faults.dropped_messages"] = (
                active.dropped_messages
            )
        return result


def _snapshot(payload: Any) -> Any:
    """A pristine copy of a device payload for checkpoint storage."""
    if payload is None:
        return None

    if isinstance(payload, np.ndarray):
        return payload.copy()
    return _copy.deepcopy(payload)


def _restore_into(buffer: Any, snapshot: Any) -> None:
    """Restore a snapshot into a buffer, preserving payload identity.

    Payloads travel by reference in the simulation, so host code may
    hold the very array object ``buffer.data`` points at.  Copying the
    snapshot *into* that array (rather than rebinding ``buffer.data`` to
    a fresh one) keeps those aliases live across a recovery — matching
    OpenMP mapped-buffer semantics, where the original host storage is
    what gets refilled.
    """
    fresh = _snapshot(snapshot)  # the stored copy stays pristine
    data = buffer.data
    if (
        isinstance(data, np.ndarray)
        and isinstance(fresh, np.ndarray)
        and data.shape == fresh.shape
        and data.dtype == fresh.dtype
    ):
        np.copyto(data, fresh)
    else:
        buffer.data = fresh


class _NodeCrashed(Exception):
    """Internal control flow: the target node died mid-operation."""

    def __init__(self, node: int):
        super().__init__(f"node {node} crashed")
        self.node = node


class _RecoveryRestart(Exception):
    """Internal control flow: a checkpoint restore sequence was itself
    hit by a failure and must start over from the snapshot."""

    def __init__(self, buffer_id: int):
        super().__init__(f"recovery of buffer {buffer_id} must restart")
        self.buffer_id = buffer_id
