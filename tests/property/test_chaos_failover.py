"""Chaos testing: random crash schedules (head included) plus lossy
links on small task graphs.

The contract under any drawn fault scenario is binary: the run either
completes with final buffers bit-identical to a fault-free reference
run, or it raises a clean :class:`RecoveryError` — never a hang, never
a silently wrong answer.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.faultmodel import FaultPlan, LinkLoss
from repro.core.faults import (
    FaultTolerantRuntime,
    NodeFailure,
    RecoveryError,
)
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_inout, depend_out

FAST = OMPCConfig(
    startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
    event_origin_overhead=0.0, event_handler_overhead=0.0,
    task_creation_overhead=0.0, schedule_unit_cost=0.0,
)

NODES = 5


def build_program(shape, num_units, cost):
    """A fresh program instance plus its (aliased) output arrays."""
    prog = OmpProgram(shape)
    outputs = []
    if shape in ("shots", "mixed"):
        model = np.arange(16.0)
        model_buf = prog.buffer(model.nbytes, data=model, name="model")
        prog.target_enter_data(model_buf)
        out_bufs = []
        for i in range(num_units):
            out = np.zeros(16)
            outputs.append(out)
            buf = prog.buffer(out.nbytes, data=out, name=f"out{i}")
            out_bufs.append(buf)
            prog.target(
                fn=lambda m, o: np.copyto(o, m * 2.0),
                depend=[depend_in(model_buf), depend_out(buf)],
                cost=cost,
                name=f"shot{i}",
            )
        prog.target_exit_data(*out_bufs)
    if shape in ("chain", "mixed"):
        x = np.zeros(8)
        outputs.append(x)
        buf = prog.buffer(x.nbytes, data=x, name="x")
        prog.target_enter_data(buf)
        for i in range(num_units):
            prog.target(
                fn=lambda v: np.add(v, 1.0, out=v),
                depend=[depend_inout(buf)],
                cost=cost,
                name=f"step{i}",
            )
        prog.target_exit_data(buf)
    return prog, outputs


# One crash: (node, time).  Times sit on a grid so schedules stay well
# inside the runs' makespans and shrinking is stable.
crash = st.tuples(
    st.integers(min_value=0, max_value=NODES - 1),
    st.sampled_from([0.01, 0.03, 0.05, 0.08, 0.12]),
)

scenario = st.fixed_dictionaries({
    "shape": st.sampled_from(["shots", "chain", "mixed"]),
    "num_units": st.integers(min_value=2, max_value=4),
    "cost": st.sampled_from([0.03, 0.05]),
    "crashes": st.lists(crash, max_size=2, unique_by=lambda c: c[0]),
    "standbys": st.integers(min_value=1, max_value=2),
    "loss": st.sampled_from([0.0, 0.05]),
    "plan_seed": st.integers(min_value=0, max_value=2**16),
    "checkpoint": st.booleans(),
})


class TestChaosFailover:
    @given(scenario)
    @settings(deadline=None, max_examples=30)
    def test_completes_identically_or_fails_cleanly(self, sc):
        cfg = dataclasses.replace(
            FAST,
            head_standbys=sc["standbys"],
            checkpoint_interval=0.02 if sc["checkpoint"] else 0.0,
        )
        ref_prog, ref_out = build_program(
            sc["shape"], sc["num_units"], sc["cost"]
        )
        FaultTolerantRuntime(ClusterSpec(num_nodes=NODES), cfg).run(ref_prog)

        prog, out = build_program(sc["shape"], sc["num_units"], sc["cost"])
        failures = [NodeFailure(time=t, node=n) for n, t in sc["crashes"]]
        plan = None
        if sc["loss"]:
            plan = FaultPlan(
                seed=sc["plan_seed"],
                losses=[LinkLoss(probability=sc["loss"])],
            )
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=NODES), cfg)
        try:
            res = rt.run(prog, failures=failures, fault_plan=plan)
        except RecoveryError:
            return  # clean refusal is an acceptable outcome
        # Completed: every output must match the fault-free run bit for
        # bit, and the telemetry must be self-consistent.
        for a, b in zip(ref_out, out):
            assert np.array_equal(a, b)
        head_crashed = any(n == 0 for n, _t in sc["crashes"])
        if res.head_failovers:
            assert head_crashed
            assert res.final_head != 0
            assert len(res.failovers) == res.head_failovers
            for fo in res.failovers:
                assert fo.resumed_at >= fo.elected_at >= fo.declared_at
        else:
            assert res.final_head == 0
