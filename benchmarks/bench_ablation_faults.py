"""Extension ablation: the price of fault tolerance (§3.1).

Two questions the paper's future-work section leaves open, answered on
the simulated cluster:

1. what does the heartbeat ring cost when nothing fails?
2. what does one failure cost, as a function of how much work was in
   flight when the node died?
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import format_table
from repro.cluster.machine import ClusterSpec
from repro.core import FaultTolerantRuntime, NodeFailure, OMPCRuntime
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_out


def shots_program(num_shots: int, cost: float):
    prog = OmpProgram()
    model = np.zeros(64)
    model_buf = prog.buffer(model.nbytes, data=model, name="model")
    prog.target_enter_data(model_buf)
    for i in range(num_shots):
        buf = prog.buffer(512, name=f"o{i}")
        prog.target(
            depend=[depend_in(model_buf), depend_out(buf)],
            cost=cost, name=f"shot{i}",
        )
    return prog


class TestAblationFaults:
    def test_bench_heartbeat_overhead_negligible(self, benchmark):
        def sweep():
            plain = OMPCRuntime(ClusterSpec(num_nodes=5)).run(
                shots_program(8, 0.1)
            )
            ft = FaultTolerantRuntime(ClusterSpec(num_nodes=5)).run(
                shots_program(8, 0.1)
            )
            return plain.makespan, ft.makespan

        plain, ft = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # Heartbeats are tiny control messages; < 5% overhead.
        assert ft < plain * 1.05

    def test_bench_recovery_cost_scales_with_lost_work(self, benchmark):
        def sweep():
            out = {}
            for when in (0.05, 0.15):
                res = FaultTolerantRuntime(ClusterSpec(num_nodes=5)).run(
                    shots_program(8, 0.2),
                    failures=[NodeFailure(time=when, node=1)],
                )
                out[when] = res.makespan
            base = FaultTolerantRuntime(ClusterSpec(num_nodes=5)).run(
                shots_program(8, 0.2)
            )
            out["none"] = base.makespan
            return out

        times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert times[0.05] > times["none"]
        assert times[0.15] > times["none"]


def main() -> None:
    rows = []
    plain = OMPCRuntime(ClusterSpec(num_nodes=5)).run(shots_program(8, 0.2))
    rows.append(["plain OMPC, no failures", plain.makespan])
    ft = FaultTolerantRuntime(ClusterSpec(num_nodes=5)).run(shots_program(8, 0.2))
    rows.append(["FT runtime, no failures", ft.makespan])
    for when in (0.05, 0.15, 0.3):
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=5)).run(
            shots_program(8, 0.2), failures=[NodeFailure(time=when, node=1)]
        )
        rows.append([f"FT, node 1 dies at t={when * 1e3:.0f}ms", res.makespan])
    print(
        format_table(
            ["configuration", "makespan (s)"],
            rows,
            title="Ablation F — fault-tolerance cost (8 x 200ms shots, 4 workers)",
        )
    )


if __name__ == "__main__":
    main()
