"""Worker-side device memory: the per-node table of mapped buffers.

Each cluster node, acting as an offloading device, keeps a table of the
buffers currently allocated on it.  Payloads travel by reference (all
nodes live in one Python process); the simulation charges transfer time
for the bytes, and the *table* is the ground truth the coherency tests
inspect: reading a buffer on a node where the data manager never
materialized it raises, so protocol bugs surface as hard errors.
"""

from __future__ import annotations

from typing import Any

from repro.sim.errors import SimulationError


class DeviceMemoryError(SimulationError):
    """Access to a buffer not resident on this node."""


class DeviceMemory:
    """The mapped-buffer table of one worker node."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._table: dict[int, Any] = {}
        #: Diagnostics: total allocations/removals over the run.
        self.allocations = 0
        self.deletions = 0

    def __contains__(self, buffer_id: int) -> bool:
        return buffer_id in self._table

    def __len__(self) -> int:
        return len(self._table)

    def alloc(self, buffer_id: int, payload: Any = None) -> None:
        """Create (or overwrite) the device entry for a buffer."""
        if buffer_id not in self._table:
            self.allocations += 1
        self._table[buffer_id] = payload

    def write(self, buffer_id: int, payload: Any) -> None:
        """Store incoming data for an already-allocated buffer."""
        if buffer_id not in self._table:
            raise DeviceMemoryError(
                f"node {self.node_id}: write to unallocated buffer {buffer_id}"
            )
        self._table[buffer_id] = payload

    def read(self, buffer_id: int) -> Any:
        """The resident payload; raises if the buffer is not here."""
        try:
            return self._table[buffer_id]
        except KeyError:
            raise DeviceMemoryError(
                f"node {self.node_id}: read of non-resident buffer {buffer_id}"
            ) from None

    def delete(self, buffer_id: int) -> None:
        if buffer_id not in self._table:
            raise DeviceMemoryError(
                f"node {self.node_id}: delete of non-resident buffer {buffer_id}"
            )
        del self._table[buffer_id]
        self.deletions += 1

    def resident_buffers(self) -> list[int]:
        return sorted(self._table)

    def wipe(self) -> None:
        """Drop every entry (node crash: its memory contents are gone)."""
        self._table.clear()
