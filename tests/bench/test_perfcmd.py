"""The perf subcommand: kernel-trajectory emission and regression check."""

from __future__ import annotations

import json

from repro.bench.perfcmd import (
    KERNEL_SCHEMA,
    PR6_BASELINE,
    SCHEMA,
    check_baseline,
    main,
)


def _emit_quick(tmp_path):
    jobs = tmp_path / "BENCH_jobs.json"
    kernel = tmp_path / "BENCH_kernel.json"
    assert main([
        "--quick", "--out", str(jobs), "--kernel-out", str(kernel),
    ]) == 0
    return jobs, kernel


def test_quick_run_emits_both_schemas(tmp_path):
    jobs, kernel = _emit_quick(tmp_path)
    jp = json.loads(jobs.read_text())
    assert jp["schema"] == SCHEMA
    assert len(jp["cells"]) >= 4
    kp = json.loads(kernel.read_text())
    assert kp["schema"] == KERNEL_SCHEMA
    assert kp["calib_mops"] > 0
    assert kp["baseline_pr6"] == PR6_BASELINE
    names = {c["name"] for c in kp["cells"]}
    assert {"fig5_stencil_1d_n4_q", "fig5_stencil_1d_n8_q",
            "jobs_backfill_q", "jobs_overload_q"} <= names
    for cell in kp["cells"]:
        assert cell["events"] > 0
        assert cell["wall_s"] > 0
        assert cell["makespan_s"] > 0


def test_check_accepts_its_own_baseline(tmp_path):
    # A lenient throughput threshold keeps this deterministic under
    # background load — the exact-match events/makespan path and the
    # check plumbing are what this test pins; the strict 30% guard is
    # covered synthetically below.
    _jobs, kernel = _emit_quick(tmp_path)
    assert check_baseline(kernel, regression=0.95) == 0


def test_check_fails_on_throughput_regression(tmp_path, capsys):
    # Synthetic: inflate the recorded ev/s so even a fast replay looks
    # like a >30% normalized regression — exercises the guard without
    # depending on wall-clock stability.
    _jobs, kernel = _emit_quick(tmp_path)
    payload = json.loads(kernel.read_text())
    for cell in payload["cells"]:
        cell["events_per_sec"] *= 1000.0
    kernel.write_text(json.dumps(payload))
    assert check_baseline(kernel) == 1
    assert "normalized throughput" in capsys.readouterr().out


def test_check_fails_on_event_count_drift(tmp_path, capsys):
    _jobs, kernel = _emit_quick(tmp_path)
    payload = json.loads(kernel.read_text())
    payload["cells"][0]["events"] += 1  # deterministic field: any drift fails
    kernel.write_text(json.dumps(payload))
    assert check_baseline(kernel) == 1
    assert "kernel regression" in capsys.readouterr().out


def test_check_fails_on_wrong_schema(tmp_path):
    _jobs, kernel = _emit_quick(tmp_path)
    payload = json.loads(kernel.read_text())
    payload["schema"] = "something-else/9"
    kernel.write_text(json.dumps(payload))
    assert check_baseline(kernel) == 1


def test_full_baseline_records_headline_cells():
    # The recorded PR 6 reference covers the scalability cells the
    # optimization targeted, including bench_fig5_scalability's own
    # 2n x 32 graphs.
    assert "fig5_stencil_1d_n64" in PR6_BASELINE
    assert "fig5bench_stencil_1d_n64" in PR6_BASELINE
    assert "fig5bench_fft_n64" in PR6_BASELINE
    for ref in PR6_BASELINE.values():
        assert ref["events"] > 0
        assert ref["wall_s"] > 0
