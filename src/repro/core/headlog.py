"""Replicated head-state commit log (head-node failover).

The head node is OMPC's single point of control: it owns the scheduler,
the data-manager directory, the checkpoint store, and the in-flight
task set.  To make it expendable, the head streams an ordered **commit
log** of every externally visible state transition — task dispatches
and completions, data-directory updates, checkpoint snapshots — to one
or more *standby* workers over the (reliable) MPI transport:

* :class:`LogRecord` — one immutable entry, identified by
  ``(index, epoch)`` exactly like a Raft entry: ``index`` is the
  position in the log, ``epoch`` the head incarnation that wrote it.
* :class:`HeadLog` — the head-side append-only record list.  On
  failover the elected standby *adopts* its own replica as the new
  authoritative log (the old head's unreplicated suffix is lost by
  definition) and bumps the epoch.
* :class:`Replicator` — the replication machinery: a per-standby pump
  process on the head streams records in order (one in flight per
  standby; send completion acknowledges delivery), receivers on each
  standby append to their replica with Raft-style conflict handling
  (same ``(index, epoch)`` → duplicate, same index but different epoch
  → truncate the stale tail), and an election protocol picks the
  most-caught-up standby by ``(last epoch, replica length, lowest id)``.

Consistency contract used by the runtime:

* **Asynchronous by default, bounded lag** — appends return
  immediately; :meth:`Replicator.throttle` blocks the dispatch path
  once any live standby falls more than ``max_lag`` records behind.
* **Synchronous fences for non-idempotent work** —
  :meth:`Replicator.flush` blocks until every live standby has
  acknowledged the log as of the call; the runtime fences the
  bootstrap snapshot and every INOUT dispatch record this way, so an
  ambiguous in-place mutation can always be *detected* from a replica
  (a dispatch record with no matching completion) even when its
  outcome was lost.
* **Prefix property** — pumps send strictly in order, so every replica
  is a prefix of the head's log; a completion record can never survive
  a crash that its causally earlier records did not.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.sim.primitives import AnyOf

#: Tags on the replication communicator.
LOG_TAG = 1
ELECT_TAG = 2
ANNOUNCE_TAG = 3
_REPLY_TAG_BASE = 16


@dataclass(frozen=True)
class LogRecord:
    """One entry of the head's commit log.

    ``data`` is a small payload dict whose shape depends on ``kind``
    (the runtime defines the kinds); ``nbytes`` is the simulated wire
    size charged when the record streams to a standby.
    """

    index: int
    epoch: int
    kind: str
    nbytes: float
    data: dict = field(default_factory=dict)


class HeadLog:
    """The head-side ordered commit log."""

    def __init__(self, record_bytes: float = 64.0):
        self.record_bytes = record_bytes
        self.records: list[LogRecord] = []
        #: Head incarnation stamping new records (bumped per failover).
        self.epoch = 0
        #: Total records ever appended (across adoptions, for telemetry).
        self.appended = 0

    def __len__(self) -> int:
        return len(self.records)

    def append(self, kind: str, nbytes: float | None = None,
               **data: Any) -> LogRecord:
        rec = LogRecord(
            index=len(self.records),
            epoch=self.epoch,
            kind=kind,
            nbytes=self.record_bytes if nbytes is None else nbytes,
            data=data,
        )
        self.records.append(rec)
        self.appended += 1
        return rec

    def adopt(self, records: list[LogRecord], epoch: int) -> None:
        """Replace the log with an elected standby's replica.

        The new head's knowledge of the world *is* its replica; the old
        head's unacknowledged suffix died with it.
        """
        self.records = list(records)
        self.epoch = epoch


class Replicator:
    """Streams the head log to standbys; runs elections over replicas.

    Head-side state (``acked``) dies with the head — it is rebuilt
    after an election from the standbys' own replica lengths, which is
    why receivers track their replicas locally rather than trusting
    any head-side counter.
    """

    def __init__(
        self,
        sim,
        mpi,
        events,
        log: HeadLog,
        standbys: list[int],
        head: int = 0,
        max_lag: int = 64,
        election_bytes: float = 64.0,
    ):
        self.sim = sim
        self.events = events
        self.log = log
        self.head = head
        self.max_lag = max_lag
        self.election_bytes = election_bytes
        # Service traffic: replication streams and election rounds hold
        # fire-and-forget sends and long-lived receives by design — the
        # MPI checker must not audit them.
        self.comm = mpi.new_communicator(service=True)
        self.standbys = list(standbys)
        #: Standby-resident replicas (each node's own copy of the log).
        self.replicas: dict[int, list[LogRecord]] = {s: [] for s in standbys}
        #: Head-side delivery counters: records acknowledged per standby.
        self.acked: dict[int, int] = {s: 0 for s in standbys}
        self.stats = {
            "records_sent": 0,
            "bytes_sent": 0.0,
            "flushes": 0,
            "throttles": 0,
            "duplicates": 0,
            "truncations": 0,
        }
        self._more = None
        self._prog = None
        self._reply_seq = itertools.count()

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Spawn the standby-side receiver and election responder loops.

        These are cluster-lifetime processes (they belong to the
        standbys, not to any head epoch); the head-side pumps are
        epoch-scoped and spawned by the runtime via :meth:`pump`.
        """
        for s in self.standbys:
            self.sim.process(self._receiver(s), name=f"repl-recv{s}")
            self.sim.process(self._responder(s), name=f"repl-elect{s}")

    def live_standbys(self) -> list[int]:
        return [
            s for s in self.standbys
            if s != self.head and not self.events.node_failed(s)
        ]

    # -- head side -------------------------------------------------------
    def notify(self) -> None:
        """Wake pumps after an append (called by the runtime's logger)."""
        if self._more is not None and not self._more.triggered:
            self._more.succeed()

    def pump(self, standby: int):
        """Generator: stream log records to one standby, in order.

        One record in flight at a time; a completed (reliable) send is
        the delivery acknowledgement.  Epoch-scoped: the runtime spawns
        one pump per live standby per head epoch and interrupts them
        all when the head dies.
        """
        while True:
            if (
                self.events.node_failed(standby)
                or standby == self.head
                or standby not in self.acked
            ):
                return
            i = self.acked[standby]
            if i >= len(self.log.records):
                yield self._wait_more()
                continue
            rec = self.log.records[i]
            yield from self.comm.rank(self.head).send(
                standby, rec, rec.nbytes, tag=LOG_TAG
            )
            if self.events.node_failed(standby):
                return
            if self.acked.get(standby) == i:
                self.acked[standby] = i + 1
                self.stats["records_sent"] += 1
                self.stats["bytes_sent"] += rec.nbytes
                self._notify_progress()

    def committed(self) -> int:
        """Records acknowledged by *every* live standby.

        With no live standby left the whole log counts as committed —
        there is nobody whose acknowledgement could still matter.
        """
        live = self.live_standbys()
        if not live:
            return len(self.log.records)
        return min(self.acked[s] for s in live)

    def flush(self):
        """Generator: block until the log as of now is fully replicated.

        The synchronous fence: non-idempotent operations (INOUT
        dispatches, the bootstrap snapshot) must be *detectable* from
        every surviving replica before their side effects can happen.
        """
        self.stats["flushes"] += 1
        target = len(self.log.records)
        while True:
            live = self.live_standbys()
            if not live or min(self.acked[s] for s in live) >= target:
                return
            yield AnyOf(self.sim, [self._wait_progress()] + [
                self.events.failure_event(s) for s in live
            ])

    def throttle(self):
        """Generator: enforce the bounded-lag contract on dispatch."""
        while True:
            live = self.live_standbys()
            if not live:
                return
            if len(self.log.records) - min(
                self.acked[s] for s in live
            ) <= self.max_lag:
                return
            self.stats["throttles"] += 1
            yield AnyOf(self.sim, [self._wait_progress()] + [
                self.events.failure_event(s) for s in live
            ])

    # -- standby side ----------------------------------------------------
    def _receiver(self, standby: int):
        rank = self.comm.rank(standby)
        replica = self.replicas[standby]
        while True:
            msg = yield from rank.recv(tag=LOG_TAG)
            if self.events.node_failed(standby):
                return
            self._apply(replica, msg.payload)

    def _apply(self, replica: list[LogRecord], rec: LogRecord) -> None:
        """Append with Raft-style conflict handling.

        A record whose slot is already filled by the same epoch is a
        retransmitted duplicate (dropped); a different epoch at the
        same index means this replica carries a deposed head's stale
        tail, which is truncated before the new record lands.  A gap
        (index beyond the replica) cannot normally happen — pumps are
        serial — and is dropped for the pump to resend.
        """
        if rec.index < len(replica):
            if replica[rec.index].epoch == rec.epoch:
                self.stats["duplicates"] += 1
                return
            del replica[rec.index:]
            self.stats["truncations"] += 1
        if rec.index == len(replica):
            replica.append(rec)

    def _responder(self, standby: int):
        """Answer election state queries with this replica's position."""
        rank = self.comm.rank(standby)
        while True:
            msg = yield from rank.recv(tag=ELECT_TAG)
            if self.events.node_failed(standby):
                return
            _kind, reply_tag = msg.payload
            replica = self.replicas[standby]
            last_epoch = replica[-1].epoch if replica else -1
            rank.isend(
                msg.src, (standby, last_epoch, len(replica)),
                self.election_bytes, tag=reply_tag,
            )

    # -- election --------------------------------------------------------
    def elect(self, coordinator: int, exclude: frozenset = frozenset()):
        """Generator: query live standbys, pick the most caught up.

        Runs on ``coordinator`` (the node whose monitor confirmed the
        head's death).  Candidates answer with ``(last record epoch,
        replica length)``; the winner is the Raft-style maximum, ties
        broken toward the lowest node id for determinism.  Returns
        ``(winner, votes)`` or ``None`` when no candidate is left.
        """
        live = [
            s for s in self.standbys
            if s not in exclude and not self.events.node_failed(s)
        ]
        if not live:
            return None
        rank = self.comm.rank(coordinator)
        reply_tag = _REPLY_TAG_BASE + next(self._reply_seq)
        votes: dict[int, tuple[int, int]] = {}
        remote = []
        for s in live:
            if s == coordinator:
                # The coordinator is itself a standby: read locally.
                replica = self.replicas[s]
                votes[s] = (
                    replica[-1].epoch if replica else -1, len(replica)
                )
            else:
                rank.isend(s, ("state?", reply_tag), self.election_bytes,
                           tag=ELECT_TAG)
                remote.append(s)
        for s in remote:
            req = rank.irecv(src=s, tag=reply_tag)
            yield AnyOf(self.sim, [req.event, self.events.failure_event(s)])
            if req.test():
                node, last_epoch, count = req.event.value.payload
                votes[node] = (last_epoch, count)
            else:
                req.cancel()  # the candidate died mid-election
        if not votes:
            return None
        winner = max(votes, key=lambda s: (votes[s][0], votes[s][1], -s))
        return winner, votes

    def announce(self, coordinator: int, new_head: int,
                 live_nodes: list[int]):
        """Generator: publish the election outcome to every live node.

        Completion of the (reliable) sends is the acknowledgement; the
        announcement is what re-roots the workers' notion of the head
        in real deployments — here its cost is what matters, since
        simulated workers address no one by name.
        """
        rank = self.comm.rank(coordinator)
        reqs = [
            rank.isend(n, ("new-head", new_head), self.election_bytes,
                       tag=ANNOUNCE_TAG)
            for n in live_nodes if n != coordinator
        ]
        for req in reqs:
            yield from req.wait()

    def set_head(self, new_head: int, votes: dict[int, tuple[int, int]]) -> None:
        """Re-root replication at the elected head.

        Surviving standbys keep replicating from the new head; their
        delivery counters restart from their reported replica lengths,
        clamped to the adopted log (a longer stale tail is truncated by
        the receivers' conflict handling when new-epoch records land).
        """
        self.head = new_head
        self.standbys = [
            s for s in self.standbys
            if s != new_head and not self.events.node_failed(s)
        ]
        self.acked = {}
        for s in self.standbys:
            _ep, count = votes.get(s, (-1, 0))
            self.acked[s] = min(count, len(self.log.records))

    # -- wakeup plumbing -------------------------------------------------
    def _wait_more(self):
        if self._more is None or self._more.triggered:
            self._more = self.sim.event("headlog-more")
        return self._more

    def _wait_progress(self):
        if self._prog is None or self._prog.triggered:
            self._prog = self.sim.event("headlog-progress")
        return self._prog

    def _notify_progress(self) -> None:
        if self._prog is not None and not self._prog.triggered:
            self._prog.succeed()
