"""Distributed runtimes that execute Task Bench (§6).

Four runtimes, all built on the same simulated cluster substrate so the
comparison isolates their *mechanics*, exactly like the paper's
evaluation isolates runtime design on shared hardware:

* :class:`~repro.runtimes.ompc_adapter.OmpcRuntimeAdapter` — the full
  OMPC stack (event system, data manager, HEFT, head-node dispatch);
* :class:`~repro.runtimes.mpi_sync.MpiSyncRuntime` — the hand-written
  bulk-synchronous MPI implementation (the paper's best baseline);
* :class:`~repro.runtimes.starpu.StarPULikeRuntime` — distributed
  owner-computes dataflow with per-task scheduling overhead (StarPU-MPI
  style);
* :class:`~repro.runtimes.charmpp.CharmLikeRuntime` — message-driven
  chares with pack/unpack copies on inter-node messages (Charm++
  style).
"""

from repro.runtimes.base import TaskBenchRuntime, TBRunResult
from repro.runtimes.calibration import CHARM, MPI_SYNC, STARPU, RuntimeCosts
from repro.runtimes.charmpp import CharmLikeRuntime
from repro.runtimes.mpi_sync import MpiSyncRuntime
from repro.runtimes.ompc_adapter import OmpcRuntimeAdapter
from repro.runtimes.starpu import StarPULikeRuntime

__all__ = [
    "CHARM",
    "CharmLikeRuntime",
    "MPI_SYNC",
    "MpiSyncRuntime",
    "OmpcRuntimeAdapter",
    "RuntimeCosts",
    "STARPU",
    "StarPULikeRuntime",
    "TBRunResult",
    "TaskBenchRuntime",
]


def all_runtimes() -> list[TaskBenchRuntime]:
    """The four runtimes of the paper's comparison, OMPC first."""
    return [
        OmpcRuntimeAdapter(),
        CharmLikeRuntime(),
        StarPULikeRuntime(),
        MpiSyncRuntime(),
    ]
