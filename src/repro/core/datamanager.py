"""The Data Management module (§4.3).

Lives at the agnostic layer and keeps one coherent view of where every
mapped buffer resides across the cluster.  Location ``HOST`` (node 0)
is the head node; workers are nodes 1..N.  After a head failover the
directory is *rehomed* at the elected standby (:meth:`DataManager.rehome`)
and the host image follows it.

Coherency rules (verbatim from the paper):

* **Enter data** — after scheduling, each buffer is sent to the first
  node that will use it.
* **Exit data** — the buffer is retrieved from any of its previous
  locations to the head node and, if no longer used, removed from the
  entire cluster.
* **Target regions** — a buffer not present on the executing node is
  forwarded (copied) from its most recent location.  After execution,
  an ``inout``/``out`` dependency leaves the buffer *only* on the
  executing node (all other copies removed); a read-only buffer stays
  replicated for future reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.omp.task import Buffer, Task

#: Node id of the host (head node) in location maps.
HOST = 0


@dataclass(frozen=True)
class Move:
    """One planned copy: ``src → dst`` of a buffer."""

    buffer: Buffer
    src: int
    dst: int

    @property
    def from_host(self) -> bool:
        return self.src == HOST

    @property
    def to_host(self) -> bool:
        return self.dst == HOST


@dataclass
class _BufferState:
    """Where valid copies of one buffer live."""

    buffer: Buffer
    locations: set[int] = field(default_factory=lambda: {HOST})
    latest: int = HOST


class DataManager:
    """Head-side tracking of buffer locations and transfer planning.

    The manager only *plans* moves; the runtime performs them through
    the device plugin and then calls the ``commit_*`` methods.  Keeping
    planning pure makes the coherency logic directly unit-testable.
    """

    def __init__(self, home: int = HOST, analysis=None):
        self._state: dict[int, _BufferState] = {}
        #: The node hosting the program's "host" buffer image.  Node 0
        #: until a head failover rehomes the directory at the elected
        #: standby (host payloads travel by reference, so the new head
        #: serves the same objects).
        self.home = home
        #: Correctness-analysis sink (see :mod:`repro.analysis`): fed
        #: mapping events and read-before-map checks; ``None`` disables.
        self.analysis = analysis
        #: Tiered-store director (:mod:`repro.core.tiering`); ``None``
        #: keeps the hard-overflow behavior.  Installed via
        #: :meth:`configure_tiering` by runtimes with
        #: ``eviction_policy != "none"``.
        self.tiering = None

    # -- tiered store (repro.core.tiering) ---------------------------------
    def configure_tiering(
        self,
        capacities: dict[int, float],
        policy,
        capacity_fn=None,
        refetch_cost_fn=None,
    ) -> None:
        """Enable the tiered device→host→remote store.

        ``capacities`` maps worker node id → device capacity in bytes;
        ``policy`` is an :class:`repro.core.tiering.EvictionPolicy`.
        """
        from repro.core.tiering import MemoryDirector

        self.tiering = MemoryDirector(
            capacities,
            policy,
            capacity_fn=capacity_fn,
            refetch_cost_fn=refetch_cost_fn,
        )

    def pin(self, buffer_ids) -> None:
        """Protect buffers of an in-flight task frame from eviction."""
        if self.tiering is not None:
            self.tiering.pin(buffer_ids)

    def unpin(self, buffer_ids) -> None:
        if self.tiering is not None:
            self.tiering.unpin(buffer_ids)

    def mem_charge(self, buffer: Buffer, node: int) -> None:
        """Account device bytes the head committed to materializing."""
        if self.tiering is not None:
            self.tiering.charge(node, buffer)

    def mem_release(self, buffer: Buffer, node: int) -> None:
        """Account a completed physical DELETE on ``node``."""
        if self.tiering is not None:
            self.tiering.release(node, buffer.buffer_id)

    def _is_sole_copy(self, buffer: Buffer, node: int) -> bool:
        """True when ``node`` holds the only valid copy (dirty: eviction
        must spill to the host, not drop)."""
        return self._st(buffer).locations == {node}

    def plan_evictions(
        self, task: Task, node: int, incoming: list[Buffer]
    ):
        """Plan evictions to make room for ``incoming`` on ``node``.

        Delegates to the director (see
        :meth:`repro.core.tiering.MemoryDirector.plan`); charges the
        newcomers on success.  No-op (empty list) without tiering.
        """
        if self.tiering is None or not self.tiering.manages(node):
            return []
        self.tiering.touch(
            node, (d.buffer.buffer_id for d in task.deps)
        )
        return self.tiering.plan(task, node, incoming, self._is_sole_copy)

    def commit_evict(self, buffer: Buffer, node: int) -> None:
        """Update the directory after a buffer was evicted from ``node``.

        For a spill the caller already committed the device→host move,
        so dropping ``node`` leaves the host copy valid; for a clean
        drop another replica survives by construction.  ``latest`` is
        redirected deterministically (home if valid, else the smallest
        surviving holder).
        """
        st = self._st(buffer)
        st.locations.discard(node)
        if not st.locations:
            raise ValueError(
                f"eviction of {buffer.name} from node {node} would drop "
                f"the last valid copy"
            )
        if st.latest == node:
            st.latest = (
                self.home if self.home in st.locations
                else min(st.locations)
            )

    def rehome(self, node: int) -> None:
        """Move the host designation to ``node`` (head failover)."""
        self.home = node

    def _st(self, buffer: Buffer) -> _BufferState:
        st = self._state.get(buffer.buffer_id)
        if st is None:
            st = _BufferState(
                buffer, locations={self.home}, latest=self.home
            )
            self._state[buffer.buffer_id] = st
        return st

    # -- queries -----------------------------------------------------------
    def locations(self, buffer: Buffer) -> set[int]:
        """Nodes currently holding a valid copy."""
        return set(self._st(buffer).locations)

    def latest(self, buffer: Buffer) -> int:
        """The most recent (authoritative) location."""
        return self._st(buffer).latest

    def is_resident(self, buffer: Buffer, node: int) -> bool:
        return node in self._st(buffer).locations

    def host_is_stale(self, buffer: Buffer) -> int | None:
        """If the host image of ``buffer`` is invalid, the node holding
        the authoritative copy; ``None`` when the host copy is current.

        A device-side write invalidates the host replica
        (:meth:`commit_task_done`); until a ``target exit data``
        retrieves the value, a classical task reading the buffer on the
        host sees stale bytes — the race detector's stale-host-read
        diagnostic.
        """
        st = self._st(buffer)
        if self.home in st.locations:
            return None
        return st.latest

    # -- enter data ----------------------------------------------------------
    def plan_enter_data(self, buffer: Buffer, first_user_node: int) -> list[Move]:
        """Send the buffer to the first node that will use it (§4.3)."""
        st = self._st(buffer)
        if first_user_node in st.locations:
            return []
        return [Move(buffer, st.latest, first_user_node)]

    def commit_enter_data(self, buffer: Buffer, node: int) -> None:
        st = self._st(buffer)
        st.locations.add(node)
        st.latest = node
        if self.analysis is not None:
            self.analysis.on_mapped(buffer)

    # -- target regions ----------------------------------------------------
    def plan_for_task(self, task: Task, node: int) -> tuple[list[Move], list[Buffer]]:
        """What must happen before ``task`` may run on ``node``.

        Returns ``(moves, allocs)``: dependence buffers that are *read*
        and not resident are copied from their most recent location;
        buffers the task only *writes* (pure ``out`` dependence) need a
        device allocation but no data transfer — the task overwrites
        them entirely, so copying would move dead bytes.
        """
        moves: list[Move] = []
        allocs: list[Buffer] = []
        planned: set[int] = set()
        for dep in task.deps:
            st = self._st(dep.buffer)
            if self.analysis is not None and task.dep_type_for(
                dep.buffer
            ).reads:
                self.analysis.check_mapped(task, dep.buffer)
            if node in st.locations or dep.buffer.buffer_id in planned:
                continue
            planned.add(dep.buffer.buffer_id)
            if task.dep_type_for(dep.buffer).reads:
                moves.append(Move(dep.buffer, st.latest, node))
            else:
                allocs.append(dep.buffer)
        return moves, allocs

    def commit_alloc(self, buffer: Buffer, node: int) -> None:
        """Record a data-less device allocation (pure ``out`` dependence).

        The node joins the location set so co-resident readers skip
        redundant moves; ``latest`` is untouched — the node holds no
        meaningful bytes until the writer's ``commit_task_done``.
        """
        self._st(buffer).locations.add(node)
        if self.analysis is not None:
            self.analysis.on_mapped(buffer)

    def commit_move(self, move: Move) -> None:
        st = self._st(move.buffer)
        if move.src not in st.locations:
            raise ValueError(
                f"move of {move.buffer.name} from node {move.src}, which "
                f"holds no valid copy (valid: {sorted(st.locations)})"
            )
        st.locations.add(move.dst)

    def commit_task_done(
        self,
        task: Task,
        node: int,
        written_ids: set[int] | None = None,
    ) -> list[tuple[Buffer, int]]:
        """Update coherency after ``task`` ran on ``node``.

        Returns the stale copies to delete: ``(buffer, holder_node)``
        pairs for every invalidated replica of written buffers.  The
        caller issues DELETE events for pairs on worker nodes.

        ``written_ids`` optionally overrides the declared write set with
        the set the device *detected* (§7's page-protection write
        detection); buffers outside it are treated as read-only even if
        declared ``out``/``inout``.
        """
        stale: list[tuple[Buffer, int]] = []
        for dep in task.deps:
            st = self._st(dep.buffer)
            writes = (
                dep.buffer.buffer_id in written_ids
                if written_ids is not None
                else dep.type.writes
            )
            if writes:
                for holder in sorted(st.locations - {node}):
                    stale.append((dep.buffer, holder))
                st.locations = {node}
                st.latest = node
                if self.analysis is not None:
                    self.analysis.on_mapped(dep.buffer)
            else:
                # Read-only: keep all copies for future reuse.
                st.locations.add(node)
        return stale

    def commit_restore(self, buffer: Buffer, node: int | None = None) -> None:
        """Re-materialize a buffer on ``node`` after total copy loss.

        Used by checkpoint recovery: every previous location is gone
        (the failed nodes were already dropped by
        :meth:`on_node_failure`), and the restored bytes become the sole
        authoritative copy.  ``node`` defaults to the current home.
        """
        if node is None:
            node = self.home
        st = self._st(buffer)
        st.locations = {node}
        st.latest = node

    def invalidate(self, buffer: Buffer) -> None:
        """Drop *every* copy of ``buffer`` from the directory.

        Head failover uses this for buffers with an ambiguous in-place
        (INOUT) dispatch in the adopted log — the value may or may not
        carry the mutation, so only a checkpoint restore plus write-log
        replay can reproduce a well-defined state.
        """
        self._st(buffer).locations.clear()

    # -- failures -----------------------------------------------------------
    def on_node_failure(self, node: int) -> list[Buffer]:
        """Drop every copy held by a failed node (§3.1 fault tolerance).

        Returns the buffers whose *only* valid copy was lost — their
        producing tasks must be re-executed (lineage recovery).  For
        buffers with surviving replicas, ``latest`` is redirected to a
        deterministic survivor.
        """
        if node == self.home:
            raise ValueError(
                "cannot drop the home node's copies; rehome the "
                "directory at the elected head first (head failover)"
            )
        if self.tiering is not None:
            self.tiering.forget_node(node)
        lost: list[Buffer] = []
        for state in self._state.values():
            if node not in state.locations:
                continue
            state.locations.discard(node)
            if not state.locations:
                lost.append(state.buffer)
                continue
            if state.latest == node:
                state.latest = min(state.locations)
        return lost

    # -- exit data ----------------------------------------------------------
    def plan_exit_data(self, buffer: Buffer) -> list[Move]:
        """Retrieve the final value to the head node."""
        st = self._st(buffer)
        if self.home in st.locations and st.latest == self.home:
            return []
        return [Move(buffer, st.latest, self.home)]

    def commit_exit_data(self, buffer: Buffer) -> list[tuple[Buffer, int]]:
        """Mark the buffer host-resident; return worker copies to remove.

        "If needed (i.e., the program will not use the data anymore),
        the buffer is removed from the entire cluster."
        """
        st = self._st(buffer)
        removals = [
            (buffer, holder)
            for holder in sorted(st.locations - {self.home})
        ]
        st.locations = {self.home}
        st.latest = self.home
        return removals
