"""Elastic overload protection for the multi-tenant job manager.

The base :class:`~repro.jobs.manager.JobManager` assumes a fixed pool
and a well-behaved workload: queues grow without bound, a poison job
burns attempts forever, and a low-priority job can squat on nodes a
critical job needs.  This module is the graceful-degradation layer on
top — the machinery a cloud scheduler grows once demand routinely
exceeds capacity:

autoscaling
    An :class:`AutoscalerController` watches queue pressure (queued
    node-demand over online capacity) and moves nodes of an
    :class:`~repro.cluster.partition.ElasticNodePool` between offline,
    warming, and online states.  Scale-ups pay a warm-up cost before
    the nodes become allocatable; a cooldown plus the gap between the
    up/down pressure thresholds provides hysteresis so the controller
    does not flap.

admission throttling
    Per-tenant :class:`TokenBucket` rate limits plus a bounded queue.
    An arrival that exceeds its tenant's refill rate, or that finds the
    queue at its limit, is *shed* — finished immediately in state
    ``SHED`` with a reason, never admitted.  One bursty tenant drains
    only its own bucket; the others keep their full rate.

priority preemption
    When a high-priority job is blocked, lower-priority *preemptible*
    running jobs are evicted (least-priority, least-work-lost first via
    :func:`~repro.jobs.policies.select_victims`): the victim's runtime
    process is interrupted, its teardown handler unwinds the job's
    machinery, and the manager requeues it — no attempt charged — to
    restart from its program factory on fresh nodes once capacity
    returns.

dead-letter queue
    A job that exhausts ``max_attempts`` crashing, or that gets
    preempted more than ``max_preemptions`` times (preemption thrash),
    is quarantined into the :class:`DeadLetterQueue` with a
    :class:`DeadLetterRecord` naming the reason, instead of silently
    failing or crash-looping through the scheduler forever.

Everything is deterministic: token buckets refill from simulated
timestamps, the autoscaler ticks on a fixed interval, and victim
selection is a pure sort — a seeded overload trace replays
bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.machine import Cluster
from repro.cluster.partition import ElasticNodePool, NodePool
from repro.jobs.job import Job, JobState
from repro.jobs.manager import JobManager
from repro.jobs.policies import AdmissionPolicy, select_victims


@dataclass(frozen=True)
class ElasticConfig:
    """Tuning knobs of the elastic serving layer (all simulated units).

    The defaults suit the repository's Task Bench workloads (jobs run
    for tens of milliseconds); scale them with your job durations.
    """

    # -- admission throttling ---------------------------------------------
    #: Token refill rate per tenant (jobs/second); ``inf`` disables.
    rate: float = math.inf
    #: Bucket depth — the burst a tenant may submit instantly.
    burst: float = 8.0
    #: Queue bound; arrivals finding this many queued jobs are shed.
    #: ``None`` leaves the queue unbounded.
    queue_limit: int | None = 64

    # -- autoscaling -------------------------------------------------------
    #: Run the autoscaler at all (needs an elastic pool).
    autoscale: bool = True
    #: Worker nodes online at t=0 (None: the whole pool).
    initial_online: int | None = None
    #: Controller tick period.
    check_interval: float = 0.005
    #: Boot cost a scale-up pays before nodes become allocatable.
    warmup_time: float = 0.02
    #: Scale up when queued node-demand / online capacity >= this.
    scale_up_pressure: float = 0.25
    #: Scale down only when pressure <= this (and the queue is empty);
    #: the gap to ``scale_up_pressure`` is the hysteresis band.
    scale_down_pressure: float = 0.05
    #: Most nodes moved per scaling decision.
    scale_step: int = 4
    #: Minimum time between two scaling decisions.
    cooldown: float = 0.02
    #: Never scale below this many online nodes.
    min_online: int = 2

    # -- preemption --------------------------------------------------------
    #: Evict preemptible lower-priority jobs for blocked higher-priority
    #: ones.
    preemption: bool = True
    #: Preemptions a single job tolerates before it is dead-lettered as
    #: thrashing (it clearly cannot hold nodes long enough to finish).
    max_preemptions: int = 3

    # -- service-level objective ------------------------------------------
    #: Target p99 bounded slowdown for *admitted* jobs; reports compare
    #: against it.  ``inf`` disables the check.
    slo_bounded_slowdown: float = math.inf

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be > 0 (use inf to disable)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 or None")
        if self.scale_down_pressure > self.scale_up_pressure:
            raise ValueError(
                "scale_down_pressure must not exceed scale_up_pressure "
                "(the gap is the hysteresis band)"
            )
        if self.min_online < 1:
            raise ValueError("min_online must be >= 1")
        if self.max_preemptions < 0:
            raise ValueError("max_preemptions must be >= 0")


class TokenBucket:
    """Deterministic token bucket: refill is a pure function of the
    simulated clock, so seeded runs replay identically."""

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last = now

    def try_take(self, now: float, cost: float = 1.0) -> bool:
        """Refill up to ``now``, then spend ``cost`` tokens if present."""
        if self.rate == math.inf:
            return True
        self.tokens = min(
            self.burst, self.tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self.tokens + 1e-12 >= cost:
            self.tokens -= cost
            return True
        return False


@dataclass(frozen=True)
class DeadLetterRecord:
    """Why one job was quarantined."""

    job_id: int
    name: str
    tenant: str
    #: ``"failures"`` (ran out of attempts) or ``"preemption"`` (thrash).
    kind: str
    reason: str
    time: float
    attempts: int
    preemptions: int


class DeadLetterQueue:
    """Terminal parking lot for jobs the cluster gave up on.

    Quarantined jobs stop consuming scheduler attention but their
    records stay inspectable — the operator's triage list.
    """

    def __init__(self) -> None:
        self.records: list[DeadLetterRecord] = []

    def append(self, record: DeadLetterRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for rec in self.records:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out


class AutoscalerController:
    """Grows and shrinks an :class:`ElasticNodePool` from queue pressure.

    Pressure is queued node-demand over online-or-warming capacity.
    Above ``scale_up_pressure`` (with parked nodes available and the
    cooldown elapsed) the controller warms up enough nodes to cover the
    shortfall, capped at ``scale_step``; warm-ups take
    ``warmup_time`` before :meth:`ElasticNodePool.complete_warmup`
    makes the nodes allocatable.  At or below ``scale_down_pressure``
    with an empty queue, free nodes park again — never below
    ``min_online``, never a held node.
    """

    def __init__(self, manager: "ElasticJobManager"):
        self.manager = manager
        self.pool: ElasticNodePool = manager.pool
        self.cfg = manager.elastic
        self.scale_ups = 0
        self.scale_downs = 0
        self._last_change = -math.inf
        manager.sim.process(self._loop(), name="autoscaler")

    # -- signals -----------------------------------------------------------
    def queued_demand(self) -> int:
        return sum(job.spec.nodes for job in self.manager.queue)

    def pressure(self) -> float:
        cap = self.pool.capacity + self.pool.warming_count
        return self.queued_demand() / max(cap, 1)

    # -- control loop ------------------------------------------------------
    def _loop(self):
        sim = self.manager.sim
        while True:
            yield sim.timeout(self.cfg.check_interval)
            self._tick()

    def _tick(self) -> None:
        cfg, pool, obs = self.cfg, self.pool, self.manager.obs
        now = self.manager.sim.now
        obs.gauge_set("jobs.pool_online", pool.capacity)
        obs.gauge_set("jobs.pool_warming", pool.warming_count)
        obs.gauge_set("jobs.pool_offline", pool.offline_count)
        if now - self._last_change < cfg.cooldown:
            return
        demand = self.queued_demand()
        pressure = self.pressure()
        if pressure >= cfg.scale_up_pressure and pool.offline_count:
            shortfall = demand - pool.free_count - pool.warming_count
            want = max(1, min(cfg.scale_step, shortfall))
            taken = pool.begin_warmup(want)
            if taken:
                self._last_change = now
                self.scale_ups += 1
                obs.count("jobs.scale_up")
                self.manager.sim.process(
                    self._warmup(taken), name="autoscaler-warmup"
                )
            return
        if (
            pressure <= cfg.scale_down_pressure
            and not self.manager.queue
            and pool.capacity > cfg.min_online
        ):
            spare = min(
                cfg.scale_step,
                pool.free_count,
                pool.capacity - cfg.min_online,
            )
            if spare > 0 and pool.take_offline(spare):
                self._last_change = now
                self.scale_downs += 1
                obs.count("jobs.scale_down")

    def _warmup(self, node_ids: tuple[int, ...]):
        yield self.manager.sim.timeout(self.cfg.warmup_time)
        self.pool.complete_warmup(node_ids)
        self.manager.obs.gauge_set("jobs.pool_online", self.pool.capacity)
        self.manager.obs.gauge_set(
            "jobs.pool_warming", self.pool.warming_count
        )
        self.manager._schedule()


class ElasticJobManager(JobManager):
    """A :class:`JobManager` with overload protection.

    Adds per-tenant token-bucket admission, a bounded queue with load
    shedding, priority preemption of preemptible jobs, an autoscaled
    node pool, and a dead-letter queue for jobs that repeatedly crash
    or thrash.  Drop-in replacement for the base manager — a workload
    that never overloads the cluster schedules identically.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy: "str | AdmissionPolicy" = "fifo",
        default_config=None,
        slowdown_tau: float = 1e-3,
        elastic: ElasticConfig | None = None,
    ):
        #: Elastic knobs; read by ``_make_pool`` during ``super().__init__``.
        self.elastic = elastic or ElasticConfig()
        super().__init__(
            cluster,
            policy=policy,
            default_config=default_config,
            slowdown_tau=slowdown_tau,
        )
        #: Reports compare admitted jobs' p99 bounded slowdown to this.
        self.slo_bounded_slowdown = self.elastic.slo_bounded_slowdown
        self.dead_letters = DeadLetterQueue()
        self._buckets: dict[str, TokenBucket] = {}
        #: Job ids with an eviction in flight (interrupt issued, the
        #: teardown has not yet released the partition) — their nodes
        #: count as pledged so one blocked job never evicts more
        #: victims than it needs.
        self._preempting: set[int] = set()
        self.autoscaler = (
            AutoscalerController(self)
            if self.elastic.autoscale
            and isinstance(self.pool, ElasticNodePool)
            else None
        )

    # -- pool --------------------------------------------------------------
    def _make_pool(self, cluster: Cluster) -> NodePool:
        if not self.elastic.autoscale:
            return super()._make_pool(cluster)
        return ElasticNodePool(
            cluster, reserved=(0,),
            initial_online=self.elastic.initial_online,
        )

    # -- admission ---------------------------------------------------------
    def _admit(self, job: Job) -> str | None:
        cfg = self.elastic
        tenant = job.spec.tenant
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                cfg.rate, cfg.burst, now=self.sim.now
            )
        if not bucket.try_take(self.sim.now):
            self.obs.count(f"jobs.shed.{tenant}")
            return (
                f"tenant {tenant!r} over its rate limit "
                f"({cfg.rate:g}/s, burst {cfg.burst:g}): shed"
            )
        if cfg.queue_limit is not None and len(self.queue) >= cfg.queue_limit:
            self.obs.count(f"jobs.shed.{tenant}")
            return f"queue full ({cfg.queue_limit} jobs deep): shed"
        return None

    # -- dead-letter quarantine --------------------------------------------
    def _quarantine_or_fail(self, job: Job, reason: str, kind: str) -> None:
        self.dead_letters.append(DeadLetterRecord(
            job_id=job.job_id,
            name=job.spec.name,
            tenant=job.spec.tenant,
            kind=kind,
            reason=reason,
            time=self.sim.now,
            attempts=job.attempts,
            preemptions=job.preemptions,
        ))
        self.obs.count(f"jobs.dead_letter.{kind}")
        self._finish_job(job, JobState.DEAD_LETTERED, error=reason)

    def _preemption_thrash(self, job: Job) -> bool:
        if job.preemptions <= self.elastic.max_preemptions:
            return False
        self._quarantine_or_fail(
            job,
            f"preempted {job.preemptions} times without finishing "
            f"(> {self.elastic.max_preemptions}): thrashing",
            kind="preemption",
        )
        self._schedule()
        return True

    # -- preemption --------------------------------------------------------
    def _schedule(self) -> None:
        super()._schedule()
        if self.elastic.preemption:
            self._maybe_preempt()

    def _on_preempted(self, job: Job, partial, cause: str) -> None:
        self._preempting.discard(job.job_id)
        super()._on_preempted(job, partial, cause)

    def _release_partition(self, job, dead_virtual) -> None:
        self._preempting.discard(job.job_id)
        super()._release_partition(job, dead_virtual)

    def _maybe_preempt(self) -> None:
        if not self.queue:
            return
        head = min(self.queue, key=AdmissionPolicy.fcfs_key)
        # Nodes already pledged by in-flight evictions count as free:
        # the interrupt has been issued, the partition returns as soon
        # as the victim's teardown unwinds.
        pledged = sum(
            len(self.running[jid].partition)
            for jid in self._preempting
            if jid in self.running
        )
        free = self.pool.free_count + pledged
        if free >= head.spec.nodes:
            return
        victims = select_victims(
            head, self, free=free, exclude=self._preempting
        )
        for victim in victims:
            proc = self._procs.get(victim.job_id)
            if proc is None or not getattr(proc, "is_alive", False):
                continue
            self._preempting.add(victim.job_id)
            self.obs.count("jobs.preemptions_issued")
            proc.interrupt(
                f"preempted for {head.spec.name!r} "
                f"(priority {head.spec.priority} > {victim.spec.priority})"
            )
