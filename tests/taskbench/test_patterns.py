"""Tests for Task Bench dependency patterns (Fig. 4)."""

import pytest

from repro.taskbench import Pattern, dependencies, dependents
from repro.taskbench.patterns import average_in_degree


class TestBasics:
    def test_first_step_has_no_dependences(self):
        for pattern in Pattern:
            assert dependencies(pattern, 8, 0, 3) == ()

    def test_paper_patterns(self):
        assert Pattern.paper_patterns() == (
            Pattern.TRIVIAL,
            Pattern.STENCIL_1D,
            Pattern.FFT,
            Pattern.TREE,
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"width": 0, "step": 0, "point": 0},
            {"width": 4, "step": -1, "point": 0},
            {"width": 4, "step": 0, "point": 4},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            dependencies(Pattern.TRIVIAL, **kwargs)

    def test_fft_requires_pow2_width(self):
        with pytest.raises(ValueError, match="power-of-two"):
            dependencies(Pattern.FFT, 6, 1, 0)


class TestTrivial:
    def test_never_any_deps(self):
        for step in range(5):
            for p in range(8):
                assert dependencies(Pattern.TRIVIAL, 8, step, p) == ()


class TestNoComm:
    def test_serial_chains(self):
        assert dependencies(Pattern.NO_COMM, 8, 3, 5) == (5,)


class TestStencil:
    def test_interior_point(self):
        assert dependencies(Pattern.STENCIL_1D, 8, 1, 4) == (3, 4, 5)

    def test_boundaries_clamped(self):
        assert dependencies(Pattern.STENCIL_1D, 8, 1, 0) == (0, 1)
        assert dependencies(Pattern.STENCIL_1D, 8, 1, 7) == (6, 7)

    def test_width_one(self):
        assert dependencies(Pattern.STENCIL_1D, 1, 1, 0) == (0,)

    def test_periodic_wraps(self):
        assert dependencies(Pattern.STENCIL_1D_PERIODIC, 8, 1, 0) == (0, 1, 7)
        assert dependencies(Pattern.STENCIL_1D_PERIODIC, 8, 1, 7) == (0, 6, 7)
        assert dependencies(Pattern.STENCIL_1D_PERIODIC, 8, 1, 4) == (3, 4, 5)


class TestFft:
    def test_butterfly_strides_double(self):
        # width 8 -> log2 = 3; strides cycle 1, 2, 4, 1, 2, 4, ...
        assert dependencies(Pattern.FFT, 8, 1, 0) == (0, 1)
        assert dependencies(Pattern.FFT, 8, 2, 0) == (0, 2)
        assert dependencies(Pattern.FFT, 8, 3, 0) == (0, 4)
        assert dependencies(Pattern.FFT, 8, 4, 0) == (0, 1)

    def test_partner_symmetry(self):
        for step in range(1, 6):
            for p in range(8):
                deps = dependencies(Pattern.FFT, 8, step, p)
                partner = [q for q in deps if q != p]
                assert len(partner) == 1
                # The partnership is mutual.
                assert p in dependencies(Pattern.FFT, 8, step, partner[0])

    def test_width_one_fft(self):
        assert dependencies(Pattern.FFT, 1, 3, 0) == (0,)


class TestTree:
    def test_binary_fanout(self):
        assert dependencies(Pattern.TREE, 8, 1, 0) == (0,)
        assert dependencies(Pattern.TREE, 8, 1, 5) == (2,)
        assert dependencies(Pattern.TREE, 8, 1, 7) == (3,)

    def test_each_parent_feeds_two_children(self):
        kids = dependents(Pattern.TREE, 8, 0, 2)
        assert kids == (4, 5)


class TestAllToAll:
    def test_depends_on_every_point(self):
        assert dependencies(Pattern.ALL_TO_ALL, 4, 2, 1) == (0, 1, 2, 3)


class TestNearest:
    def test_radius_two_interior(self):
        assert dependencies(Pattern.NEAREST, 10, 1, 5) == (3, 4, 5, 6, 7)

    def test_boundaries_clipped(self):
        assert dependencies(Pattern.NEAREST, 10, 1, 0) == (0, 1, 2)
        assert dependencies(Pattern.NEAREST, 10, 1, 9) == (7, 8, 9)


class TestSpread:
    def test_three_spread_deps(self):
        deps = dependencies(Pattern.SPREAD, 9, 1, 0)
        assert len(deps) == 3
        assert all(0 <= d < 9 for d in deps)

    def test_rotates_with_step(self):
        d1 = dependencies(Pattern.SPREAD, 9, 1, 0)
        d2 = dependencies(Pattern.SPREAD, 9, 2, 0)
        assert d1 != d2

    def test_small_width_degenerates(self):
        assert dependencies(Pattern.SPREAD, 1, 3, 0) == (0,)


class TestDependents:
    @pytest.mark.parametrize("pattern", list(Pattern))
    @pytest.mark.parametrize("width", [1, 2, 8])
    def test_inverse_of_dependencies(self, pattern, width):
        if pattern == Pattern.FFT and width == 1:
            pytest.skip("degenerate")
        for step in range(3):
            for producer in range(width):
                for consumer in dependents(pattern, width, step, producer):
                    assert producer in dependencies(
                        pattern, width, step + 1, consumer
                    )

    def test_stencil_dependents(self):
        assert dependents(Pattern.STENCIL_1D, 8, 0, 4) == (3, 4, 5)


class TestAverageInDegree:
    def test_trivial_zero(self):
        assert average_in_degree(Pattern.TRIVIAL, 8, 10) == 0.0

    def test_no_comm_one(self):
        assert average_in_degree(Pattern.NO_COMM, 8, 10) == 1.0

    def test_stencil_under_three(self):
        d = average_in_degree(Pattern.STENCIL_1D, 8, 10)
        assert 2.5 < d < 3.0

    def test_single_step_zero(self):
        assert average_in_degree(Pattern.STENCIL_1D, 8, 1) == 0.0
