"""The experiment launcher: sweep a config across runtimes on the
simulated cluster and collect per-cell measurement records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.config import ExperimentConfig
from repro.bench.stats import Summary, summarize
from repro.cluster.machine import ClusterSpec
from repro.runtimes import (
    CharmLikeRuntime,
    MpiSyncRuntime,
    OmpcRuntimeAdapter,
    StarPULikeRuntime,
    TaskBenchRuntime,
)
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec

#: Registry of runtime names accepted in experiment configs.
RUNTIME_FACTORIES: dict[str, Callable[[], TaskBenchRuntime]] = {
    "ompc": OmpcRuntimeAdapter,
    "charmpp": CharmLikeRuntime,
    "starpu": StarPULikeRuntime,
    "mpi": MpiSyncRuntime,
}


@dataclass(frozen=True)
class Record:
    """One cell of an experiment: a (runtime, pattern, nodes, ccr) point."""

    experiment: str
    runtime: str
    pattern: str
    nodes: int
    ccr: float
    width: int
    steps: int
    summary: Summary
    network_bytes: float = 0.0


@dataclass(frozen=True)
class CellFailure:
    """A grid cell whose run raised instead of producing a Record."""

    experiment: str
    runtime: str
    pattern: str
    nodes: int
    ccr: float
    error: str


@dataclass
class Launcher:
    """Runs experiment configs and accumulates records.

    ``bandwidth`` is the reference fabric bandwidth used to derive
    CCR-matched message sizes (defaults to the 100 Gb/s of §6.1).

    A cell that raises does not abort the sweep: its error is captured
    in ``failures`` and the grid moves on, so an overnight matrix still
    yields every healthy point.
    """

    bandwidth: float = 100e9 / 8.0
    records: list[Record] = field(default_factory=list)
    failures: list[CellFailure] = field(default_factory=list)
    progress: Callable[[str], None] | None = None

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(self, config: ExperimentConfig) -> list[Record]:
        """Execute the full parameter grid of ``config``."""
        new_records: list[Record] = []
        for runtime_name in config.runtimes:
            try:
                factory = RUNTIME_FACTORIES[runtime_name]
            except KeyError:
                raise ValueError(
                    f"unknown runtime {runtime_name!r}; "
                    f"known: {sorted(RUNTIME_FACTORIES)}"
                ) from None
            for pattern_name in config.patterns:
                pattern = Pattern(pattern_name)
                for nodes in config.nodes:
                    for ccr in config.ccrs:
                        try:
                            record = self._run_cell(
                                config, factory(), runtime_name, pattern,
                                nodes, ccr,
                            )
                        except Exception as exc:
                            failure = CellFailure(
                                experiment=config.name,
                                runtime=runtime_name,
                                pattern=pattern.value,
                                nodes=nodes,
                                ccr=ccr,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            self.failures.append(failure)
                            self._log(
                                f"{config.name}: {runtime_name} "
                                f"{pattern.value} nodes={nodes} ccr={ccr} "
                                f"FAILED ({failure.error})"
                            )
                            continue
                        new_records.append(record)
        self.records.extend(new_records)
        return new_records

    def _run_cell(
        self,
        config: ExperimentConfig,
        runtime: TaskBenchRuntime,
        runtime_name: str,
        pattern: Pattern,
        nodes: int,
        ccr: float,
    ) -> Record:
        width = config.width_for(nodes)
        spec = TaskBenchSpec.with_ccr(
            width,
            config.steps,
            pattern,
            KernelSpec(config.iterations),
            ccr,
            self.bandwidth,
        )
        self._log(
            f"{config.name}: {runtime.name} {pattern.value} "
            f"nodes={nodes} ccr={ccr}"
        )
        makespans = []
        bytes_moved = 0.0
        for _rep in range(config.repetitions):
            result = runtime.run(spec, ClusterSpec(num_nodes=nodes))
            makespans.append(result.makespan)
            bytes_moved = result.network_bytes
        return Record(
            experiment=config.name,
            runtime=runtime.name,
            pattern=pattern.value,
            nodes=nodes,
            ccr=ccr,
            width=width,
            steps=config.steps,
            summary=summarize(makespans),
            network_bytes=bytes_moved,
        )

    # -- queries over accumulated records ---------------------------------
    def select(
        self,
        experiment: str | None = None,
        runtime: str | None = None,
        pattern: str | None = None,
        nodes: int | None = None,
        ccr: float | None = None,
    ) -> list[Record]:
        out = []
        for r in self.records:
            if experiment is not None and r.experiment != experiment:
                continue
            if runtime is not None and r.runtime != runtime:
                continue
            if pattern is not None and r.pattern != pattern:
                continue
            if nodes is not None and r.nodes != nodes:
                continue
            if ccr is not None and r.ccr != ccr:
                continue
            out.append(r)
        return out
