"""Task Bench dependency patterns (Fig. 4).

``dependencies(pattern, width, step, point)`` gives the points of
timestep ``step - 1`` the task at ``(step, point)`` reads from; the
first timestep has no dependences.  The four patterns the paper
evaluates:

* **trivial** — no dependences at all (embarrassingly parallel grid);
* **stencil_1d** — each point reads its ``{p-1, p, p+1}`` neighborhood;
* **fft** — a butterfly: ``{p, p XOR 2^((step-1) mod log2(width))}``,
  so the stride doubles each step and wraps (requires a power-of-two
  width, like the paper's ``2n×32`` and ``16×16`` grids);
* **tree** — a binary fan-out: point ``p`` reads point ``p // 2``.

Two further Task Bench patterns are provided for the extension benches:
``no_comm`` (serial chains, i.e. ``{p}``) and ``all_to_all``.
"""

from __future__ import annotations

import enum
from functools import lru_cache


class Pattern(enum.Enum):
    TRIVIAL = "trivial"
    NO_COMM = "no_comm"
    STENCIL_1D = "stencil_1d"
    STENCIL_1D_PERIODIC = "stencil_1d_periodic"
    FFT = "fft"
    TREE = "tree"
    ALL_TO_ALL = "all_to_all"
    #: Task Bench's wider-halo stencil: the +-2 neighborhood.
    NEAREST = "nearest"
    #: Task Bench's long-range pattern: a few dependences spread across
    #: the whole width, rotating with the timestep so every pair of
    #: points eventually communicates.
    SPREAD = "spread"

    @classmethod
    def paper_patterns(cls) -> tuple["Pattern", ...]:
        """The four patterns of the paper's Figures 4–6."""
        return (cls.TRIVIAL, cls.STENCIL_1D, cls.FFT, cls.TREE)


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _validate(pattern: Pattern, width: int, step: int, point: int) -> None:
    if width < 1:
        raise ValueError("width must be >= 1")
    if step < 0:
        raise ValueError("step must be >= 0")
    if not 0 <= point < width:
        raise ValueError(f"point {point} out of range [0, {width})")
    if pattern == Pattern.FFT and not _is_pow2(width):
        raise ValueError("the fft pattern requires a power-of-two width")


def dependencies(
    pattern: Pattern, width: int, step: int, point: int
) -> tuple[int, ...]:
    """Points at ``step - 1`` that ``(step, point)`` depends on (sorted)."""
    _validate(pattern, width, step, point)
    if step == 0:
        return ()
    if pattern == Pattern.TRIVIAL:
        return ()
    if pattern == Pattern.NO_COMM:
        return (point,)
    if pattern == Pattern.STENCIL_1D:
        return tuple(
            p for p in (point - 1, point, point + 1) if 0 <= p < width
        )
    if pattern == Pattern.STENCIL_1D_PERIODIC:
        return tuple(
            sorted({(point - 1) % width, point, (point + 1) % width})
        )
    if pattern == Pattern.FFT:
        stride = 1 << ((step - 1) % max(width.bit_length() - 1, 1))
        partner = point ^ stride
        return tuple(sorted({point, partner} & set(range(width))))
    if pattern == Pattern.TREE:
        return (point // 2,)
    if pattern == Pattern.ALL_TO_ALL:
        return tuple(range(width))
    if pattern == Pattern.NEAREST:
        return tuple(
            p for p in range(point - 2, point + 3) if 0 <= p < width
        )
    if pattern == Pattern.SPREAD:
        k = min(3, width)
        return tuple(
            sorted({(point + step + i * width // k) % width for i in range(k)})
        )
    raise AssertionError(f"unhandled pattern {pattern}")  # pragma: no cover


@lru_cache(maxsize=4096)
def _dependents_table(pattern: Pattern, width: int, step: int) -> tuple[tuple[int, ...], ...]:
    """Inverse mapping for one timestep: consumers at ``step + 1``."""
    table: list[list[int]] = [[] for _ in range(width)]
    for consumer in range(width):
        for producer in dependencies(pattern, width, step + 1, consumer):
            table[producer].append(consumer)
    return tuple(tuple(row) for row in table)


def dependents(
    pattern: Pattern, width: int, step: int, point: int
) -> tuple[int, ...]:
    """Points at ``step + 1`` that read the output of ``(step, point)``."""
    _validate(pattern, width, step, point)
    return _dependents_table(pattern, width, step)[point]


def average_in_degree(pattern: Pattern, width: int, steps: int) -> float:
    """Mean dependence count over all tasks with ``step >= 1``."""
    if steps < 2:
        return 0.0
    total = sum(
        len(dependencies(pattern, width, step, point))
        for step in range(1, steps)
        for point in range(width)
    )
    return total / (width * (steps - 1))
