"""Property-based tests for the MPI layer and the fluid network."""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterSpec, Network, NetworkSpec
from repro.mpi import MpiWorld
from repro.mpi.collectives import allreduce, bcast, gather, reduce, scatter
from repro.sim import Simulator


@given(
    n=st.integers(min_value=1, max_value=12),
    root=st.integers(min_value=0, max_value=11),
    value=st.integers(),
)
@settings(deadline=None, max_examples=50)
def test_bcast_delivers_everywhere(n, root, value):
    root %= n
    cluster = Cluster(ClusterSpec(num_nodes=n))
    mpi = MpiWorld(cluster, overhead=0.0)
    results = {}

    def body(rid):
        got = yield from bcast(
            mpi.world.rank(rid), value if rid == root else None, root=root
        )
        results[rid] = got

    for rid in range(n):
        cluster.sim.process(body(rid))
    cluster.sim.run(check_deadlock=True)
    assert results == {rid: value for rid in range(n)}


@given(
    n=st.integers(min_value=1, max_value=10),
    values=st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=10, max_size=10),
)
@settings(deadline=None, max_examples=50)
def test_allreduce_sum_matches_python_sum(n, values):
    cluster = Cluster(ClusterSpec(num_nodes=n))
    mpi = MpiWorld(cluster, overhead=0.0)
    contributions = values[:n]
    results = {}

    def body(rid):
        got = yield from allreduce(
            mpi.world.rank(rid), contributions[rid], operator.add
        )
        results[rid] = got

    for rid in range(n):
        cluster.sim.process(body(rid))
    cluster.sim.run(check_deadlock=True)
    expected = sum(contributions)
    assert all(v == expected for v in results.values())


@given(
    n=st.integers(min_value=1, max_value=10),
    root=st.integers(min_value=0, max_value=9),
)
@settings(deadline=None, max_examples=50)
def test_scatter_gather_roundtrip(n, root):
    root %= n
    cluster = Cluster(ClusterSpec(num_nodes=n))
    mpi = MpiWorld(cluster, overhead=0.0)
    original = [f"item{i}" for i in range(n)]
    gathered = {}

    def body(rid):
        rank = mpi.world.rank(rid)
        mine = yield from scatter(
            rank, original if rid == root else None, root=root
        )
        back = yield from gather(rank, mine, root=root, phase=1)
        if rid == root:
            gathered["result"] = back

    for rid in range(n):
        cluster.sim.process(body(rid))
    cluster.sim.run(check_deadlock=True)
    assert gathered["result"] == original


@given(
    sizes=st.lists(
        st.floats(min_value=1.0, max_value=1e8), min_size=1, max_size=15
    ),
    vcis=st.integers(min_value=1, max_value=8),
)
@settings(deadline=None, max_examples=50)
def test_fluid_network_conserves_bytes_and_bounds_time(sizes, vcis):
    """All transfers complete; accounting matches; total time is at
    least the aggregate serialization bound of the busiest NIC."""
    sim = Simulator()
    spec = NetworkSpec(latency=0.0, bandwidth=1e9, vcis=vcis)
    net = Network(sim, 2, spec)
    done = [0]

    def proc(nbytes):
        yield from net.transfer(0, 1, nbytes)
        done[0] += 1

    for nbytes in sizes:
        sim.process(proc(nbytes))
    sim.run(check_deadlock=True)
    assert done[0] == len(sizes)
    assert net.total_messages == len(sizes)
    assert net.total_bytes == sum(int(s) for s in sizes)
    # The shared 1 GB/s TX link needs at least sum(bytes)/bw seconds.
    lower_bound = sum(sizes) / 1e9
    assert sim.now >= lower_bound * (1 - 1e-6)


@given(
    messages=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # src
            st.integers(min_value=0, max_value=3),  # dst
            st.integers(min_value=0, max_value=7),  # tag
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(deadline=None, max_examples=50)
def test_mpi_messages_never_lost_or_duplicated(messages):
    """Every sent message is received exactly once by a matching recv."""
    cluster = Cluster(ClusterSpec(num_nodes=4))
    mpi = MpiWorld(cluster, overhead=0.0)
    received = []

    def sender():
        for i, (src, dst, tag) in enumerate(messages):
            yield from mpi.world.rank(src).send(dst, i, nbytes=10, tag=tag)

    def receiver(rid):
        expected = [
            (i, src, tag)
            for i, (src, dst, tag) in enumerate(messages)
            if dst == rid
        ]
        for _ in expected:
            msg = yield from mpi.world.rank(rid).recv()
            received.append(msg.payload)

    cluster.sim.process(sender())
    for rid in range(4):
        cluster.sim.process(receiver(rid))
    cluster.sim.run(check_deadlock=True)
    assert sorted(received) == list(range(len(messages)))
