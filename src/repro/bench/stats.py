"""Average and dispersion statistics over repeated executions."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Summary statistics of one measurement series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def relative_std(self) -> float:
        """Coefficient of variation (0 when the mean is 0)."""
        return self.std / self.mean if self.mean else 0.0


def summarize(values: Sequence[float]) -> Summary:
    """Mean and dispersion of ``values`` (sample standard deviation)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot summarize an empty series")
    n = len(vals)
    mean = sum(vals) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in vals) / (n - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    return Summary(n, mean, std, min(vals), max(vals))


def speedup(baseline: Summary, other: Summary) -> float:
    """How many times faster ``other`` is than ``baseline`` (time ratio)."""
    if other.mean <= 0:
        raise ValueError("other.mean must be > 0")
    return baseline.mean / other.mean


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot average an empty series")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
