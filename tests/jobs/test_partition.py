"""Tests for cluster partitioning: ClusterView and NodePool."""

import numpy as np
import pytest

from repro.cluster import ClusterView, NodePool, PartitionError
from repro.cluster.machine import Cluster, ClusterSpec
from repro.core import OMPCConfig, OMPCRuntime
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_out


def small_program(tasks: int = 4, cost: float = 0.01) -> OmpProgram:
    prog = OmpProgram("part-test")
    src = np.arange(8.0)
    buf = prog.buffer(src.nbytes, data=src, name="in")
    prog.target_enter_data(buf)
    outs = []
    for i in range(tasks):
        out = prog.buffer(64, name=f"out{i}")
        outs.append(out)
        prog.target(depend=[depend_in(buf), depend_out(out)],
                    cost=cost, name=f"t{i}")
    prog.target_exit_data(*outs)
    return prog


class TestClusterView:
    def test_virtual_numbering(self):
        cluster = Cluster(ClusterSpec(num_nodes=8))
        view = ClusterView(cluster, (3, 5, 6))
        assert view.num_nodes == 3
        assert [n.node_id for n in view.nodes] == [0, 1, 2]
        assert [n.physical_id for n in view.nodes] == [3, 5, 6]
        assert view.physical_id(2) == 6
        assert view.head.physical_id == 3

    def test_shares_physical_resources(self):
        cluster = Cluster(ClusterSpec(num_nodes=6))
        view = ClusterView(cluster, (2, 4))
        assert view.node(0).cpu is cluster.node(2).cpu
        assert view.node(1).memory is cluster.node(4).memory

    def test_rejects_bad_node_sets(self):
        cluster = Cluster(ClusterSpec(num_nodes=4))
        with pytest.raises(PartitionError):
            ClusterView(cluster, ())
        with pytest.raises(PartitionError):
            ClusterView(cluster, (1, 1))
        with pytest.raises(PartitionError):
            ClusterView(cluster, (3, 4))

    def test_runtime_executes_on_view(self):
        cluster = Cluster(ClusterSpec(num_nodes=8))
        view = ClusterView(cluster, (1, 2, 3))
        runtime = OMPCRuntime(view.spec, OMPCConfig())
        proc, finish = runtime.launch(small_program(), cluster=view)
        cluster.sim.run(until=proc)
        result = finish()
        assert result.makespan > 0
        assert len(result.task_intervals) >= 4

    def test_view_matches_standalone_run(self):
        """A job on a view behaves exactly as on its own cluster."""
        alone = OMPCRuntime(ClusterSpec(num_nodes=3), OMPCConfig())
        expected = alone.run(small_program())

        cluster = Cluster(ClusterSpec(num_nodes=8))
        view = ClusterView(cluster, (4, 5, 6))
        runtime = OMPCRuntime(view.spec, OMPCConfig())
        proc, finish = runtime.launch(small_program(), cluster=view)
        cluster.sim.run(until=proc)
        result = finish()
        assert result.makespan == expected.makespan
        assert len(result.task_intervals) == len(expected.task_intervals)

    def test_disjoint_views_isolated_counters(self):
        cluster = Cluster(ClusterSpec(num_nodes=8))
        va = ClusterView(cluster, (1, 2, 3), name="a")
        vb = ClusterView(cluster, (4, 5, 6), name="b")
        ra = OMPCRuntime(va.spec, OMPCConfig())
        rb = OMPCRuntime(vb.spec, OMPCConfig())
        pa, fa = ra.launch(small_program(), cluster=va)
        pb, fb = rb.launch(small_program(), cluster=vb)
        cluster.sim.run(until=pa)
        cluster.sim.run(until=pb)
        res_a, res_b = fa(), fb()
        assert len(res_a.task_intervals) == len(res_b.task_intervals)
        # Per-view network counters only see their own traffic.
        assert va.network.total_bytes == vb.network.total_bytes
        assert va.network.total_bytes > 0
        # The physical fabric carried both.
        assert cluster.network.total_bytes >= 2 * va.network.total_bytes


class TestNodePool:
    def test_reserved_node_never_allocated(self):
        cluster = Cluster(ClusterSpec(num_nodes=5))
        pool = NodePool(cluster, reserved=(0,))
        assert pool.capacity == 4
        got = pool.allocate(4, holder="j")
        assert 0 not in got

    def test_lowest_ids_first_deterministic(self):
        cluster = Cluster(ClusterSpec(num_nodes=8))
        pool = NodePool(cluster)
        assert pool.allocate(3, holder="a") == (1, 2, 3)
        assert pool.allocate(2, holder="b") == (4, 5)
        pool.release((1, 2, 3))
        assert pool.allocate(2, holder="c") == (1, 2)

    def test_allocate_more_than_free_raises(self):
        cluster = Cluster(ClusterSpec(num_nodes=4))
        pool = NodePool(cluster)
        pool.allocate(2, holder="a")
        with pytest.raises(PartitionError):
            pool.allocate(2, holder="b")

    def test_retire_shrinks_capacity(self):
        cluster = Cluster(ClusterSpec(num_nodes=5))
        pool = NodePool(cluster)
        got = pool.allocate(2, holder="a")
        pool.retire(got[0])
        pool.release(got)
        assert pool.capacity == 3
        assert got[0] not in pool.free_nodes()

    def test_holder_tracking(self):
        cluster = Cluster(ClusterSpec(num_nodes=5))
        pool = NodePool(cluster)
        got = pool.allocate(2, holder="jobA")
        assert pool.holder_of(got[0]) == "jobA"
        pool.release(got)
        assert pool.holder_of(got[0]) is None
