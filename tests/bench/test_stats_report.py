"""Tests for statistics and report formatting."""

import pytest

from repro.bench.report import format_series, format_table
from repro.bench.stats import Summary, geometric_mean, speedup, summarize


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert (s.minimum, s.maximum) == (1.0, 3.0)

    def test_single_value_zero_std(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.relative_std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_relative_std(self):
        s = summarize([9.0, 11.0])
        assert s.relative_std == pytest.approx(s.std / 10.0)


class TestSpeedup:
    def test_ratio(self):
        base = summarize([10.0])
        fast = summarize([4.0])
        assert speedup(base, fast) == pytest.approx(2.5)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            speedup(summarize([1.0]), Summary(1, 0.0, 0.0, 0.0, 0.0))


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(
            ["name", "time"], [["a", 1.23456], ["long-name", 2.0]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.235" in out
        assert lines[1].startswith("name")
        # Columns aligned: the separator row matches header width.
        assert len(lines[2]) == len(lines[1])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_series_rows(self):
        out = format_series(
            "nodes", [2, 4], {"OMPC": [1.0, 2.0], "MPI": [0.5, 1.0]},
            title="Fig X",
        )
        assert "Fig X" in out
        assert "OMPC" in out and "1.000s" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"s": [1.0]})
