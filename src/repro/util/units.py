"""Unit constants and formatters.

All simulation times are seconds, sizes are bytes, bandwidths are
bytes/second.  These constants keep calibration code legible.
"""

from __future__ import annotations

# -- sizes (decimal and binary) ------------------------------------------
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30

# -- times ------------------------------------------------------------------
NANOSECOND = 1e-9
MICROSECOND = 1e-6
MILLISECOND = 1e-3


def Gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return value * 1e9 / 8.0


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration with an appropriate unit."""
    s = float(seconds)
    if s == 0.0:
        return "0s"
    if abs(s) < 1e-6:
        return f"{s * 1e9:.1f}ns"
    if abs(s) < 1e-3:
        return f"{s * 1e6:.1f}us"
    if abs(s) < 1.0:
        return f"{s * 1e3:.2f}ms"
    if abs(s) < 120.0:
        return f"{s:.3f}s"
    return f"{s / 60.0:.2f}min"
