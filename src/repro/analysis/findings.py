"""The shared finding/report format of all three analyzers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Ranked severity of one finding (higher sorts first in reports)."""

    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by an analyzer.

    ``rule`` is a stable kebab-case identifier (``missing-dep-race``,
    ``leaked-request``, ...); ``analyzer`` names the producer (``race``,
    ``mpi``, or ``lint``).  ``tasks`` and ``buffer`` carry the program
    objects involved, by name, so reports stay readable after the run
    objects are gone.
    """

    rule: str
    severity: Severity
    message: str
    analyzer: str
    tasks: tuple[str, ...] = ()
    buffer: str | None = None

    @property
    def location(self) -> str:
        parts = " ↔ ".join(self.tasks) if self.tasks else "-"
        if self.buffer:
            parts = f"{parts} @ {self.buffer}"
        return parts

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.name,
            "message": self.message,
            "analyzer": self.analyzer,
            "tasks": list(self.tasks),
            "buffer": self.buffer,
        }


@dataclass
class AnalysisReport:
    """Everything the analyzers found about one program/run."""

    program: str = ""
    findings: list[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.findings)

    def by_rule(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def by_analyzer(self, analyzer: str) -> list[Finding]:
        return [f for f in self.findings if f.analyzer == analyzer]

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def has_errors(self) -> bool:
        return any(f.severity == Severity.ERROR for f in self.findings)

    def ranked(self) -> list[Finding]:
        """Findings sorted most-severe first, then by rule and location
        (a deterministic order for tables and tests)."""
        return sorted(
            self.findings,
            key=lambda f: (-int(f.severity), f.analyzer, f.rule, f.location),
        )

    # -- rendering ---------------------------------------------------------
    def summary(self) -> str:
        return (
            f"{len(self.findings)} finding(s): "
            f"{self.count(Severity.ERROR)} error(s), "
            f"{self.count(Severity.WARNING)} warning(s), "
            f"{self.count(Severity.INFO)} info"
        )

    def format_table(self) -> str:
        """A severity-ranked table of every finding."""
        if not self.findings:
            return "no findings"
        rows = [("SEVERITY", "ANALYZER", "RULE", "LOCATION", "MESSAGE")]
        for f in self.ranked():
            rows.append(
                (f.severity.name, f.analyzer, f.rule, f.location, f.message)
            )
        widths = [
            max(len(row[col]) for row in rows) for col in range(4)
        ]
        lines = []
        for row in rows:
            lead = "  ".join(
                cell.ljust(widths[col]) for col, cell in enumerate(row[:4])
            )
            lines.append(f"{lead}  {row[4]}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "program": self.program,
            "summary": self.summary(),
            "findings": [f.to_dict() for f in self.ranked()],
        }
