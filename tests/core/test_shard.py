"""Tests for the sharded control plane (repro.core.shard)."""

import pytest

from repro.cluster import ClusterSpec, shard_reserved
from repro.cluster.partition import PartitionError
from repro.core import OMPCConfig, OMPCRuntime
from repro.core.shard import (
    BlockPolicy,
    ConsistentHashPolicy,
    ShardDirectory,
    ShardedRuntime,
    ShardPlaneError,
    ShardRunResult,
    make_partition_policy,
    stable_hash,
)
from repro.omp.task import TaskKind
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.taskbench.bench import build_omp_program

BANDWIDTH = 100e9 / 8.0


def stencil(width=16, steps=4):
    spec = TaskBenchSpec.with_ccr(
        width, steps, Pattern.STENCIL_1D, KernelSpec.paper_50ms(),
        1.0, BANDWIDTH,
    )
    return build_omp_program(spec)


class TestPartitionPolicies:
    def test_stable_hash_is_deterministic_and_salted(self):
        assert stable_hash("t1") == stable_hash("t1")
        assert stable_hash("t1") != stable_hash("t2")
        assert stable_hash("t1") != stable_hash("t1", salt="ring")

    def test_consistent_hash_covers_all_shards(self):
        policy = ConsistentHashPolicy(4)
        owners = {policy.shard_of(i) for i in range(256)}
        assert owners == {0, 1, 2, 3}

    def test_consistent_hash_is_stable_under_repeat(self):
        a = ConsistentHashPolicy(4)
        b = ConsistentHashPolicy(4)
        assert [a.shard_of(i) for i in range(64)] == \
               [b.shard_of(i) for i in range(64)]

    def test_block_policy_is_contiguous(self):
        policy = BlockPolicy(4)
        keys = list(range(100))
        policy.prepare(keys)
        # Non-decreasing over the policy's key order: contiguous blocks.
        ordered = sorted(keys, key=lambda k: (str(type(k)), str(k)))
        owners = [policy.shard_of(k) for k in ordered]
        assert owners == sorted(owners)
        assert set(owners) == {0, 1, 2, 3}

    def test_make_partition_policy(self):
        assert isinstance(make_partition_policy("hash", 2),
                          ConsistentHashPolicy)
        assert isinstance(make_partition_policy("block", 2), BlockPolicy)
        with pytest.raises(ValueError):
            make_partition_policy("nope", 2)


class TestShardDirectory:
    def make(self, shards=4, policy="hash"):
        prog = stencil()
        prog.validate()
        return prog, ShardDirectory(prog.graph, shards, policy=policy)

    def test_every_task_owned(self):
        prog, directory = self.make()
        for task in prog.graph.tasks():
            sid = directory.owner_of(task.task_id)
            assert 0 <= sid < 4
        total = sum(len(directory.tasks_of(s)) for s in range(4))
        assert total == len(list(prog.graph.tasks()))

    def test_host_work_pinned_to_shard_zero(self):
        prog, directory = self.make()
        for task in prog.graph.tasks():
            if task.kind in (TaskKind.CLASSICAL, TaskKind.TARGET_EXIT_DATA):
                assert directory.owner_of(task.task_id) == 0

    def test_cross_edges_match_ownership(self):
        prog, directory = self.make()
        for pid, cid, sp, sc in directory.cross_edges:
            assert sp != sc
            assert directory.owner_of(pid) == sp
            assert directory.owner_of(cid) == sc

    def test_lease_needs_cover_cross_edges(self):
        prog, directory = self.make()
        needs = directory.lease_needs()
        for pid, _cid, sp, sc in directory.cross_edges:
            assert pid in needs[sc]
            assert sp != sc

    def test_subgraph_keeps_internal_edges_only(self):
        prog, directory = self.make()
        for s in range(4):
            sub = directory.subgraph(s)
            owned = {t.task_id for t in directory.tasks_of(s)}
            assert {t.task_id for t in sub.tasks()} == owned
            for pred, succ in sub.edges():
                assert pred.task_id in owned
                assert succ.task_id in owned

    def test_block_policy_directory(self):
        prog, directory = self.make(policy="block")
        stats = directory.stats()
        assert stats["tasks"] == len(list(prog.graph.tasks()))


class TestShardReserved:
    def test_reserved_prefix(self):
        assert shard_reserved(1) == (0,)
        assert shard_reserved(4) == (0, 1, 2, 3)
        with pytest.raises(PartitionError):
            shard_reserved(0)


class TestShardedRuntimeValidation:
    def test_single_shard_rejected(self):
        with pytest.raises(ValueError, match="head_shards"):
            ShardedRuntime(ClusterSpec(num_nodes=8),
                           OMPCConfig(head_shards=1))

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            ShardedRuntime(ClusterSpec(num_nodes=4),
                           OMPCConfig(head_shards=4))

    def test_injection_requires_gossip_and_standbys(self):
        with pytest.raises(ValueError):
            ShardedRuntime(
                ClusterSpec(num_nodes=16),
                OMPCConfig(head_shards=2, head_standbys=1),
                inject_failures=((0.1, 1),),
            )
        with pytest.raises(ValueError):
            ShardedRuntime(
                ClusterSpec(num_nodes=16),
                OMPCConfig(head_shards=2, gossip=True),
                inject_failures=((0.1, 1),),
            )

    def test_root_manager_unkillable(self):
        with pytest.raises(ValueError, match="node 0"):
            ShardedRuntime(
                ClusterSpec(num_nodes=16),
                OMPCConfig(head_shards=2, gossip=True, head_standbys=1),
                inject_failures=((0.1, 0),),
            )


class TestShardedExecution:
    def test_two_shard_run_completes_all_tasks(self):
        prog = stencil()
        cfg = OMPCConfig(head_shards=2)
        runtime = OMPCRuntime(ClusterSpec(num_nodes=16), cfg)
        res = runtime.run(prog)
        assert isinstance(res, ShardRunResult)
        assert res.makespan > 0
        num_tasks = len(list(prog.graph.tasks()))
        assert res.counters["shard.dispatches"] == num_tasks
        assert len(res.task_intervals) == num_tasks
        assert res.counters["shard.forwards"] > 0
        assert res.counters["shard.forwards"] == res.counters["shard.leases"]
        assert set(res.shard_stats) == {0, 1}
        assert sum(s.dispatched for s in res.shard_stats.values()) \
            == num_tasks
        report = res.utilization_report()
        assert "shard" in report and "busy%" in report

    def test_delegation_preserves_results_shape(self):
        runtime = OMPCRuntime(ClusterSpec(num_nodes=16),
                              OMPCConfig(head_shards=4))
        res = runtime.run(stencil())
        assert res.startup_time > 0
        assert res.shutdown_time > 0
        assert runtime.last_cluster is not None

    def test_gossip_run_records_rounds(self):
        cfg = OMPCConfig(head_shards=2, gossip=True)
        runtime = OMPCRuntime(ClusterSpec(num_nodes=16), cfg)
        res = runtime.run(stencil())
        assert res.gossip_rounds > 0
        assert res.detections == []

    def test_manager_failover_recovers_and_dedups(self):
        prog = stencil(width=32, steps=6)
        cfg = OMPCConfig(head_shards=4, gossip=True, head_standbys=1)
        runtime = ShardedRuntime(ClusterSpec(num_nodes=32), cfg,
                                 inject_failures=((0.08, 2),))
        main, finish = runtime.launch(prog)
        main.sim.run(until=main)
        res = finish()
        assert res.makespan > 0
        assert [d for d, _by, _t in res.detections] == [2]
        assert res.counters["shard.failovers"] == 1
        failed_over = [s for s in res.shard_stats.values()
                       if s.failovers == 1]
        assert len(failed_over) == 1
        assert failed_over[0].manager != 2  # a standby took over
        num_tasks = len(list(prog.graph.tasks()))
        assert len(res.task_intervals) == num_tasks

    def test_tiering_combination_rejected(self):
        cfg = OMPCConfig(head_shards=2, device_memory_bytes=1e9,
                         eviction_policy="lru")
        with pytest.raises(ValueError, match="tier"):
            ShardedRuntime(ClusterSpec(num_nodes=16), cfg)
