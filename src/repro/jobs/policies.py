"""Admission policies: which queued jobs get nodes right now.

Each policy is a pure decision function over the manager's visible
state (queue contents, free node count, running jobs and their
estimated ends, per-tenant usage): given the queue, return the jobs to
start *now*, in order.  The manager re-invokes the policy on every
queue change (arrival, completion, requeue), so policies never sleep or
look into the future — except EASY backfill, which reasons about the
future *analytically* through runtime estimates.

Three classic disciplines:

``fifo``
    First-come-first-served with strict head-of-line blocking: if the
    oldest job does not fit, nothing behind it may pass.  Simple and
    starvation-free, but fragmenting — big jobs leave idle nodes.

``fair``
    Fair share per tenant: the queue is ordered by each tenant's
    accumulated node-seconds (least-served first), so one tenant
    flooding the queue cannot starve the others.  Still head-of-line
    blocking within the fair order.

``backfill``
    EASY backfill (Lifka's argonne scheme): FCFS order, but while the
    head job waits for nodes it gets a *reservation* at the earliest
    time enough nodes free up (the shadow time), and smaller jobs may
    jump the queue iff they cannot delay that reservation — they
    either finish before the shadow time or use only nodes the head
    job won't need.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.jobs.job import Job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jobs.manager import JobManager


class AdmissionPolicy:
    """Decide which queued jobs to start, given the manager's state."""

    #: Registry key (subclasses set it; ``POLICIES`` maps it back).
    name = "abstract"

    def select(
        self, queue: list[Job], manager: "JobManager"
    ) -> list[tuple[Job, bool]]:
        """Jobs to start now as ``(job, is_backfill)`` pairs, in order.

        Must be consistent: the returned jobs' node demands fit in
        ``manager.pool.free_count`` cumulatively.
        """
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------
    @staticmethod
    def fcfs_key(job: Job):
        """Priority first (higher sooner), then arrival, then id."""
        return (-job.spec.priority, job.submit_time, job.job_id)

    @staticmethod
    def _take_prefix(
        order: list[Job], free: int
    ) -> tuple[list[tuple[Job, bool]], list[Job], int]:
        """Start jobs from the front while they fit; stop at the first
        that does not (head-of-line blocking)."""
        picks: list[tuple[Job, bool]] = []
        index = 0
        for job in order:
            if job.spec.nodes > free:
                break
            picks.append((job, False))
            free -= job.spec.nodes
            index += 1
        return picks, order[index:], free


class FifoPolicy(AdmissionPolicy):
    """Strict FCFS: nothing passes a blocked queue head."""

    name = "fifo"

    def select(self, queue, manager):
        order = sorted(queue, key=self.fcfs_key)
        picks, _rest, _free = self._take_prefix(order, manager.pool.free_count)
        return picks


class FairSharePolicy(AdmissionPolicy):
    """Least-served tenant first, by accumulated node-seconds.

    A tenant's usage grows by ``nodes × runtime`` for every completed
    (or currently-running, charged on completion) job, so the ordering
    continuously re-balances: tenants that consumed little recently
    move to the front regardless of how many requests the heavy tenant
    has queued.  Ties fall back to FCFS order.
    """

    name = "fair"

    def select(self, queue, manager):
        def key(job: Job):
            return (manager.tenant_usage.get(job.spec.tenant, 0.0),
                    *self.fcfs_key(job))

        order = sorted(queue, key=key)
        picks, _rest, _free = self._take_prefix(order, manager.pool.free_count)
        return picks


class EasyBackfillPolicy(AdmissionPolicy):
    """EASY backfill: FCFS with a reservation for the blocked head.

    When the head job cannot start, compute its *shadow time* — the
    earliest instant enough nodes will be free, assuming running jobs
    end at their estimates — and the *extra* nodes left over at that
    instant.  A smaller queued job may start now iff it fits the free
    nodes and either (a) its estimate ends before the shadow time, or
    (b) it uses only extra nodes.  Jobs with unknown estimates can
    only backfill through (b).
    """

    name = "backfill"

    def select(self, queue, manager):
        free = manager.pool.free_count
        order = sorted(queue, key=self.fcfs_key)
        picks, rest, free = self._take_prefix(order, free)
        if not rest:
            return picks

        head = rest[0]
        shadow, extra = self._reservation(head, manager, free)
        now = manager.sim.now
        for job in rest[1:]:
            if job.spec.nodes > free:
                continue
            est = job.spec.est_runtime
            fits_window = est > 0 and now + est <= shadow
            fits_extra = job.spec.nodes <= extra
            if fits_window:
                pass  # done before the head needs any of these nodes
            elif fits_extra:
                extra -= job.spec.nodes  # may run past the shadow time
            else:
                continue
            picks.append((job, True))
            free -= job.spec.nodes
        return picks

    @staticmethod
    def _reservation(
        head: Job, manager: "JobManager", free: int
    ) -> tuple[float, int]:
        """The head job's reservation: ``(shadow_time, extra_nodes)``.

        Walk running jobs in estimated-end order, accumulating the
        nodes each release; the shadow time is when the head's demand
        is first covered.  A running job with an unknown estimate
        releases at +inf, so nodes held by it never enter the shadow
        computation — conservative, never delays the head.
        """
        available = free
        if available >= head.spec.nodes:  # pragma: no cover - head fits
            return manager.sim.now, available - head.spec.nodes
        running = sorted(
            manager.running.values(), key=manager.estimated_end_of
        )
        for job in running:
            end = manager.estimated_end_of(job)
            available += len(job.partition)
            if available >= head.spec.nodes:
                return end, available - head.spec.nodes
        # Not coverable even when everything ends (pool shrank or the
        # estimates are unknown): no reservation to protect, backfill
        # may only use currently-free nodes that are extra by definition.
        return math.inf, free


def select_victims(
    job: Job,
    manager: "JobManager",
    free: int | None = None,
    exclude: "set[int] | frozenset[int]" = frozenset(),
) -> list[Job]:
    """Pick running jobs to evict so ``job`` can start.

    Victims must be preemptible and strictly lower priority than the
    blocked job.  Among candidates, the lowest priority goes first, and
    within a priority tier the most recently started (least work lost);
    ties break on job id so the choice is deterministic.  Returns the
    minimal prefix of that order whose partitions, together with the
    currently free nodes, cover the demand — or ``[]`` if no subset
    does (nobody is evicted for an unwinnable fight).
    """
    if free is None:
        free = manager.pool.free_count
    if free >= job.spec.nodes:
        return []
    candidates = [
        victim for victim in manager.running.values()
        if victim.spec.preemptible
        and victim.spec.priority < job.spec.priority
        and victim.job_id not in exclude
    ]
    candidates.sort(
        key=lambda v: (v.spec.priority, -(v.start_time or 0.0), -v.job_id)
    )
    victims: list[Job] = []
    for victim in candidates:
        victims.append(victim)
        free += len(victim.partition)
        if free >= job.spec.nodes:
            return victims
    return []


#: Policy registry for CLI/benchmark selection by name.
POLICIES: dict[str, type[AdmissionPolicy]] = {
    policy.name: policy
    for policy in (FifoPolicy, FairSharePolicy, EasyBackfillPolicy)
}


def make_policy(policy: "str | AdmissionPolicy") -> AdmissionPolicy:
    """Resolve a policy instance from a name or pass one through."""
    if isinstance(policy, AdmissionPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; choose from {sorted(POLICIES)}"
        ) from None
