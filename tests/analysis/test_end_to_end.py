"""Analysis threaded through the full simulator (acceptance tests)."""

import dataclasses

import numpy as np

from repro.analysis import demo_program
from repro.analysis.findings import Severity
from repro.cluster import ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.faults import FaultTolerantRuntime, NodeFailure
from repro.core.runtime import OMPCRuntime
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_out

FAST = OMPCConfig(
    startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
    event_origin_overhead=0.0, event_handler_overhead=0.0,
    task_creation_overhead=0.0, schedule_unit_cost=0.0,
)


def run(program, **config_overrides):
    config = dataclasses.replace(FAST, **config_overrides)
    return OMPCRuntime(ClusterSpec(num_nodes=4), config).run(program)


class TestAcceptance:
    def test_racy_demo_reports_exactly_the_missing_clause(self):
        result = run(demo_program(racy=True), analysis=True)
        report = result.analysis
        assert report is not None
        races = report.by_rule("missing-dep-race")
        assert len(races) == 1
        assert len(report) == 1  # zero false positives
        (race,) = races
        assert race.severity == Severity.ERROR
        assert race.tasks == ("reader", "writer")
        assert race.buffer == "B"
        assert report.has_errors

    def test_clean_demo_is_silent(self):
        result = run(demo_program(racy=False), analysis=True)
        assert result.analysis is not None
        assert len(result.analysis) == 0
        assert not result.analysis.has_errors

    def test_analysis_never_perturbs_the_simulation(self):
        # Bit-identical timing and traffic with the analyzers on/off.
        on = run(demo_program(racy=True), analysis=True)
        off = run(demo_program(racy=True), analysis=False)
        assert on.makespan == off.makespan
        assert on.network_bytes == off.network_bytes
        assert on.network_messages == off.network_messages
        assert off.analysis is None

    def test_obs_counters_emitted(self):
        result = run(demo_program(racy=True), analysis=True, trace=True)
        counters = result.obs.metrics
        assert counters.counter("analysis.findings").value == 1.0
        assert counters.counter("analysis.findings.error").value == 1.0
        assert counters.counter("analysis.findings.race").value == 1.0
        assert counters.counter("analysis.race.accesses").value > 0
        assert counters.counter("analysis.mpi.tracked_requests").value > 0


def shots_program(num_shots=4, cost=0.05):
    prog = OmpProgram("shots")
    model = np.arange(16.0)
    model_buf = prog.buffer(model.nbytes, data=model, name="model")
    prog.target_enter_data(model_buf)
    out_bufs = []
    for i in range(num_shots):
        out = np.zeros(16)
        buf = prog.buffer(out.nbytes, data=out, name=f"out{i}")
        out_bufs.append(buf)
        prog.target(
            fn=lambda m, o: np.copyto(o, m * 2.0),
            depend=[depend_in(model_buf), depend_out(buf)],
            cost=cost,
            name=f"shot{i}",
        )
    prog.target_exit_data(*out_bufs)
    return prog


class TestFaultTolerantRuntimeAnalysis:
    def test_clean_ft_run_has_no_findings(self):
        # Heartbeats, pings, and datagram traffic must all be excluded
        # (service communicators); a clean run reports nothing.
        config = dataclasses.replace(FAST, analysis=True)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), config)
        result = rt.run(shots_program())
        assert result.analysis is not None
        assert len(result.analysis) == 0

    def test_recovery_reexecution_is_not_a_race(self):
        # A worker dies mid-run; tasks re-execute on survivors.  The
        # re-executions are system work (stale ctx tokens) and must not
        # manufacture race reports, and traffic stranded by the crash
        # must not show up as unmatched messages.
        config = dataclasses.replace(FAST, analysis=True)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), config)
        result = rt.run(
            shots_program(cost=0.1),
            failures=[NodeFailure(time=0.05, node=1)],
        )
        assert result.failures == [1]
        assert result.analysis is not None
        assert result.analysis.by_rule("missing-dep-race") == []
        assert not result.analysis.has_errors
