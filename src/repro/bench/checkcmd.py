"""The ``check`` subcommand: static + dynamic correctness analysis.

Usage::

    python -m repro.bench check demo-racy
    python -m repro.bench check stencil_1d --nodes 4 --steps 4
    python -m repro.bench check demo-clean --json

Runs the :mod:`repro.analysis` suite over one scenario: the static
linter inspects the program as built; unless ``--static-only`` is
given, the program then executes on the simulated cluster with
``OMPCConfig(analysis=True)`` — vector-clock race detection over the
actual buffer accesses plus the MPI request/message audit.  Findings
print as a severity-ranked table; the exit status is 1 when any
ERROR-level finding exists (CI-friendly), else 0.

Scenarios are either the built-in demos (``demo-clean``, ``demo-racy``
— a missing-dependence race pair) or any Task Bench dependence
pattern.
"""

from __future__ import annotations

import argparse
import json

from repro.analysis import AnalysisReport, demo_program, lint_program
from repro.cluster.machine import ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.runtime import OMPCRuntime
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.taskbench.bench import build_omp_program

#: Reference fabric bandwidth for CCR-derived payload sizes (§6.1).
DEFAULT_BANDWIDTH = 100e9 / 8.0

DEMOS = ("demo-clean", "demo-racy")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench check",
        description="Run the correctness analyzers over one scenario.",
    )
    parser.add_argument(
        "scenario",
        choices=sorted(DEMOS) + sorted(p.value for p in Pattern),
        help="built-in demo program or Task Bench pattern to check",
    )
    parser.add_argument("--nodes", type=int, default=4,
                        help="cluster size incl. the head node (default 4)")
    parser.add_argument("--width", type=int, default=None,
                        help="tasks per step (default: 2 per worker)")
    parser.add_argument("--steps", type=int, default=4,
                        help="timesteps in the task graph (default 4)")
    parser.add_argument("--iterations", type=int, default=1_000_000,
                        help="kernel iterations per task (default 1e6)")
    parser.add_argument("--ccr", type=float, default=1.0,
                        help="computation-to-communication ratio (default 1)")
    parser.add_argument("--static-only", action="store_true",
                        help="lint the program without simulating a run")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON instead of a table")
    return parser


def build_program(args):
    if args.scenario in DEMOS:
        return demo_program(racy=args.scenario == "demo-racy")
    width = args.width if args.width is not None else 2 * (args.nodes - 1)
    spec = TaskBenchSpec.with_ccr(
        width,
        args.steps,
        Pattern(args.scenario),
        KernelSpec(args.iterations),
        args.ccr,
        DEFAULT_BANDWIDTH,
    )
    return build_omp_program(spec)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.nodes < 2:
        raise SystemExit("check needs a head node plus >= 1 worker")
    program = build_program(args)

    if args.static_only:
        report = AnalysisReport(program=program.name)
        report.extend(lint_program(program))
    else:
        runtime = OMPCRuntime(
            ClusterSpec(num_nodes=args.nodes), OMPCConfig(analysis=True)
        )
        result = runtime.run(program)
        report = result.analysis
        assert report is not None  # analysis=True guarantees a report

    if args.as_json:
        print(json.dumps(report.to_json(), indent=1))
    else:
        mode = "static lint" if args.static_only else "full analysis"
        print(f"{program.name}: {mode}, {report.summary()}")
        print(report.format_table())
    return 1 if report.has_errors else 0
