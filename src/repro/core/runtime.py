"""The OMPC runtime: end-to-end execution of an OmpProgram on a cluster.

Execution follows §3.1/§4.4:

1. the process starts on the head node (startup: MPI init, event-system
   spin-up, gate-thread creation);
2. the control thread creates every task *without executing it* —
   worker threads are kept idle;
3. at the implicit barrier the whole task graph is scheduled with HEFT
   (cost ``O(e × p)``);
4. tasks whose dependences are satisfied are dispatched: the data
   manager plans buffer moves (submit from head, or worker-to-worker
   exchange), the event system performs them, and an EXECUTE event runs
   the target region;
5. completions release dependents until the graph drains; exit-data
   tasks retrieve results to the head node;
6. the event system shuts down (gate-thread destruction, process end).

The §7 limitation is modeled exactly: each in-flight task occupies one
of ``config.head_threads`` slots ("an OpenMP thread at the head node is
always blocked, waiting for a target region to complete, even when it
is marked as nowait"), which is what bends the weak-scaling curves at
32–64 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.findings import AnalysisReport
from repro.analysis.hooks import Analysis
from repro.cluster.machine import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.datamanager import HOST, DataManager, Move
from repro.core.events import EventSystem
from repro.core.memory import DeviceMemoryError
from repro.core.tiering import MemoryWait, make_policy
from repro.core.scheduler import HeftScheduler, Schedule, Scheduler
from repro.mpi.comm import MpiWorld
from repro.obs.observer import Observer
from repro.omp.api import OmpProgram
from repro.omp.task import Task, TaskKind
from repro.sim.primitives import AllOf, AnyOf
from repro.sim.resources import Resource


@dataclass
class OMPCRunResult:
    """Everything measured during one OMPC execution."""

    makespan: float
    startup_time: float
    scheduling_time: float
    shutdown_time: float
    schedule: Schedule
    #: task_id -> (dispatch, finish) simulated interval
    task_intervals: dict[int, tuple[float, float]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    #: Bytes moved over the fabric during the run.
    network_bytes: float = 0.0
    network_messages: int = 0
    #: The run's :class:`~repro.obs.observer.Observer` when the config
    #: enabled tracing (``OMPCConfig.trace``); ``None`` otherwise.
    obs: Observer | None = None
    #: Correctness findings when the config enabled analysis
    #: (``OMPCConfig.analysis``); ``None`` otherwise.
    analysis: AnalysisReport | None = None

    @property
    def constant_overhead(self) -> float:
        """Startup + shutdown + scheduling — the Fig. 7a numerator."""
        return self.startup_time + self.shutdown_time + self.scheduling_time

    @property
    def overhead_fraction(self) -> float:
        """Fraction of wall time not spent inside task execution."""
        if self.makespan == 0:
            return 0.0
        busy = sum(end - start for start, end in self.task_intervals.values())
        return max(0.0, 1.0 - min(busy, self.makespan) / self.makespan)


class OMPCRuntime:
    """Run OmpPrograms on a simulated cluster through the full OMPC stack."""

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        config: OMPCConfig | None = None,
        scheduler: Scheduler | None = None,
    ):
        if cluster_spec.num_nodes < 2:
            raise ValueError(
                "OMPC needs a head node plus at least one worker node"
            )
        self.cluster_spec = cluster_spec
        self.config = config or OMPCConfig()
        # The default HEFT models each worker's concurrent-execution
        # capacity, which the event-handler pool bounds (§4.2).
        self._scheduler_provided = scheduler is not None
        self.scheduler = scheduler or HeftScheduler(
            exec_slots_per_node=self.config.event_handlers
        )
        #: The cluster of the most recent run (for inspection in tests).
        self.last_cluster: Cluster | None = None
        #: The sharded delegate when ``config.head_shards > 1``.
        self._sharded = None

    # ------------------------------------------------------------------
    def run(self, program: OmpProgram) -> OMPCRunResult:
        """Execute ``program`` on a fresh cluster and drive the clock."""
        main_proc, finish = self.launch(program)
        main_proc.sim.run(until=main_proc)
        return finish()

    def launch(self, program: OmpProgram, cluster=None):
        """Set up one execution and return ``(main_process, finish)``.

        With ``cluster=None`` a private :class:`Cluster` is built from
        ``self.cluster_spec`` (the classic single-application path).
        Passing a cluster — in practice a
        :class:`~repro.cluster.partition.ClusterView` partition — runs
        the program *inside an already-ticking simulation*: the caller
        owns the clock, this runtime only contributes a process.  All
        result times are relative to launch (``makespan`` is the job's
        duration, not the absolute clock), and ``finish()`` must be
        called only after the returned process has completed.
        """
        if self.config.head_shards > 1:
            # Sharded control plane (repro.core.shard): K managers, each
            # with its own scheduler instance and head_threads pool.
            # head_shards == 1 never reaches this import, keeping the
            # classic single-head path — and its event stream — byte-
            # for-byte untouched.
            from repro.core.shard.plane import ShardedRuntime

            if self._sharded is None:
                self._sharded = ShardedRuntime(
                    self.cluster_spec, self.config,
                    scheduler=(
                        self.scheduler if self._scheduler_provided
                        else None
                    ),
                )
            main_proc, finish = self._sharded.launch(program, cluster)
            self.last_cluster = self._sharded.last_cluster
            return main_proc, finish
        program.validate()
        if cluster is None:
            cluster = Cluster(self.cluster_spec)
        elif cluster.num_nodes != self.cluster_spec.num_nodes:
            raise ValueError(
                f"cluster has {cluster.num_nodes} nodes, spec expects "
                f"{self.cluster_spec.num_nodes}"
            )
        self.last_cluster = cluster
        sim = cluster.sim
        t0 = sim.now
        if self.config.trace and not cluster.obs.enabled:
            # Must precede MpiWorld/EventSystem construction — both
            # capture ``cluster.obs`` when built.  On a ClusterView this
            # attaches to the view only, keeping job traces isolated.
            cluster.install_observer(Observer(sim))
        obs = cluster.obs
        if self.config.analysis and not cluster.analysis.enabled:
            # Like the observer: must precede MpiWorld/EventSystem
            # construction, which capture ``cluster.analysis``.
            cluster.install_analysis(Analysis())
        analysis = cluster.analysis
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, self.config)
        dm = DataManager(analysis=analysis if analysis.enabled else None)
        analysis.program_begin(program)
        trace = cluster.trace
        cfg = self.config

        # Tiered device→host→remote store (repro.core.tiering): enabled
        # only with a finite capacity *and* a policy, so the default
        # config keeps the event stream bit-identical to the un-tiered
        # kernel (overflow stays a fatal DeviceMemoryError).
        if cfg.device_memory_bytes > 0 and cfg.eviction_policy != "none":
            run_faults = getattr(cluster, "faults", None)

            def capacity_fn(node: int, base: float) -> float:
                factor_of = getattr(run_faults, "capacity_factor", None)
                if factor_of is None:
                    return base
                return base * factor_of(node, sim.now)

            dm.configure_tiering(
                {
                    n: cfg.device_memory_bytes
                    for n in range(1, cluster.num_nodes)
                },
                make_policy(cfg.eviction_policy),
                capacity_fn=capacity_fn,
            )
        tiering = dm.tiering
        #: In-flight eviction markers, by buffer id (planners must not
        #: read a buffer whose spill/drop is mid-flight) and by node
        #: (MemoryWait waits for the node's in-flight evictions).
        evicting_bufs: dict[int, set] = {}
        evict_markers: dict[int, set] = {}
        #: Memory-release turnstile: planners blocked on other frames'
        #: pins wait on the current event; any unpin/release fires and
        #: replaces it.  Fired only while someone waits, so an enabled
        #: but never-pressured run adds zero events.
        mem_turn = [sim.event("mem-freed")]
        mem_waiters = [0]

        def mem_wake() -> None:
            if mem_waiters[0] == 0:
                return
            ev = mem_turn[0]
            mem_turn[0] = sim.event("mem-freed")
            if not ev.triggered:
                ev.succeed()

        graph = program.graph
        result = OMPCRunResult(
            makespan=0.0,
            startup_time=0.0,
            scheduling_time=0.0,
            shutdown_time=0.0,
            schedule=Schedule({}),
        )

        remaining = {t.task_id: graph.in_degree(t) for t in graph.tasks()}
        pending = len(remaining)
        all_done = sim.event("all-tasks-done")
        slots = Resource(sim, capacity=cfg.head_threads, name="head-threads")

        def complete(task: Task) -> None:
            nonlocal pending
            pending -= 1
            for succ in graph.successors(task):
                remaining[succ.task_id] -= 1
                if remaining[succ.task_id] == 0:
                    sim.process(run_task(succ), name=f"task:{succ.name}")
            if pending == 0:
                all_done.succeed()

        # -- buffer movement -------------------------------------------------
        def fetch_gate(move: Move):
            """Tiered only: fault-injected fetch failures with retry.

            Under a MemoryPressure fault arm with ``fetch_fail_prob``,
            a read-through fetch may fail before any bytes move; it is
            retried with exponential backoff up to
            ``mem_fetch_retries`` times, then the run gives up with a
            buffer-attributed error.
            """
            fails = getattr(cluster.faults, "fetch_fails", None) \
                if cluster.faults is not None else None
            if fails is None:
                return
            attempt = 0
            while fails(move.dst, sim.now):
                attempt += 1
                trace.count("mem.fetch_retries")
                if attempt > cfg.mem_fetch_retries:
                    raise DeviceMemoryError(
                        f"fetch of buffer {move.buffer.name} "
                        f"(node {move.src} -> {move.dst}) still failing "
                        f"after {cfg.mem_fetch_retries} retries"
                    )
                yield sim.timeout(
                    cfg.mem_fetch_backoff * 2 ** (attempt - 1)
                )

        def perform_move(move: Move):
            buf = move.buffer
            if tiering is not None:
                yield from fetch_gate(move)
            move_span = obs.begin(
                "data", f"move:{buf.name}", 0,
                src=move.src, dst=move.dst, nbytes=buf.nbytes,
            ) if obs.enabled else None
            if move.src == HOST:
                payload = buf.data
                yield from events.submit(move.dst, buf.buffer_id, payload,
                                         buf.nbytes, label=buf.name)
            elif move.dst == HOST:
                payload = yield from events.retrieve(
                    move.src, buf.buffer_id, buf.nbytes
                )
                buf.data = payload
            elif cfg.forwarding_enabled:
                yield from events.exchange(
                    move.src, move.dst, buf.buffer_id, buf.nbytes,
                    label=buf.name,
                )
            else:
                # Ablation B: stage worker-to-worker moves via the head.
                payload = yield from events.retrieve(
                    move.src, buf.buffer_id, buf.nbytes
                )
                yield from events.submit(move.dst, buf.buffer_id, payload,
                                         buf.nbytes, label=buf.name)
            dm.commit_move(move)
            if move_span is not None:
                obs.end(move_span)

        def perform_moves(moves: list[Move]):
            """Overlap independent buffer moves of one task."""
            if not moves:
                return
            if len(moves) == 1:
                yield from perform_move(moves[0])
                return
            procs = [
                sim.process(perform_move(m), name=f"move:{m.buffer.name}")
                for m in moves
            ]
            yield AllOf(sim, procs)

        def perform_deletes(stale: list):
            """Synchronously remove invalidated worker copies."""
            for buf, holder in stale:
                if holder != HOST:
                    del_span = obs.begin(
                        "data", f"delete:{buf.name}", 0, holder=holder
                    ) if obs.enabled else None
                    yield from events.delete(holder, buf.buffer_id)
                    # Lazy head-side release: only after the physical
                    # DELETE landed may the bytes be re-planned.
                    dm.mem_release(buf, holder)
                    mem_wake()
                    if del_span is not None:
                        obs.end(del_span)

        # -- tiered-store eviction machinery ----------------------------------
        def await_evictions(buffer_ids):
            """Wait until none of ``buffer_ids`` has an in-flight
            eviction.  Returns inside a synchronous block — callers pin
            immediately after, with no yield in between."""
            while True:
                waits = [
                    m for bid in buffer_ids
                    for m in evicting_bufs.get(bid, ())
                ]
                if not waits:
                    return
                yield AllOf(sim, waits)

        def wait_for_room(node: int):
            """Wait for any space-freeing signal on ``node``: an
            in-flight eviction landing, or any unpin/release."""
            markers = list(evict_markers.get(node, ()))
            waiter = mem_turn[0]
            mem_waiters[0] += 1
            try:
                yield AnyOf(sim, markers + [waiter])
            finally:
                mem_waiters[0] -= 1

        def perform_one_eviction(ev, marker):
            buf = ev.buffer
            try:
                if ev.spill:
                    # Write-behind: this node holds the only valid
                    # copy; persist it to the host image first.
                    payload = yield from events.retrieve(
                        ev.node, buf.buffer_id, buf.nbytes
                    )
                    buf.data = payload
                    dm.commit_move(Move(buf, ev.node, HOST))
                    trace.count("mem.spill_bytes", buf.nbytes)
                yield from events.delete(ev.node, buf.buffer_id)
                dm.commit_evict(buf, ev.node)
                dm.mem_release(buf, ev.node)
                mem_wake()
                trace.count("mem.evict")
            finally:
                bucket = evicting_bufs.get(buf.buffer_id)
                if bucket is not None:
                    bucket.discard(marker)
                    if not bucket:
                        evicting_bufs.pop(buf.buffer_id, None)
                evict_markers.get(ev.node, set()).discard(marker)
                if not marker.triggered:
                    marker.succeed()

        def perform_evictions(node: int, evictions: list):
            if not evictions:
                return
            # Register every marker before the first yield: any planner
            # that runs while these are in flight must see the full set
            # (else it could pick a mid-eviction buffer as a source).
            procs = []
            for ev in evictions:
                marker = sim.event(f"evicted:{ev.buffer.name}")
                evicting_bufs.setdefault(
                    ev.buffer.buffer_id, set()
                ).add(marker)
                evict_markers.setdefault(node, set()).add(marker)
                procs.append(sim.process(
                    perform_one_eviction(ev, marker),
                    name=f"evict:{ev.buffer.name}",
                ))
            yield AllOf(sim, procs)

        # -- per-task execution ---------------------------------------------
        def run_task(task: Task):
            # §7: one head-node OpenMP thread blocks per in-flight task.
            enabled = obs.enabled
            wait_span = obs.begin(
                "task", f"{task.name}:wait-slot", 0, task_id=task.task_id
            ) if enabled else None
            yield slots.request()
            if enabled:
                obs.end(wait_span)
                obs.gauge_add("head.inflight", 1)
            analysis.task_begin(task)
            start = sim.now
            try:
                node = schedule.node_of(task)
                if task.kind == TaskKind.CLASSICAL:
                    yield from run_classical(task)
                elif task.kind == TaskKind.TARGET_ENTER_DATA:
                    yield from run_enter_data(task, node)
                elif task.kind == TaskKind.TARGET_EXIT_DATA:
                    yield from run_exit_data(task)
                else:
                    yield from run_target(task, node)
            finally:
                slots.release()
                if enabled:
                    obs.gauge_add("head.inflight", -1)
            result.task_intervals[task.task_id] = (start, sim.now)
            trace.record("task", task.name, start, sim.now)
            analysis.task_end(task)
            complete(task)

        def run_classical(task: Task):
            # Classical tasks run on the head node against host memory.
            analysis.on_host_task(task, dm)
            head = cluster.head
            yield head.cpu.request()
            try:
                if task.cost:
                    yield sim.timeout(head.compute_time(task.cost))
                if task.fn is not None:
                    task.fn(*(d.buffer.data for d in task.deps))
            finally:
                head.cpu.release()

        def enter_broadcast(task: Task, node: int):
            # §7 extension: one-to-many proactive distribution.  When the
            # task graph shows the buffer is read-only and consumed on
            # several nodes, a single binomial broadcast event replaces
            # the later per-consumer exchanges (each of which would need
            # head orchestration).
            for buf in task.buffers:
                extra = broadcast_targets.get(buf.buffer_id, ())
                dsts = [d for d in extra if d != node and d != HOST]
                if not dsts:
                    continue
                if tiering is not None:
                    for dst in dsts:
                        if tiering.manages(dst):
                            # Caller's pins stay held here (the source
                            # copy must survive the broadcast), so this
                            # wait can only be resolved by other
                            # frames' releases — acceptable for the
                            # opt-in broadcast ablation.
                            while True:
                                try:
                                    evictions = dm.plan_evictions(
                                        task, dst, [buf]
                                    )
                                    break
                                except MemoryWait:
                                    yield from wait_for_room(dst)
                            yield from perform_evictions(dst, evictions)
                yield from events.broadcast(node, dsts, buf.buffer_id,
                                            buf.nbytes)
                for dst in dsts:
                    dm.commit_move(Move(buf, node, dst))

        def run_enter_data(task: Task, node: int):
            if node == HOST:
                return  # no consumer was scheduled; data stays on host
            if tiering is not None and tiering.manages(node):
                # Admit the buffers one at a time: an enter-data working
                # set larger than the device is legal — buffers entered
                # earlier become clean replicas (the host image
                # survives) that the tier may evict to admit the rest;
                # consumers re-fetch them read-through.  Unpressured,
                # every per-buffer plan is synchronous and the moves are
                # batched into one overlapped transfer — the event
                # stream stays bit identical to the un-tiered path.
                buf_ids = sorted({b.buffer_id for b in task.buffers})
                yield from await_evictions(buf_ids)
                dm.pin(buf_ids)
                #: Planned-but-unperformed (buffer, moves) pairs.
                staged: list = []

                def flush():
                    # Materialize (and commit) everything planned so
                    # far.  Must run before any back-off unpin: a
                    # charged-but-unmaterialized buffer picked as a
                    # victim by a concurrent planner would make the
                    # eviction retrieve bytes that do not exist yet.
                    mvs = [m for _b, ms in staged for m in ms]
                    yield from perform_moves(mvs)
                    for b, _ms in staged:
                        dm.commit_enter_data(b, node)
                    staged.clear()

                try:
                    for buf in task.buffers:
                        while True:
                            moves = dm.plan_enter_data(buf, node)
                            incoming = [
                                m.buffer for m in moves if m.dst == node
                            ]
                            try:
                                evictions = dm.plan_evictions(
                                    task, node, incoming
                                )
                                break
                            except MemoryWait:
                                # Back off: materialize the admitted
                                # prefix and release our pins so room
                                # can be made.  Our own prefix pins are
                                # often the blockage (the entered
                                # buffers are this frame's own clean
                                # replicas), so re-plan immediately
                                # against the unpinned state — the
                                # re-plan is synchronous, hence atomic —
                                # and only sleep on the turnstile when
                                # the blockage is truly someone else's.
                                # The back-off unpin deliberately does
                                # NOT fire the turnstile: waking peers
                                # on transient unpins lets two blocked
                                # frames ping-pong wakes at one instant
                                # forever.  Real releases (evictions
                                # landing, deletes, frame completion) do
                                # the waking.
                                yield from flush()
                                dm.unpin(buf_ids)
                                try:
                                    moves = dm.plan_enter_data(buf, node)
                                    incoming = [
                                        m.buffer for m in moves
                                        if m.dst == node
                                    ]
                                    try:
                                        evictions = dm.plan_evictions(
                                            task, node, incoming
                                        )
                                        break
                                    except MemoryWait:
                                        yield from wait_for_room(node)
                                        yield from await_evictions(
                                            buf_ids
                                        )
                                finally:
                                    dm.pin(buf_ids)
                        if evictions:
                            yield from flush()
                            yield from perform_evictions(node, evictions)
                        staged.append((buf, moves))
                    yield from flush()
                    if cfg.broadcast_events:
                        yield from enter_broadcast(task, node)
                finally:
                    dm.unpin(buf_ids)
                    mem_wake()
                return
            moves = []
            for buf in task.buffers:
                moves.extend(dm.plan_enter_data(buf, node))
            yield from perform_moves(moves)
            for buf in task.buffers:
                dm.commit_enter_data(buf, node)
            if cfg.broadcast_events:
                yield from enter_broadcast(task, node)

        def run_exit_data(task: Task):
            buf_ids = sorted({b.buffer_id for b in task.buffers})
            if tiering is not None:
                # Exit retrieves from each buffer's latest location: an
                # eviction mid-flight would invalidate that source, so
                # drain first and pin for the duration.
                yield from await_evictions(buf_ids)
                dm.pin(buf_ids)
            try:
                moves = []
                for buf in task.buffers:
                    moves.extend(dm.plan_exit_data(buf))
                yield from perform_moves(moves)
                for buf in task.buffers:
                    removals = dm.commit_exit_data(buf)
                    yield from perform_deletes(removals)
            finally:
                if tiering is not None:
                    dm.unpin(buf_ids)
                    mem_wake()

        def run_target(task: Task, node: int):
            if tiering is not None and tiering.manages(node):
                dep_ids = sorted({d.buffer.buffer_id for d in task.deps})
                # Never plan against a buffer whose eviction is
                # mid-flight; once drained, pin the whole frame in the
                # same synchronous block so no later planner can pick
                # any of these buffers as a victim anywhere.
                yield from await_evictions(dep_ids)
                dm.pin(dep_ids)
                try:
                    while True:
                        moves, allocs = dm.plan_for_task(task, node)
                        incoming = list(allocs) + [
                            m.buffer for m in moves if m.dst == node
                        ]
                        try:
                            evictions = dm.plan_evictions(
                                task, node, incoming
                            )
                            break
                        except MemoryWait:
                            # Back off: release our pins so blocked-on
                            # frames can make room, wait for a release
                            # signal, then re-acquire and re-plan (the
                            # dependence set may have been evicted
                            # while unpinned).  No turnstile fire here —
                            # see run_enter_data's back-off comment.
                            dm.unpin(dep_ids)
                            try:
                                yield from wait_for_room(node)
                                yield from await_evictions(dep_ids)
                            finally:
                                dm.pin(dep_ids)
                    # Read-through accounting: a read dependence served
                    # locally is a hit, one that needs a transfer (cold
                    # or previously evicted) is a miss.
                    moved = {m.buffer.buffer_id for m in moves}
                    counted: set[int] = set()
                    for dep in task.deps:
                        bid = dep.buffer.buffer_id
                        if bid in counted or not task.dep_type_for(
                            dep.buffer
                        ).reads:
                            continue
                        counted.add(bid)
                        trace.count(
                            "mem.miss" if bid in moved else "mem.hit"
                        )
                    yield from perform_evictions(node, evictions)
                    yield from run_target_body(task, node, moves, allocs)
                finally:
                    dm.unpin(dep_ids)
                    mem_wake()
                return
            moves, allocs = dm.plan_for_task(task, node)
            yield from run_target_body(task, node, moves, allocs)

        def run_target_body(task: Task, node: int, moves, allocs):
            for mv in moves:
                # A fetch logically reads the buffer on the task's behalf.
                analysis.on_move(task, mv.buffer)
            enabled = obs.enabled
            fetch_span = obs.begin(
                "task", f"{task.name}:fetch", 0,
                target=node, moves=len(moves), allocs=len(allocs),
            ) if enabled else None
            for buf in allocs:
                yield from events.alloc(node, buf.buffer_id, payload=buf.data,
                                        nbytes=buf.nbytes, label=buf.name,
                                        owner=task.name)
                dm.commit_alloc(buf, node)
            yield from perform_moves(moves)
            if enabled:
                obs.end(fetch_span)
            exec_span = obs.begin(
                "task", f"{task.name}:execute", 0, target=node
            ) if enabled else None
            detected = yield from events.execute(node, task)
            if enabled:
                obs.end(exec_span)
            commit_span = obs.begin(
                "task", f"{task.name}:commit", 0, target=node
            ) if enabled else None
            stale = dm.commit_task_done(
                task,
                node,
                written_ids=set(detected) if detected is not None else None,
            )
            yield from perform_deletes(stale)
            if enabled:
                obs.end(commit_span)

        # -- main process on the head node ------------------------------------
        def main():
            try:
                yield from main_body()
            except BaseException:
                # Abort (error or a workload manager's preemption
                # interrupt): kill this run's gate/handler processes so
                # a shared simulation (multi-tenant cluster views) is
                # not left with orphaned machinery ticking after the
                # error propagates out.  Aborts during startup find the
                # event system not yet started — nothing to tear down.
                if events._started:
                    for node_id in range(cluster.num_nodes):
                        if not events.node_failed(node_id):
                            events.fail_node(node_id)
                raise

        def main_body():
            # 1. startup: process start -> gate-thread creation (Fig. 7a).
            span = trace.begin("runtime", "startup")
            obs_span = obs.begin("sched", "startup", 0)
            yield sim.timeout(cfg.startup_time)
            events.start()
            trace.end(span)
            obs.end(obs_span)
            result.startup_time = cfg.startup_time

            # 2. control thread creates all tasks (workers stay idle).
            creation = len(remaining) * cfg.task_creation_overhead
            if creation:
                obs_span = obs.begin(
                    "sched", "task-creation", 0, tasks=len(remaining)
                )
                yield sim.timeout(creation)
                obs.end(obs_span)

            # 3. implicit barrier: schedule the entire graph with HEFT.
            span = trace.begin("runtime", "scheduling")
            obs_span = obs.begin("sched", "heft", 0, edges=graph.num_edges)
            sched_cost = (
                graph.num_edges
                * max(cluster.num_nodes - 1, 1)
                * cfg.schedule_unit_cost
            )
            if sched_cost:
                yield sim.timeout(sched_cost)
            trace.end(span)
            obs.end(obs_span)
            result.scheduling_time = sched_cost + 0.0

            # 4./5. dispatch and drain the graph.
            if pending == 0:
                all_done.succeed()
            else:
                for root in graph.roots():
                    sim.process(run_task(root), name=f"task:{root.name}")
            yield all_done

            # 6. shutdown: gate-thread destruction -> process end.
            span = trace.begin("runtime", "shutdown")
            obs_span = obs.begin("sched", "shutdown", 0)
            yield from events.shutdown()
            yield sim.timeout(cfg.shutdown_time)
            trace.end(span)
            obs.end(obs_span)
            result.shutdown_time = cfg.shutdown_time

        # Scheduling happens inside main() in simulated time, but the
        # assignment itself is computed eagerly here (it is deterministic
        # and independent of the clock).
        schedule = self.scheduler.schedule(graph, cluster)
        result.schedule = schedule

        # §7 broadcast detection: for each buffer entered via enter-data
        # and never written afterwards (read-only on the device side),
        # collect the distinct nodes of its consumers from the scheduled
        # task graph.
        broadcast_targets: dict[int, tuple[int, ...]] = {}
        if cfg.broadcast_events:
            readers: dict[int, set[int]] = {}
            written: set[int] = set()
            entered: set[int] = set()
            for task in graph.tasks():
                if task.kind == TaskKind.TARGET_ENTER_DATA:
                    entered.update(b.buffer_id for b in task.buffers)
                elif task.kind == TaskKind.TARGET:
                    node = schedule.node_of(task)
                    for buf in task.reads:
                        readers.setdefault(buf.buffer_id, set()).add(node)
                    written.update(b.buffer_id for b in task.writes)
            for bid in entered - written:
                nodes = sorted(readers.get(bid, ()))
                if len(nodes) > 1:
                    broadcast_targets[bid] = tuple(nodes)

        main_proc = sim.process(main(), name="ompc-main")
        net_bytes0 = cluster.network.total_bytes
        net_msgs0 = cluster.network.total_messages

        def finish() -> OMPCRunResult:
            result.makespan = sim.now - t0
            result.counters = dict(trace.counters)
            result.network_bytes = cluster.network.total_bytes - net_bytes0
            result.network_messages = (
                cluster.network.total_messages - net_msgs0
            )
            if obs.enabled:
                # Fold the transport + event-system tallies into the
                # observer so one object carries the whole run's metrics.
                for stat, value in mpi.stats.items():
                    obs.count(f"mpi.transport.{stat}", value)
                for counter_name, value in trace.counters.items():
                    obs.count(counter_name, value)
                result.obs = obs
            if analysis.enabled:
                result.analysis = analysis.finalize(
                    [mpi], failed=events._failed, obs=obs
                )
            return result

        return main_proc, finish
