"""MPI correctness checking (MUST-style), at finalize.

The checker observes every nonblocking operation on non-service
communicators (:meth:`on_isend` / :meth:`on_irecv`, called from
``Communicator``) and every ``wait``/``test``/``cancel`` on the
resulting :class:`~repro.mpi.request.Request` handles.  At finalize it
reports:

* **unmatched-send** — a delivered message still sitting in a matching
  queue (no receive ever consumed it);
* **unmatched-recv** — a posted receive that never matched (and was
  never cancelled);
* **leaked-request** — a completed request whose owner never waited,
  tested, or cancelled it (like ``MPI_Request_free`` misuse);
* **deadlock-cycle** — blocked ``wait`` s on receives forming a cycle
  in the wait-for graph (rank A waits on B while B waits on A).

Infrastructure traffic opts out with ``new_communicator(service=True)``
(heartbeats, pings, head-log replication): persistent service loops
legitimately hold a pending receive at shutdown, and fire-and-forget
datagrams are lost by design.  Traffic to or from failed nodes is
likewise excluded — a crash strands messages by definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.analysis.findings import Finding, Severity

#: Mirrors :data:`repro.mpi.comm.ANY_SOURCE` (importing it would cycle).
_ANY_SOURCE = -1


@dataclass
class _Record:
    """Lifecycle of one tracked request."""

    kind: str  # "send" | "recv"
    comm_id: int
    owner: int  # the rank that posted the operation
    peer: int  # dst for sends, src for recvs (may be ANY_SOURCE)
    tag: int
    waited: bool = False
    tested: bool = False
    completed: bool = False


@dataclass
class MpiCheckStats:
    tracked_requests: int = 0
    service_comms: int = 0


class MpiChecker:
    """Request/message auditing across all communicators of a run."""

    def __init__(self):
        self._service: set[int] = set()
        self._records: list[tuple[object, _Record]] = []
        self._by_request: dict[int, _Record] = {}
        self.stats = MpiCheckStats()
        self.findings: list[Finding] = []

    # -- registration (called from repro.mpi) ------------------------------
    def register_comm(self, comm_id: int, service: bool) -> None:
        if service:
            self._service.add(comm_id)
            self.stats.service_comms += 1

    def is_service(self, comm_id: int) -> bool:
        return comm_id in self._service

    def _track(self, request, record: _Record) -> None:
        request.observer = self
        self._records.append((request, record))
        self._by_request[id(request)] = record
        self.stats.tracked_requests += 1

    def on_isend(self, request, comm_id: int, src: int, dst: int,
                 tag: int) -> None:
        self._track(request, _Record("send", comm_id, src, dst, tag))

    def on_irecv(self, request, comm_id: int, dst: int, src: int,
                 tag: int) -> None:
        self._track(request, _Record("recv", comm_id, dst, src, tag))

    # -- Request lifecycle hooks ------------------------------------------
    def on_wait(self, request) -> None:
        rec = self._by_request.get(id(request))
        if rec is not None:
            rec.waited = True

    def on_complete(self, request) -> None:
        rec = self._by_request.get(id(request))
        if rec is not None:
            rec.completed = True

    def on_test(self, request) -> None:
        rec = self._by_request.get(id(request))
        if rec is not None:
            rec.tested = True

    def on_cancel(self, request) -> None:
        """A successful cancel deregisters the request entirely — a
        cancelled receive is *not* a leak (the satellite fix)."""
        rec = self._by_request.pop(id(request), None)
        if rec is not None:
            self._records = [
                (req, r) for req, r in self._records if r is not rec
            ]

    # -- finalize ----------------------------------------------------------
    def finalize(self, worlds=(), failed=frozenset()) -> list[Finding]:
        failed = set(failed)

        def involves_failed(*nodes: int) -> bool:
            return any(n in failed for n in nodes)

        # Leftover queued messages: delivered but never received.
        unmatched_sends: dict[tuple[int, int, int], int] = {}
        for world in worlds:
            for (rank_id, comm_id), store in world._queues.items():
                if comm_id in self._service or rank_id in failed:
                    continue
                for msg in store.items:
                    if involves_failed(msg.src, msg.dst):
                        continue
                    key = (msg.src, msg.dst, msg.tag)
                    unmatched_sends[key] = unmatched_sends.get(key, 0) + 1
        for (src, dst, tag), count in sorted(unmatched_sends.items()):
            times = f" ({count}×)" if count > 1 else ""
            self.findings.append(Finding(
                rule="unmatched-send",
                severity=Severity.WARNING,
                message=(
                    f"message {src}→{dst} tag={tag} was delivered but "
                    f"never received{times}"
                ),
                analyzer="mpi",
            ))

        # Request audit.
        blocked: list[_Record] = []
        leaks: dict[tuple[str, int, int, int], int] = {}
        pending_recvs: dict[tuple[int, int, int], int] = {}
        for request, rec in self._records:
            if involves_failed(rec.owner, rec.peer):
                continue
            completed = rec.completed or request.event.triggered
            consumed = rec.waited or rec.tested
            if completed and not consumed:
                key = (rec.kind, rec.owner, rec.peer, rec.tag)
                leaks[key] = leaks.get(key, 0) + 1
            elif not completed and rec.kind == "recv":
                key = (rec.owner, rec.peer, rec.tag)
                pending_recvs[key] = pending_recvs.get(key, 0) + 1
                if rec.waited:
                    blocked.append(rec)
        for (kind, owner, peer, tag), count in sorted(leaks.items()):
            times = f" ({count}×)" if count > 1 else ""
            self.findings.append(Finding(
                rule="leaked-request",
                severity=Severity.WARNING,
                message=(
                    f"nonblocking {kind} on rank {owner} (peer {peer}, "
                    f"tag={tag}) completed but was never waited, tested, "
                    f"or cancelled{times}"
                ),
                analyzer="mpi",
            ))
        for (owner, peer, tag), count in sorted(pending_recvs.items()):
            src = "ANY_SOURCE" if peer == _ANY_SOURCE else str(peer)
            times = f" ({count}×)" if count > 1 else ""
            self.findings.append(Finding(
                rule="unmatched-recv",
                severity=Severity.WARNING,
                message=(
                    f"receive posted on rank {owner} (src {src}, "
                    f"tag={tag}) never matched a message and was never "
                    f"cancelled{times}"
                ),
                analyzer="mpi",
            ))

        # Wait-for graph over blocked waits: rank → the rank it needs a
        # message from.  A cycle means nobody can ever progress.
        wait_for = nx.DiGraph()
        for rec in blocked:
            if rec.peer != _ANY_SOURCE:
                wait_for.add_edge(rec.owner, rec.peer)
        for cycle in sorted(nx.simple_cycles(wait_for)):
            ranks = " → ".join(str(r) for r in cycle + [cycle[0]])
            self.findings.append(Finding(
                rule="deadlock-cycle",
                severity=Severity.ERROR,
                message=(
                    f"blocking receives form a wait-for cycle: {ranks}"
                ),
                analyzer="mpi",
            ))
        return self.findings
