"""Tests for partitioning helpers and calibration constants."""

import pytest

from repro.runtimes.base import block_owner, points_of
from repro.runtimes.calibration import CHARM, MPI_SYNC, STARPU, RuntimeCosts


class TestBlockOwner:
    def test_even_partition(self):
        owners = [block_owner(p, 8, 4) for p in range(8)]
        assert owners == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_uneven_partition_front_loads(self):
        owners = [block_owner(p, 7, 3) for p in range(7)]
        # 3 + 2 + 2
        assert owners == [0, 0, 0, 1, 1, 2, 2]

    def test_more_nodes_than_points(self):
        owners = [block_owner(p, 3, 8) for p in range(3)]
        assert owners == [0, 1, 2]

    def test_points_of_inverse(self):
        width, n = 13, 5
        seen = []
        for node in range(n):
            pts = points_of(node, width, n)
            for p in pts:
                assert block_owner(p, width, n) == node
            seen.extend(pts)
        assert sorted(seen) == list(range(width))

    def test_contiguity(self):
        for node in range(4):
            pts = points_of(node, 10, 4)
            assert pts == list(range(min(pts), max(pts) + 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            block_owner(9, 8, 2)
        with pytest.raises(ValueError):
            block_owner(0, 8, 0)


class TestCalibration:
    def test_mpi_is_zero_copy(self):
        assert MPI_SYNC.copy_bandwidth is None
        assert MPI_SYNC.copy_time(1e9) == 0.0

    def test_starpu_has_per_task_overhead(self):
        assert STARPU.per_task_overhead > MPI_SYNC.per_task_overhead
        assert STARPU.copy_bandwidth is None

    def test_charm_pays_copies(self):
        assert CHARM.copy_bandwidth is not None
        assert CHARM.copy_time(8e9) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeCosts(per_message_overhead=-1)
        with pytest.raises(ValueError):
            RuntimeCosts(copy_bandwidth=0.0)
