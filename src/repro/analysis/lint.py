"""Static linting of an :class:`~repro.omp.api.OmpProgram`.

Runs before any simulation — pure inspection of the declared tasks and
the derived dependence graph.  Rules:

``duplicate-dep`` (WARNING)
    One task lists the same buffer more than once in its ``depend``
    clause; redundant items obscure intent and can hide typos.
``conflicting-dep`` (ERROR)
    One task lists a buffer as both ``in`` and ``out`` — OpenMP
    semantics for that is ``inout``, and splitting it produces
    surprising edge construction.  (``OmpProgram.validate()`` rejects
    this outright; the lint reports it without raising.)
``unmatched-exit`` (WARNING)
    ``target exit data`` on a buffer no earlier ``target enter data``
    mapped *and* no earlier target task wrote — the release has nothing
    on any device to release.  (A pure-``out`` producer materializes
    the device copy implicitly, like ``map(alloc)``, so exiting a
    device-written buffer is the normal retrieve idiom.)
``unreachable-task`` (WARNING)
    In a program with observable sinks (``exit data`` or classical
    host tasks), a task from which no sink is reachable: its results
    can never be observed by the host.  Programs with no sinks at all
    (pure timing benchmarks) skip this rule.
``over-serialization`` (INFO)
    A declared dependence edge whose endpoint tasks have no actual
    access conflict (their :attr:`~repro.omp.task.Task.accesses`
    footprints are disjoint or read-only-shared) — the clause
    serializes tasks that could run concurrently (cf. "Detrimental
    task execution patterns", Tuft et al. 2024).  Only fires when a
    task declares an explicit actual-access footprint.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis.findings import Finding, Severity
from repro.omp.task import DepType, Task, TaskKind


def _conflicts(a: Task, b: Task) -> bool:
    """Do the tasks' *actual* footprints conflict on any buffer?"""
    a_reads = {d.buffer.buffer_id for d in a.accesses_or_deps
               if d.type.reads}
    a_writes = {d.buffer.buffer_id for d in a.accesses_or_deps
                if d.type.writes}
    b_reads = {d.buffer.buffer_id for d in b.accesses_or_deps
               if d.type.reads}
    b_writes = {d.buffer.buffer_id for d in b.accesses_or_deps
                if d.type.writes}
    return bool(
        (a_writes & (b_reads | b_writes)) or (b_writes & a_reads)
    )


def lint_program(program) -> list[Finding]:
    """Run every static rule; returns the findings (never raises)."""
    findings: list[Finding] = []
    tasks = list(program.graph.tasks())

    # -- per-task clause rules -------------------------------------------
    for task in tasks:
        seen: dict[int, list[DepType]] = {}
        for dep in task.deps:
            seen.setdefault(dep.buffer.buffer_id, []).append(dep.type)
        for buffer_id, types in seen.items():
            buf = next(d.buffer for d in task.deps
                       if d.buffer.buffer_id == buffer_id)
            if DepType.IN in types and DepType.OUT in types:
                findings.append(Finding(
                    rule="conflicting-dep",
                    severity=Severity.ERROR,
                    message=(
                        f"task {task.name} lists {buf.name} as both "
                        "depend(in) and depend(out); use depend(inout)"
                    ),
                    analyzer="lint",
                    tasks=(task.name,),
                    buffer=buf.name,
                ))
            elif len(types) > 1:
                findings.append(Finding(
                    rule="duplicate-dep",
                    severity=Severity.WARNING,
                    message=(
                        f"task {task.name} lists {buf.name} "
                        f"{len(types)} times in its depend clause"
                    ),
                    analyzer="lint",
                    tasks=(task.name,),
                    buffer=buf.name,
                ))

    # -- enter/exit pairing ----------------------------------------------
    mapped: set[int] = set()
    for task in tasks:  # program order == task_id order
        if task.kind == TaskKind.TARGET_ENTER_DATA:
            mapped.update(b.buffer_id for b in task.buffers)
        elif task.kind == TaskKind.TARGET:
            # A device-side writer creates the device copy implicitly
            # (pure-out allocation) — exiting it later is legitimate.
            mapped.update(b.buffer_id for b in task.writes)
        elif task.kind == TaskKind.TARGET_EXIT_DATA:
            for buf in task.buffers:
                if buf.buffer_id not in mapped:
                    findings.append(Finding(
                        rule="unmatched-exit",
                        severity=Severity.WARNING,
                        message=(
                            f"task {task.name} exits {buf.name}, which "
                            "no earlier target enter data mapped and no "
                            "earlier target task wrote"
                        ),
                        analyzer="lint",
                        tasks=(task.name,),
                        buffer=buf.name,
                    ))

    # -- reachability to observable sinks ---------------------------------
    sinks = [
        t for t in tasks
        if t.kind in (TaskKind.TARGET_EXIT_DATA, TaskKind.CLASSICAL)
    ]
    if sinks:
        g = program.graph.nx_graph()
        observable: set[int] = set()
        for sink in sinks:
            observable.add(sink.task_id)
            observable.update(nx.ancestors(g, sink.task_id))
        for task in tasks:
            if task.task_id not in observable:
                findings.append(Finding(
                    rule="unreachable-task",
                    severity=Severity.WARNING,
                    message=(
                        f"task {task.name} reaches no exit-data or "
                        "classical sink; its results are never observed"
                    ),
                    analyzer="lint",
                    tasks=(task.name,),
                ))

    # -- over-serialization (perf lint) -----------------------------------
    for pred, succ in program.graph.edges():
        if not pred.accesses and not succ.accesses:
            continue  # declared footprint == actual footprint: no signal
        if not _conflicts(pred, succ):
            findings.append(Finding(
                rule="over-serialization",
                severity=Severity.INFO,
                message=(
                    f"declared dependence {pred.name} → {succ.name} "
                    "orders tasks whose actual accesses never conflict"
                ),
                analyzer="lint",
                tasks=(pred.name, succ.name),
            ))
    return findings
