"""Multi-tenant job management for one simulated OMPC cluster.

The paper runs one application on a dedicated cluster; this package is
the workload-manager layer above it: a stream of OMPC jobs shares one
machine through space-shared node partitions, an admission queue with
pluggable policies (FIFO, fair-share-per-tenant, EASY backfill), and
per-job isolated runtime instances.  See DESIGN.md §"Multi-tenant
execution".
"""

from repro.jobs.elastic import (
    AutoscalerController,
    DeadLetterQueue,
    DeadLetterRecord,
    ElasticConfig,
    ElasticJobManager,
    TokenBucket,
)
from repro.jobs.job import Job, JobSpec, JobState
from repro.jobs.manager import JobManager
from repro.jobs.policies import (
    POLICIES,
    AdmissionPolicy,
    EasyBackfillPolicy,
    FairSharePolicy,
    FifoPolicy,
    make_policy,
    select_victims,
)
from repro.jobs.telemetry import JobRecord, JobsReport, format_jobs_report
from repro.jobs.workload import (
    OverloadTrace,
    PoissonWorkload,
    jobs_from_json,
)

__all__ = [
    "AdmissionPolicy",
    "AutoscalerController",
    "DeadLetterQueue",
    "DeadLetterRecord",
    "EasyBackfillPolicy",
    "ElasticConfig",
    "ElasticJobManager",
    "FairSharePolicy",
    "FifoPolicy",
    "Job",
    "JobManager",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobsReport",
    "OverloadTrace",
    "POLICIES",
    "PoissonWorkload",
    "TokenBucket",
    "format_jobs_report",
    "jobs_from_json",
    "make_policy",
    "select_victims",
]
