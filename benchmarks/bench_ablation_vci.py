"""Ablation C: Virtual Communication Interfaces (§6.1, [37]).

The paper compiles MPICH for up to 64 VCIs so OMPC's concurrent events
can drive multiple hardware contexts.  This bench sweeps the per-NIC
channel count on a communication-heavy fft graph where many transfers
fly concurrently.
"""

from __future__ import annotations

from figutil import BANDWIDTH
from repro.bench.report import format_table
from repro.cluster.machine import ClusterSpec, NetworkSpec
from repro.core import OMPCRuntime
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec, build_omp_program

VCI_COUNTS = (1, 2, 4, 16, 64)


def run_with_vcis(vcis: int, nodes: int = 8) -> float:
    spec = TaskBenchSpec.with_ccr(
        16, 8, Pattern.FFT, KernelSpec.paper_50ms(), 0.5, BANDWIDTH
    )
    program = build_omp_program(spec)
    cluster_spec = ClusterSpec(
        num_nodes=nodes, network=NetworkSpec(vcis=vcis)
    )
    return OMPCRuntime(cluster_spec).run(program).makespan


class TestAblationVci:
    def test_bench_more_vcis_help_concurrent_events(self, benchmark):
        def sweep():
            return {v: run_with_vcis(v) for v in VCI_COUNTS}

        times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # A single channel serializes concurrent transfers; 64 VCIs
        # (the paper's configuration) must be measurably faster.
        assert times[64] < times[1]
        # Returns diminish: most of the win arrives by 16 channels.
        assert times[16] <= times[1]
        assert abs(times[64] - times[16]) < 0.25 * (times[1] - times[64] + 1e-9) + 0.05


def main() -> None:
    rows = [[v, run_with_vcis(v)] for v in VCI_COUNTS]
    print(
        format_table(
            ["VCIs", "makespan (s)"],
            rows,
            title="Ablation C — VCI count (fft 16x8, 8 nodes, CCR 0.5)",
        )
    )


if __name__ == "__main__":
    main()
