"""Tests for the ``python -m repro.bench jobs`` subcommand."""

import json

import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.jobscmd import main as jobs_main


class TestJobsCli:
    def test_quick_single_policy(self, capsys):
        assert jobs_main(["--quick", "--no-per-job"]) == 0
        out = capsys.readouterr().out
        assert "policy=backfill" in out
        assert "utilization" in out

    def test_all_policies_comparison(self, capsys):
        assert jobs_main(["--policy", "all", "--quick",
                          "--no-per-job"]) == 0
        out = capsys.readouterr().out
        for policy in ("fifo", "fair", "backfill"):
            assert f"policy={policy}" in out
        assert "policy comparison" in out

    def test_trace_replay(self, tmp_path, capsys):
        trace = tmp_path / "wl.json"
        trace.write_text(json.dumps([
            {"name": "a", "arrival": 0.0, "nodes": 3, "task_ms": 5.0},
            {"name": "b", "arrival": 0.01, "nodes": 2, "task_ms": 5.0},
        ]))
        assert jobs_main(["--trace", str(trace), "--policy", "fifo",
                          "--nodes", "6"]) == 0
        out = capsys.readouterr().out
        assert "a" in out and "b" in out
        assert "completed=2" in out

    def test_undersized_cluster_rejected(self, tmp_path):
        trace = tmp_path / "wl.json"
        trace.write_text(json.dumps([{"name": "big", "nodes": 9}]))
        with pytest.raises(SystemExit, match="--nodes >= 10"):
            jobs_main(["--trace", str(trace), "--nodes", "6"])

    def test_dispatch_through_bench_main(self, capsys):
        assert bench_main(["jobs", "--quick", "--no-per-job"]) == 0
        assert "policy=backfill" in capsys.readouterr().out
