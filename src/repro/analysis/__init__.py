"""Correctness tooling for OMPC programs (:mod:`repro.analysis`).

Three analyzers share one finding/report format:

* the **dynamic race detector** (:mod:`repro.analysis.race`) threads
  vector clocks through the simulator and flags pairs of conflicting
  buffer accesses with no happens-before ordering — the races a missing
  ``depend`` clause silently creates;
* the **MPI checker** (:mod:`repro.analysis.mpicheck`) audits
  point-to-point traffic for unmatched sends/recvs, leaked nonblocking
  requests, and blocking-wait deadlock cycles;
* the **static linter** (:mod:`repro.analysis.lint`) inspects an
  :class:`~repro.omp.api.OmpProgram` before any simulation.

Enable the dynamic analyzers with ``OMPCConfig(analysis=True)`` (the
report lands on ``result.analysis``), or run everything from the CLI::

    python -m repro.bench check demo-racy
"""

from repro.analysis.demos import demo_program
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.hooks import NULL_ANALYSIS, Analysis
from repro.analysis.lint import lint_program
from repro.analysis.mpicheck import MpiChecker
from repro.analysis.race import RaceDetector
from repro.analysis.vc import VectorClock

__all__ = [
    "Analysis",
    "AnalysisReport",
    "Finding",
    "MpiChecker",
    "NULL_ANALYSIS",
    "RaceDetector",
    "Severity",
    "VectorClock",
    "demo_program",
    "lint_program",
]
