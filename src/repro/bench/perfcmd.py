"""The ``perf`` subcommand: simulator performance baseline.

Usage::

    python -m repro.bench perf
    python -m repro.bench perf --quick --out BENCH_jobs.json
    python -m repro.bench perf --check BENCH_kernel.json

Times representative workloads — Fig. 5-style Task Bench scalability
cells on the single-application runtime, plus the multi-tenant jobs
bench (backfill workload and the elastic overload scenario) — and
records, per cell, the host wall time, the number of simulation events
processed, the resulting events/second, and the simulated makespan.

Two JSON artifacts come out of a run:

* ``BENCH_jobs.json`` (``--out``) keeps the original flat cell list —
  the schema earlier baselines used.
* ``BENCH_kernel.json`` (``--kernel-out``) is the kernel-optimization
  trajectory: the same cells plus the recorded pre-optimization
  (:data:`PR6_BASELINE`) reference, per-cell speedups, and a
  machine-calibration score that lets ``--check`` compare throughput
  across hosts.

``--check`` is the CI regression guard: it re-runs the quick cells and
fails if (a) any event count or makespan drifts from the recorded
baseline — those are deterministic, so *any* drift is a kernel
regression — or (b) calibration-normalized events/second drops more
than 30 % below the recorded value.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.cluster.machine import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.runtime import OMPCRuntime
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.taskbench.bench import build_omp_program

#: Reference fabric bandwidth for CCR-derived payload sizes (§6.1).
DEFAULT_BANDWIDTH = 100e9 / 8.0

SCHEMA = "repro-perf/1"
KERNEL_SCHEMA = "repro-kernel-perf/1"

#: Maximum tolerated drop in calibration-normalized events/second
#: before ``--check`` fails (0.3 == 30 %).
CHECK_REGRESSION = 0.3

#: Pre-optimization kernel reference, measured at the commit preceding
#: the kernel fast-path work ("Elastic overload protection for the
#: multi-tenant job manager").  ``events`` counts are deterministic
#: (``sim._seq`` after the run); ``wall_s`` is the minimum wall over
#: interleaved before/after reps on the recording host, the honest
#: estimator under background-load noise (observed swings: ±40 %).
#: The ``fig5bench_*`` cells are ``bench_fig5_scalability``'s own
#: 2n x 32-step graphs; the ``fig5_*`` cells are the 16-step variants.
PR6_BASELINE: dict[str, dict[str, float]] = {
    "fig5_stencil_1d_n4": {"events": 12164, "wall_s": 0.077683},
    "fig5_stencil_1d_n8": {"events": 40010, "wall_s": 0.209767},
    "fig5_stencil_1d_n16": {"events": 170278, "wall_s": 0.856722},
    "fig5_stencil_1d_n32": {"events": 391410, "wall_s": 2.313331},
    "fig5_stencil_1d_n64": {"events": 812140, "wall_s": 5.786942},
    "fig5bench_stencil_1d_n64": {"events": 1693640, "wall_s": 13.894090},
    "fig5bench_fft_n64": {"events": 1684214, "wall_s": 13.933188},
    "jobs_backfill": {"events": 61093, "wall_s": 0.350729},
    "jobs_overload_1x": {"events": 61724, "wall_s": 0.349834},
}


def _fig5_spec(
    nodes: int, steps: int, pattern: Pattern = Pattern.STENCIL_1D
) -> TaskBenchSpec:
    """Fig. 5 cell shape: width 2n, 50 ms tasks, CCR 1.0 (steps vary
    so ``--quick`` stays fast; the figure itself uses 32)."""
    return TaskBenchSpec.with_ccr(
        2 * nodes, steps, pattern,
        KernelSpec.paper_50ms(), 1.0, DEFAULT_BANDWIDTH,
    )


def _run_fig5_cell(
    nodes: int,
    steps: int,
    pattern: Pattern = Pattern.STENCIL_1D,
    label: str | None = None,
) -> dict:
    program = build_omp_program(_fig5_spec(nodes, steps, pattern))
    runtime = OMPCRuntime(ClusterSpec(num_nodes=nodes), OMPCConfig())
    t0 = time.perf_counter()
    result = runtime.run(program)
    wall = time.perf_counter() - t0
    events = runtime.last_cluster.sim._seq
    return _cell(
        label or f"fig5_{pattern.value}_n{nodes}", wall, events,
        result.makespan,
    )


def _run_fig5bench_cell(nodes: int, pattern: Pattern) -> dict:
    """One ``bench_fig5_scalability`` cell proper: the 2n x 32 graph."""
    return _run_fig5_cell(
        nodes, 32, pattern, label=f"fig5bench_{pattern.value}_n{nodes}"
    )


def _run_jobs_backfill(quick: bool) -> dict:
    from repro.jobs import JobManager, PoissonWorkload

    workload = PoissonWorkload(
        seed=7, jobs=8 if quick else 24, mean_interarrival=0.01,
        large=(8, 12), large_fraction=0.35, steps=(3, 6),
        task_seconds=(0.02, 0.08),
    ).generate()
    manager = JobManager(
        Cluster(ClusterSpec(num_nodes=17)), policy="backfill"
    )
    t0 = time.perf_counter()
    report = manager.run(workload)
    wall = time.perf_counter() - t0
    name = "jobs_backfill_q" if quick else "jobs_backfill"
    return _cell(name, wall, manager.sim._seq, report.horizon)


def _run_jobs_overload(quick: bool) -> dict:
    from repro.bench.jobscmd import run_overload

    manager, report = run_overload("backfill", load=1.0, quick=quick)
    # The manager is built inside run_overload; its wall time includes
    # trace generation, which is part of the serving path anyway.
    t0 = time.perf_counter()
    manager2, report2 = run_overload("backfill", load=1.0, quick=quick)
    wall = time.perf_counter() - t0
    del manager, report  # warm-up run (imports, first-touch caches)
    name = "jobs_overload_q" if quick else "jobs_overload_1x"
    return _cell(name, wall, manager2.sim._seq, report2.horizon)


def _cell(name: str, wall: float, events: int, makespan: float) -> dict:
    return {
        "name": name,
        "wall_s": round(wall, 6),
        "events": int(events),
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "makespan_s": round(float(makespan), 9),
    }


def _calib_mops() -> float:
    """Host-speed score: million interpreter spin-loop ops per second.

    Dividing a cell's events/second by this score gives a
    machine-normalized throughput, which is what ``--check`` compares —
    an absolute events/second threshold would fail on any runner slower
    than the recording host.  Best of three to shed scheduler noise.
    """
    n = 200_000
    best = 0.0
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        for i in range(n):
            acc ^= i & 15
        dt = time.perf_counter() - t0
        if dt > 0:
            best = max(best, n / dt / 1e6)
    return round(best, 2)


def _quick_cells() -> list[dict]:
    """The deterministic smoke cells ``--check`` replays (quick shapes)."""
    cells = [
        _run_fig5_cell(4, 4, label="fig5_stencil_1d_n4_q"),
        _run_fig5_cell(8, 4, label="fig5_stencil_1d_n8_q"),
        _run_jobs_backfill(True),
        _run_jobs_overload(True),
    ]
    return cells


def _full_cells() -> list[dict]:
    cells = []
    for nodes in (4, 8, 16, 32, 64):
        cells.append(_run_fig5_cell(nodes, 16))
    cells.append(_run_fig5bench_cell(64, Pattern.STENCIL_1D))
    cells.append(_run_fig5bench_cell(64, Pattern.FFT))
    cells.append(_run_jobs_backfill(False))
    cells.append(_run_jobs_overload(False))
    return cells


def _speedups(cells: list[dict]) -> dict[str, dict[str, float]]:
    """Per-cell gains vs :data:`PR6_BASELINE` (where a reference exists).

    ``wall_x`` compares walls, so it is only meaningful when the run
    host resembles the recording host; ``events_x`` (fewer events for
    the same simulated work) and ``equal_work_events_per_sec``
    (reference event count over the new wall — throughput at
    PR6-equivalent work) travel better.
    """
    out: dict[str, dict[str, float]] = {}
    for cell in cells:
        base = PR6_BASELINE.get(cell["name"])
        if base is None or cell["wall_s"] <= 0:
            continue
        out[cell["name"]] = {
            "wall_x": round(base["wall_s"] / cell["wall_s"], 2),
            "events_x": round(base["events"] / cell["events"], 2),
            "equal_work_events_per_sec": round(
                base["events"] / cell["wall_s"], 1
            ),
            "baseline_events_per_sec": round(
                base["events"] / base["wall_s"], 1
            ),
        }
    return out


def _print_cell(cell: dict) -> None:
    print(f"  {cell['name']}: {cell['events']} events in "
          f"{cell['wall_s']:.3f} s host time "
          f"({cell['events_per_sec']:.0f} ev/s), "
          f"makespan {cell['makespan_s']:.4f} s")


def check_baseline(path: Path, regression: float = CHECK_REGRESSION) -> int:
    """Replay the quick cells against a recorded ``BENCH_kernel.json``.

    Deterministic fields (events, makespan) must match exactly;
    calibration-normalized throughput may not regress by more than
    ``regression``.  Each cell is timed twice and the faster rep is
    compared — wall time is the one noisy quantity here, and a loaded
    host inflates it one-sidedly.  Returns a process exit code.
    """
    recorded = json.loads(path.read_text())
    problems: list[str] = []
    if recorded.get("schema") != KERNEL_SCHEMA:
        print(f"FAIL: schema {recorded.get('schema')!r} != {KERNEL_SCHEMA!r}")
        return 1
    if not recorded.get("baseline_pr6"):
        problems.append("baseline_pr6 section missing or empty")
    by_name = {c["name"]: c for c in recorded.get("cells", [])}
    calib_old = recorded.get("calib_mops") or 0.0
    calib_new = _calib_mops()
    print(f"calibration: recorded {calib_old} Mop/s, this host "
          f"{calib_new} Mop/s")
    reps = [_quick_cells(), _quick_cells()]
    for fresh, again in zip(*reps):
        if again["events_per_sec"] > fresh["events_per_sec"]:
            fresh = dict(fresh, events_per_sec=again["events_per_sec"],
                         wall_s=again["wall_s"])
        _print_cell(fresh)
        old = by_name.get(fresh["name"])
        if old is None:
            problems.append(f"{fresh['name']}: not in recorded baseline")
            continue
        if fresh["events"] != old["events"]:
            problems.append(
                f"{fresh['name']}: events {fresh['events']} != recorded "
                f"{old['events']} (deterministic — kernel regression)"
            )
        if fresh["makespan_s"] != old["makespan_s"]:
            problems.append(
                f"{fresh['name']}: makespan {fresh['makespan_s']} != "
                f"recorded {old['makespan_s']} (simulation result changed)"
            )
        if calib_old > 0 and calib_new > 0:
            norm_old = old["events_per_sec"] / calib_old
            norm_new = fresh["events_per_sec"] / calib_new
            if norm_new < (1.0 - regression) * norm_old:
                problems.append(
                    f"{fresh['name']}: normalized throughput "
                    f"{norm_new:.1f} < {1.0 - regression:.0%} of "
                    f"recorded {norm_old:.1f} (ev/s per Mop/s)"
                )
    for p in problems:
        print(f"FAIL: {p}")
    if problems:
        return 1
    print(f"perf check OK against {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perf",
        description="Measure simulator throughput (events/sec + "
        "makespan) on representative workloads and emit JSON "
        "baselines for perf regression tracking.",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_jobs.json"),
                        help="output JSON path (default: BENCH_jobs.json)")
    parser.add_argument("--kernel-out", type=Path,
                        default=Path("BENCH_kernel.json"),
                        help="kernel-trajectory JSON path "
                        "(default: BENCH_kernel.json)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller cells for smoke tests")
    parser.add_argument("--check", type=Path, metavar="BASELINE",
                        help="replay quick cells against a recorded "
                        "BENCH_kernel.json and fail on regression")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check is not None:
        return check_baseline(args.check)

    cells = _quick_cells()
    if not args.quick:
        cells += _full_cells()
    for cell in cells:
        _print_cell(cell)

    payload = {
        "schema": SCHEMA,
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cells": cells,
    }
    args.out.write_text(json.dumps(payload, indent=2))
    print(f"perf baseline -> {args.out}")

    kernel_payload = {
        "schema": KERNEL_SCHEMA,
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calib_mops": _calib_mops(),
        "cells": cells,
        "baseline_pr6": PR6_BASELINE,
        "speedup": _speedups(cells),
    }
    args.kernel_out.write_text(json.dumps(kernel_payload, indent=2))
    print(f"kernel trajectory -> {args.kernel_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
