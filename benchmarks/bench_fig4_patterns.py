"""Figure 4: Task Bench dependency patterns.

The paper's Fig. 4 illustrates the four dependency types (trivial,
stencil-1d, fft, tree).  Script mode prints each pattern's adjacency at
width 8 — the textual version of the figure.  Bench mode times full
graph materialization and checks the structural properties.
"""

from __future__ import annotations

from figutil import fig6_spec
from repro.taskbench import Pattern, build_omp_program, dependencies


def render_pattern(pattern: Pattern, width: int = 8, steps: int = 4) -> str:
    lines = [f"-- {pattern.value} (width={width}) --"]
    for step in range(1, steps):
        row = [
            f"{point}<-{','.join(map(str, dependencies(pattern, width, step, point))) or '-'}"
            for point in range(width)
        ]
        lines.append(f"step {step}: " + "  ".join(row))
    return "\n".join(lines)


class TestFig4:
    def test_bench_graph_materialization(self, benchmark):
        """Build the Fig. 6 task graph (16x16) for every paper pattern."""

        def build_all():
            return [
                len(build_omp_program(fig6_spec(p, 1.0)).graph)
                for p in Pattern.paper_patterns()
            ]

        sizes = benchmark(build_all)
        assert sizes == [256, 256, 256, 256]

    def test_bench_dependency_enumeration(self, benchmark):
        """Enumerate every dependence of a 128-wide, 32-step fft grid."""

        def count_edges():
            return sum(
                len(dependencies(Pattern.FFT, 128, s, p))
                for s in range(32)
                for p in range(128)
            )

        edges = benchmark(count_edges)
        assert edges == 128 * 31 * 2  # every fft task has 2 inputs


def main() -> None:
    for pattern in Pattern.paper_patterns():
        print(render_pattern(pattern))
        print()


if __name__ == "__main__":
    main()
