"""A multi-stage analytics pipeline on OMPC: map -> reduce -> report.

Demonstrates the programming model beyond grid workloads: a fan-out /
fan-in DAG mixing ``target`` tasks (distributed over workers by HEFT)
with a classical ``task`` (pinned to the head node, per §4.4), and
read-only broadcast-style inputs that the data manager replicates
across workers without invalidation.

Pipeline: N independent partitions of samples are normalized against a
shared calibration table (map), partial statistics are combined
pairwise (tree reduce), and a final classical task formats the report
on the host.

Run:  python examples/data_pipeline.py
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.core import OMPCRuntime
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_inout, depend_out
from repro.util.rng import derive_rng


def main() -> None:
    partitions = 8
    samples = 50_000
    rng = derive_rng(42, "pipeline")

    prog = OmpProgram("analytics-pipeline")

    # Shared read-only calibration table: replicated on demand.
    calibration = rng.normal(loc=2.0, scale=0.1, size=1024)
    calib_buf = prog.buffer(calibration.nbytes, data=calibration, name="calib")
    prog.target_enter_data(calib_buf)

    # Map stage: normalize each partition, emit partial (n, sum, sumsq).
    partials = []
    for i in range(partitions):
        raw = rng.normal(loc=10.0, scale=3.0, size=samples)
        raw_buf = prog.buffer(raw.nbytes, data=raw, name=f"raw{i}")
        partial = np.zeros(3)
        part_buf = prog.buffer(partial.nbytes, data=partial, name=f"partial{i}")
        partials.append(part_buf)

        def normalize(calib, raw_data, out):
            gain = calib.mean()
            x = raw_data / gain
            out[:] = (len(x), x.sum(), (x * x).sum())

        prog.target(
            fn=normalize,
            depend=[depend_in(calib_buf), depend_in(raw_buf), depend_out(part_buf)],
            cost=0.030,
            name=f"map{i}",
        )

    # Reduce stage: pairwise tree combine (log2 depth).
    level = partials
    depth = 0
    while len(level) > 1:
        next_level = []
        for j in range(0, len(level) - 1, 2):
            left, right = level[j], level[j + 1]

            def combine(a, b):
                a += b

            prog.target(
                fn=combine,
                depend=[depend_inout(left), depend_in(right)],
                cost=0.005,
                name=f"reduce{depth}.{j // 2}",
            )
            next_level.append(left)
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
        depth += 1
    root = level[0]

    # Final classical task on the head: turn the stats into a report.
    prog.target_exit_data(root)
    report: dict = {}

    def finalize(stats):
        n, total, sumsq = stats
        mean = total / n
        var = sumsq / n - mean**2
        report.update(n=int(n), mean=mean, std=float(np.sqrt(var)))

    prog.task(fn=finalize, depend=[depend_in(root)], cost=0.001, name="report")

    result = OMPCRuntime(ClusterSpec(num_nodes=5)).run(prog)

    print(f"pipeline makespan: {result.makespan * 1e3:.1f} ms on 4 workers")
    print(f"tasks executed   : {len(result.task_intervals)}")
    print(f"report           : n={report['n']}, mean={report['mean']:.4f}, "
          f"std={report['std']:.4f}")
    # Ground truth: samples ~ N(10, 3) scaled by 1/~2.0.
    expected_mean = 10.0 / calibration.mean()
    assert abs(report["mean"] - expected_mean) < 0.05
    print(f"matches expected mean {expected_mean:.4f} — the distributed "
          "DAG computed the right answer.")


if __name__ == "__main__":
    main()
