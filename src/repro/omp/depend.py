"""Sequential-program-order dependence analysis.

Implements the OpenMP ``depend`` clause semantics (§2): tasks are
created in program order by the control thread, and an edge is added
from an earlier task to a later one when their clauses conflict on the
same list item:

* read-after-write  (later ``in``/``inout`` after earlier ``out``/``inout``)
* write-after-write (later ``out``/``inout`` after earlier ``out``/``inout``)
* write-after-read  (later ``out``/``inout`` after earlier ``in``/``inout``)

Pure data-movement tasks participate exactly like compute tasks — the
paper represents ``target data nowait`` clauses as graph nodes (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.omp.task import Buffer, Task


@dataclass
class _BufferHistory:
    """Per-buffer tracking of the last writer and subsequent readers."""

    last_writer: Task | None = None
    readers_since_write: list[Task] = field(default_factory=list)


class DependenceAnalyzer:
    """Incrementally derives edges as tasks arrive in program order."""

    def __init__(self):
        self._history: dict[int, _BufferHistory] = {}

    def _hist(self, buffer: Buffer) -> _BufferHistory:
        return self._history.setdefault(buffer.buffer_id, _BufferHistory())

    def edges_for(self, task: Task) -> list[tuple[Task, Task]]:
        """Edges required before ``task`` may run; updates the history.

        Returns ``(predecessor, task)`` pairs, deduplicated, in a
        deterministic order.
        """
        preds: dict[int, Task] = {}
        for dep in task.deps:
            hist = self._hist(dep.buffer)
            if dep.type.reads and hist.last_writer is not None:
                preds.setdefault(hist.last_writer.task_id, hist.last_writer)
            if dep.type.writes:
                if hist.last_writer is not None:
                    preds.setdefault(hist.last_writer.task_id, hist.last_writer)
                for reader in hist.readers_since_write:
                    preds.setdefault(reader.task_id, reader)

        # Second pass: update history after all conflicts are collected,
        # so a task with both in and out on the same buffer doesn't see
        # itself as a predecessor.
        for dep in task.deps:
            hist = self._hist(dep.buffer)
            if dep.type.writes:
                hist.last_writer = task
                hist.readers_since_write = []
            elif dep.type.reads:
                hist.readers_since_write.append(task)

        preds.pop(task.task_id, None)
        return [
            (pred, task) for _tid, pred in sorted(preds.items())
        ]

    def last_writer(self, buffer: Buffer) -> Task | None:
        """The most recent task writing ``buffer`` (or None)."""
        hist = self._history.get(buffer.buffer_id)
        return hist.last_writer if hist else None
