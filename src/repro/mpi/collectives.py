"""Collective operations built on point-to-point messaging.

Algorithms are the textbook logarithmic ones (binomial trees and
recursive doubling) so collective cost scales ``O(log p)`` like a real
MPI.  Every rank participating in a collective must call the matching
generator; tags are drawn from a reserved high range so collectives
never collide with application point-to-point traffic.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mpi.comm import Rank
from repro.mpi.request import Request

#: Tag range reserved for collectives.  Each collective call site on a
#: communicator should use a distinct ``phase`` to disambiguate back-to-
#: back collectives of the same type.
_COLL_BASE = 1 << 24


def _vrank(rank: int, root: int, size: int) -> int:
    """Rank relabeling that places ``root`` at virtual rank 0."""
    return (rank - root) % size


def _unvrank(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def bcast(rank: Rank, value: Any, nbytes: float = 0.0, root: int = 0, phase: int = 0):
    """Generator: binomial-tree broadcast; returns the value on all ranks."""
    size = rank.size
    me = _vrank(rank.rank_id, root, size)
    tag = _COLL_BASE + phase

    received = value if me == 0 else None
    # Phase 1: climb the mask until we find the bit at which this rank
    # receives from its binomial parent (root never receives).
    mask = 1
    while mask < size:
        if me & mask:
            msg = yield from rank.recv(_unvrank(me - mask, root, size), tag)
            received = msg.payload
            break
        mask <<= 1
    # Phase 2: forward to children at strides below the receive bit.
    mask >>= 1
    while mask > 0:
        child = me + mask
        if child < size:
            yield from rank.send(_unvrank(child, root, size), received, nbytes, tag)
        mask >>= 1
    return received


def gather(rank: Rank, value: Any, nbytes: float = 0.0, root: int = 0, phase: int = 0):
    """Generator: gather values to ``root``; returns list there, None elsewhere.

    Uses a flat gather (children send directly to root).  The OMPC
    runtime only gathers small control payloads, where flat is what
    MPICH does too (short protocol).
    """
    size = rank.size
    tag = _COLL_BASE + (1 << 8) + phase
    if rank.rank_id == root:
        values: list[Any] = [None] * size
        values[root] = value
        for _ in range(size - 1):
            msg = yield from rank.recv(tag=tag)
            values[msg.src] = msg.payload
        return values
    yield from rank.send(root, value, nbytes, tag)
    return None


def reduce(
    rank: Rank,
    value: Any,
    op: Callable[[Any, Any], Any],
    nbytes: float = 0.0,
    root: int = 0,
    phase: int = 0,
):
    """Generator: binomial-tree reduction to ``root``."""
    size = rank.size
    me = _vrank(rank.rank_id, root, size)
    tag = _COLL_BASE + (2 << 8) + phase
    acc = value
    mask = 1
    while mask < size:
        if me & mask:
            yield from rank.send(_unvrank(me ^ mask, root, size), acc, nbytes, tag)
            return None
        partner = me | mask
        if partner < size:
            msg = yield from rank.recv(_unvrank(partner, root, size), tag)
            acc = op(acc, msg.payload)
        mask <<= 1
    return acc if me == 0 else None


def barrier(rank: Rank, phase: int = 0):
    """Generator: dissemination barrier (log2(p) rounds)."""
    size = rank.size
    me = rank.rank_id
    tag = _COLL_BASE + (3 << 8) + phase
    mask = 1
    round_no = 0
    while mask < size:
        dst = (me + mask) % size
        src = (me - mask) % size
        req = rank.isend(dst, None, 0.0, tag + (round_no << 4))
        yield from rank.recv(src, tag + (round_no << 4))
        yield from req.wait()
        mask <<= 1
        round_no += 1


def allreduce(
    rank: Rank,
    value: Any,
    op: Callable[[Any, Any], Any],
    nbytes: float = 0.0,
    phase: int = 0,
):
    """Generator: reduce to rank 0 then broadcast (correct for any op)."""
    reduced = yield from reduce(rank, value, op, nbytes, root=0, phase=phase)
    result = yield from bcast(rank, reduced, nbytes, root=0, phase=phase)
    return result


def allgather(rank: Rank, value: Any, nbytes: float = 0.0, phase: int = 0):
    """Generator: every rank receives every rank's value (ring algorithm).

    ``p - 1`` rounds; in round ``r`` each rank forwards the value it
    received in round ``r - 1`` to its right neighbor — the classic
    bandwidth-optimal ring allgather.
    """
    size = rank.size
    me = rank.rank_id
    tag = _COLL_BASE + (5 << 8) + phase
    values: list[Any] = [None] * size
    values[me] = value
    carrying = value
    right = (me + 1) % size
    left = (me - 1) % size
    for round_no in range(size - 1):
        req = rank.isend(right, carrying, nbytes, tag + (round_no << 4))
        msg = yield from rank.recv(left, tag + (round_no << 4))
        yield from req.wait()
        carrying = msg.payload
        values[(me - round_no - 1) % size] = carrying
    return values


def alltoall(rank: Rank, values: list | None, nbytes: float = 0.0, phase: int = 0):
    """Generator: personalized exchange — rank i sends ``values[j]`` to
    rank j and receives one value from every rank (pairwise exchanges)."""
    size = rank.size
    me = rank.rank_id
    tag = _COLL_BASE + (6 << 8) + phase
    if values is None or len(values) != size:
        raise ValueError("alltoall requires one value per rank")
    result: list[Any] = [None] * size
    result[me] = values[me]
    reqs = []
    for dst in range(size):
        if dst != me:
            reqs.append(rank.isend(dst, values[dst], nbytes, tag))
    for _ in range(size - 1):
        msg = yield from rank.recv(tag=tag)
        result[msg.src] = msg.payload
    yield from Request.wait_all(reqs)
    return result


def scatter(rank: Rank, values: list | None, nbytes: float = 0.0, root: int = 0, phase: int = 0):
    """Generator: root sends ``values[i]`` to rank ``i``; returns own slice."""
    tag = _COLL_BASE + (4 << 8) + phase
    if rank.rank_id == root:
        if values is None or len(values) != rank.size:
            raise ValueError("root must supply one value per rank")
        reqs = []
        for dst in range(rank.size):
            if dst == root:
                continue
            reqs.append(rank.isend(dst, values[dst], nbytes, tag))
        yield from Request.wait_all(reqs)
        return values[root]
    msg = yield from rank.recv(root, tag)
    return msg.payload
