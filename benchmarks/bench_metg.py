"""Extension: METG — Minimum Effective Task Granularity (Task Bench [31]).

Condenses the Fig. 7a overhead analysis into Task Bench's headline
metric: the smallest task duration at which each runtime still reaches
50% efficiency.  The paper's observation that OMPC needs ">= 10 ms per
task ... to get a small overhead" predicts OMPC's METG lands in the
millisecond range while the thin MPI baseline tolerates far finer
tasks.
"""

from __future__ import annotations

from figutil import RUNTIMES
from repro.bench.report import format_table
from repro.taskbench import Pattern
from repro.taskbench.metg import find_metg

NODES = 4


def metg_for(runtime_name: str) -> float:
    runtime = RUNTIMES[runtime_name]()
    result = find_metg(
        runtime, Pattern.NO_COMM, nodes=NODES, steps=4, ccr=4.0
    )
    return result.metg_seconds


class TestMetg:
    def test_bench_metg_ordering(self, benchmark):
        def sweep():
            return {name: metg_for(name) for name in ("MPI", "StarPU", "OMPC")}

        metg = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # Thin MPI tolerates the finest tasks; StarPU's per-task runtime
        # costs sit between; OMPC's constant startup/shutdown dominates.
        assert metg["MPI"] < metg["StarPU"] <= metg["OMPC"]
        # OMPC's METG is in the paper's granularity ballpark.
        assert 1e-4 < metg["OMPC"] < 0.05


def main() -> None:
    rows = [[name, f"{metg_for(name) * 1e3:.3f} ms"]
            for name in ("MPI", "StarPU", "Charm++", "OMPC")]
    print(
        format_table(
            ["runtime", "METG (50% efficiency)"],
            rows,
            title=f"METG — no_comm chains, {NODES} nodes, CCR 4.0",
        )
    )


if __name__ == "__main__":
    main()
