"""Tests for per-node device-memory capacity accounting."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import DeviceMemory, DeviceMemoryError, OMPCConfig, OMPCRuntime
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_out


class TestDeviceMemoryAccounting:
    def test_unlimited_by_default(self):
        mem = DeviceMemory(0)
        mem.alloc(1, nbytes=1e15)
        assert mem.resident_bytes == 1e15
        assert mem.peak_bytes == 1e15

    def test_alloc_delete_balance(self):
        mem = DeviceMemory(0, capacity_bytes=1000)
        mem.alloc(1, nbytes=400)
        mem.alloc(2, nbytes=500)
        assert mem.resident_bytes == 900
        mem.delete(1)
        assert mem.resident_bytes == 500
        mem.alloc(3, nbytes=400)  # fits again
        assert mem.peak_bytes == 900

    def test_overflow_raises_at_the_crossing_alloc(self):
        mem = DeviceMemory(3, capacity_bytes=1000)
        mem.alloc(1, nbytes=800)
        with pytest.raises(DeviceMemoryError, match="node 3"):
            mem.alloc(2, nbytes=300)
        # The failed alloc must not corrupt the books.
        assert mem.resident_bytes == 800
        assert 2 not in mem

    def test_realloc_counts_delta_not_sum(self):
        mem = DeviceMemory(0, capacity_bytes=1000)
        mem.alloc(1, nbytes=600)
        mem.alloc(1, nbytes=900)  # re-size in place: delta 300
        assert mem.resident_bytes == 900
        assert mem.size_of(1) == 900

    def test_wipe_resets(self):
        mem = DeviceMemory(0, capacity_bytes=100)
        mem.alloc(1, nbytes=100)
        mem.wipe()
        assert mem.resident_bytes == 0.0
        mem.alloc(2, nbytes=100)  # full capacity available again


def tiny_program(buffer_bytes: int) -> OmpProgram:
    prog = OmpProgram("mem-test")
    data = np.zeros(buffer_bytes // 8)
    buf = prog.buffer(data.nbytes, data=data, name="big")
    prog.target_enter_data(buf)
    out = prog.buffer(64, name="out")
    prog.target(depend=[depend_in(buf), depend_out(out)],
                cost=0.001, name="t0")
    prog.target_exit_data(out)
    return prog


class TestRuntimeIntegration:
    def test_config_knob_enforced(self):
        config = OMPCConfig(device_memory_bytes=512)
        runtime = OMPCRuntime(ClusterSpec(num_nodes=3), config)
        with pytest.raises(DeviceMemoryError, match="out of device memory"):
            runtime.run(tiny_program(buffer_bytes=4096))

    def test_zero_means_unlimited(self):
        config = OMPCConfig(device_memory_bytes=0.0)
        runtime = OMPCRuntime(ClusterSpec(num_nodes=3), config)
        result = runtime.run(tiny_program(buffer_bytes=4096))
        assert result.makespan > 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="device_memory_bytes"):
            OMPCConfig(device_memory_bytes=-1.0)

    def test_resident_gauge_traced(self):
        config = OMPCConfig(trace=True)
        runtime = OMPCRuntime(ClusterSpec(num_nodes=3), config)
        result = runtime.run(tiny_program(buffer_bytes=4096))
        gauges = result.obs.metrics.gauges
        mem_gauges = {n: g for n, g in gauges.items()
                      if n.endswith(".mem.resident_bytes")}
        assert mem_gauges, "expected node*.mem.resident_bytes gauges"
        assert any(g.maximum() >= 4096 for g in mem_gauges.values())
