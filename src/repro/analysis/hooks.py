"""The runtime-facing analysis facade.

The simulator never talks to the individual analyzers — it holds one
:class:`Analysis` (or the no-op :data:`NULL_ANALYSIS`) installed on the
cluster via ``cluster.install_analysis``, exactly mirroring the
``Observer`` / ``NULL_OBSERVER`` pattern in :mod:`repro.obs`.  Every
hook is a plain (non-yielding) call, so enabling analysis never
advances simulated time.
"""

from __future__ import annotations

from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.lint import lint_program
from repro.analysis.mpicheck import MpiChecker
from repro.analysis.race import RaceDetector
from repro.obs.observer import NULL_OBSERVER


class Analysis:
    """Umbrella over the three analyzers, sharing one report."""

    enabled = True

    def __init__(self):
        self.race = RaceDetector()
        self.mpi = MpiChecker()
        self.report = AnalysisReport()
        self._finalized = False

    # -- program / task lifecycle (delegated to the race detector) ---------
    def program_begin(self, program) -> None:
        self.report.program = getattr(program, "name", "") or ""
        self.report.extend(lint_program(program))
        self.race.program_begin(program)

    def task_begin(self, task) -> None:
        self.race.task_begin(task)

    def task_end(self, task) -> None:
        self.race.task_end(task)

    def ctx_token(self, task) -> int | None:
        return self.race.ctx_token(task)

    # -- access recording --------------------------------------------------
    def on_kernel(self, task, node: int, token: int | None) -> None:
        self.race.kernel(task, node, token)

    def on_host_task(self, task, dm) -> None:
        self.race.host_task(task, dm)

    def on_move(self, task, buffer) -> None:
        self.race.movement(task, buffer)

    def on_mapped(self, buffer) -> None:
        self.race.mapped(buffer)

    def check_mapped(self, task, buffer) -> None:
        self.race.check_mapped(task, buffer)

    # -- finalize ----------------------------------------------------------
    def finalize(self, worlds=(), failed=frozenset(),
                 obs=NULL_OBSERVER) -> AnalysisReport:
        """Close out both dynamic analyzers; idempotent."""
        if not self._finalized:
            self._finalized = True
            self.report.extend(self.race.finalize())
            self.report.extend(self.mpi.finalize(worlds, failed))
            if obs.enabled:
                obs.count("analysis.findings", float(len(self.report)))
                for sev in Severity:
                    obs.count(f"analysis.findings.{sev.name.lower()}",
                              float(self.report.count(sev)))
                for analyzer in ("race", "mpi", "lint"):
                    obs.count(f"analysis.findings.{analyzer}",
                              float(len(self.report.by_analyzer(analyzer))))
                obs.count("analysis.race.accesses",
                          float(self.race.recorded_accesses))
                obs.count("analysis.mpi.tracked_requests",
                          float(self.mpi.stats.tracked_requests))
        return self.report


class _NullMpiChecker:
    """No-op stand-in so ``analysis.mpi.on_isend(...)`` is always safe."""

    __slots__ = ()

    def register_comm(self, comm_id, service):
        pass

    def is_service(self, comm_id):
        return False

    def on_isend(self, request, comm_id, src, dst, tag):
        pass

    def on_irecv(self, request, comm_id, dst, src, tag):
        pass


class NullAnalysis:
    """Does nothing, cheaply; the default on every cluster."""

    __slots__ = ()

    enabled = False
    mpi = _NullMpiChecker()

    def program_begin(self, program):
        pass

    def task_begin(self, task):
        pass

    def task_end(self, task):
        pass

    def ctx_token(self, task):
        return None

    def on_kernel(self, task, node, token):
        pass

    def on_host_task(self, task, dm):
        pass

    def on_move(self, task, buffer):
        pass

    def on_mapped(self, buffer):
        pass

    def check_mapped(self, task, buffer):
        pass

    def finalize(self, worlds=(), failed=frozenset(), obs=NULL_OBSERVER):
        return AnalysisReport()


NULL_ANALYSIS = NullAnalysis()
