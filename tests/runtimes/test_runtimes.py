"""Integration tests for the four Task Bench runtimes."""

import pytest

from repro.cluster import ClusterSpec
from repro.runtimes import (
    CharmLikeRuntime,
    MpiSyncRuntime,
    OmpcRuntimeAdapter,
    StarPULikeRuntime,
    all_runtimes,
)
from repro.runtimes.calibration import RuntimeCosts
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.util.units import Gbps

BW = Gbps(100.0)


def spec_for(pattern, width=8, steps=4, duration=0.01, ccr=1.0):
    return TaskBenchSpec.with_ccr(
        width, steps, pattern, KernelSpec.from_duration(duration), ccr, BW
    )


ALL_RUNTIMES = [MpiSyncRuntime(), StarPULikeRuntime(), CharmLikeRuntime(),
                OmpcRuntimeAdapter()]


class TestAllRuntimes:
    @pytest.mark.parametrize("runtime", ALL_RUNTIMES, ids=lambda r: r.name)
    @pytest.mark.parametrize("pattern", list(Pattern.paper_patterns()),
                             ids=lambda p: p.value)
    def test_completes_with_sane_makespan(self, runtime, pattern):
        spec = spec_for(pattern)
        res = runtime.run(spec, ClusterSpec(num_nodes=4))
        # Lower bound: the per-point serial chain (4 steps x 10ms).
        assert res.makespan >= 4 * 0.01 - 1e-9
        # Upper bound: fully serial execution of all tasks plus slack.
        assert res.makespan < 32 * 0.01 + 1.0

    @pytest.mark.parametrize("runtime", ALL_RUNTIMES, ids=lambda r: r.name)
    def test_deterministic(self, runtime):
        spec = spec_for(Pattern.STENCIL_1D)
        r1 = runtime.run(spec, ClusterSpec(num_nodes=4))
        r2 = runtime.run(spec, ClusterSpec(num_nodes=4))
        assert r1.makespan == r2.makespan

    @pytest.mark.parametrize("runtime", ALL_RUNTIMES, ids=lambda r: r.name)
    def test_trivial_moves_no_data(self, runtime):
        spec = spec_for(Pattern.TRIVIAL)
        res = runtime.run(spec, ClusterSpec(num_nodes=4))
        # No dependences -> no halo payloads. OMPC control messages are
        # tiny; everything else should be zero.
        assert res.network_bytes < 100_000

    def test_all_runtimes_factory(self):
        names = [rt.name for rt in all_runtimes()]
        assert names == ["OMPC", "Charm++", "StarPU", "MPI"]


class TestMpiSync:
    def test_bsp_step_accumulation(self):
        # no_comm: chains without cross-point deps; per step = compute.
        spec = spec_for(Pattern.NO_COMM, width=4, steps=5, duration=0.02)
        res = MpiSyncRuntime().run(spec, ClusterSpec(num_nodes=4))
        assert res.makespan == pytest.approx(5 * 0.02, rel=0.05)

    def test_halo_messages_counted(self):
        spec = spec_for(Pattern.STENCIL_1D, width=8, steps=4)
        res = MpiSyncRuntime().run(spec, ClusterSpec(num_nodes=4))
        # 3 inter-step exchanges x 3 boundaries x 2 directions = 18 msgs.
        assert res.network_messages == 18

    def test_single_node_no_network(self):
        spec = spec_for(Pattern.STENCIL_1D)
        res = MpiSyncRuntime().run(spec, ClusterSpec(num_nodes=1))
        assert res.network_bytes == 0

    def test_comm_adds_to_step_time(self):
        fast = spec_for(Pattern.STENCIL_1D, duration=0.01, ccr=100.0)
        slow = spec_for(Pattern.STENCIL_1D, duration=0.01, ccr=0.1)
        r_fast = MpiSyncRuntime().run(fast, ClusterSpec(num_nodes=4))
        r_slow = MpiSyncRuntime().run(slow, ClusterSpec(num_nodes=4))
        assert r_slow.makespan > r_fast.makespan * 2


class TestDataflowRuntimes:
    def test_starpu_tracks_mpi_closely(self):
        # StarPU's dataflow pipelining keeps it within a few percent of
        # the hand-written MPI schedule; its per-task runtime overhead
        # is the only structural cost separating them.
        spec = spec_for(Pattern.TREE, width=16, steps=8, duration=0.02)
        mpi = MpiSyncRuntime().run(spec, ClusterSpec(num_nodes=8))
        sp = StarPULikeRuntime().run(spec, ClusterSpec(num_nodes=8))
        assert sp.makespan < mpi.makespan * 1.10
        assert sp.makespan > mpi.makespan * 0.80

    def test_charm_copy_cost_hurts_at_low_ccr(self):
        low = spec_for(Pattern.STENCIL_1D, duration=0.02, ccr=0.5)
        high = spec_for(Pattern.STENCIL_1D, duration=0.02, ccr=4.0)
        charm_low = CharmLikeRuntime().run(low, ClusterSpec(num_nodes=4))
        charm_high = CharmLikeRuntime().run(high, ClusterSpec(num_nodes=4))
        mpi_low = MpiSyncRuntime().run(low, ClusterSpec(num_nodes=4))
        mpi_high = MpiSyncRuntime().run(high, ClusterSpec(num_nodes=4))
        # Charm++'s penalty versus MPI grows as communication dominates.
        assert (charm_low.makespan / mpi_low.makespan) > (
            charm_high.makespan / mpi_high.makespan
        )

    def test_zero_copy_costs_unused(self):
        # A dataflow runtime with MPI-like costs approaches raw wire time.
        thin = StarPULikeRuntime(RuntimeCosts())
        spec = spec_for(Pattern.NO_COMM, width=4, steps=3, duration=0.01)
        res = thin.run(spec, ClusterSpec(num_nodes=4))
        assert res.makespan == pytest.approx(0.03, rel=0.02)


class TestOmpcAdapter:
    def test_extras_carry_overheads(self):
        spec = spec_for(Pattern.STENCIL_1D)
        res = OmpcRuntimeAdapter().run(spec, ClusterSpec(num_nodes=4))
        assert res.extras["startup"] > 0
        assert res.extras["shutdown"] > 0
        assert "counters" in res.extras

    def test_head_thread_limit_shows_in_makespan(self):
        from repro.core.config import OMPCConfig

        spec = spec_for(Pattern.TRIVIAL, width=16, steps=2, duration=0.05)
        wide = OmpcRuntimeAdapter(OMPCConfig(head_threads=64)).run(
            spec, ClusterSpec(num_nodes=17)
        )
        narrow = OmpcRuntimeAdapter(OMPCConfig(head_threads=4)).run(
            spec, ClusterSpec(num_nodes=17)
        )
        assert narrow.makespan > wide.makespan * 1.5


class TestPaperShapes:
    """The qualitative relations of Figs. 5-6 at reduced scale."""

    def test_ordering_at_ccr_one(self):
        spec = TaskBenchSpec.with_ccr(
            8, 8, Pattern.STENCIL_1D, KernelSpec.from_duration(0.05), 1.0, BW
        )
        cs = ClusterSpec(num_nodes=8)
        mpi = MpiSyncRuntime().run(spec, cs).makespan
        starpu = StarPULikeRuntime().run(spec, cs).makespan
        ompc = OmpcRuntimeAdapter().run(spec, cs).makespan
        charm = CharmLikeRuntime().run(spec, cs).makespan
        assert mpi <= starpu * 1.01
        assert starpu < ompc
        assert ompc < charm

    def test_ompc_beats_charm_on_tree(self):
        spec = TaskBenchSpec.with_ccr(
            8, 8, Pattern.TREE, KernelSpec.from_duration(0.05), 1.0, BW
        )
        cs = ClusterSpec(num_nodes=8)
        ompc = OmpcRuntimeAdapter().run(spec, cs).makespan
        charm = CharmLikeRuntime().run(spec, cs).makespan
        assert charm > ompc
