"""Tests for the §7 page-protection write-detection extension."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import OMPCConfig, OMPCRuntime
from repro.core.scheduler import RoundRobinScheduler
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_inout, depend_out

BASE = dict(
    startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
    event_origin_overhead=0.0, event_handler_overhead=0.0,
    task_creation_overhead=0.0, schedule_unit_cost=0.0,
)
DETECT = OMPCConfig(write_detection="page_protect", **BASE)
DECLARE = OMPCConfig(write_detection="dependencies", **BASE)


class TestConfigValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            OMPCConfig(write_detection="magic")
        with pytest.raises(ValueError):
            OMPCConfig(page_size=0)
        with pytest.raises(ValueError):
            OMPCConfig(page_fault_overhead=-1.0)


class TestDetection:
    def test_results_match_declared_mode(self):
        def build():
            prog = OmpProgram()
            data = np.zeros(1000)
            A = prog.buffer(data.nbytes, data=data, name="A")
            prog.target_enter_data(A)
            prog.target(fn=lambda a: np.add(a, 1, out=a),
                        depend=[depend_inout(A)], cost=0.01)
            prog.target(fn=lambda a: np.multiply(a, 2, out=a),
                        depend=[depend_inout(A)], cost=0.01)
            prog.target_exit_data(A)
            return prog, data

        p1, d1 = build()
        OMPCRuntime(ClusterSpec(num_nodes=3), DECLARE).run(p1)
        p2, d2 = build()
        OMPCRuntime(ClusterSpec(num_nodes=3), DETECT).run(p2)
        np.testing.assert_allclose(d1, d2)
        np.testing.assert_allclose(d2, np.full(1000, 2.0))

    def test_artificial_dependence_not_invalidated(self):
        """§7's motivating case: a dummy inout used purely to order
        tasks.  With declared semantics the runtime would needlessly
        invalidate replicas; page-protect sees no actual write and keeps
        the buffer replicated."""
        prog = OmpProgram()
        token = np.zeros(4)
        tok = prog.buffer(token.nbytes, data=token, name="token")
        prog.target_enter_data(tok)
        # Three "ordered" tasks that never touch the token's contents —
        # the inout is only there to serialize them.
        for i in range(3):
            prog.target(fn=lambda t: None, depend=[depend_inout(tok)],
                        cost=0.01, name=f"step{i}")
        rt = OMPCRuntime(
            ClusterSpec(num_nodes=4), DETECT, scheduler=RoundRobinScheduler()
        )
        res = rt.run(prog)
        # No invalidations: no DELETE events for the token replicas.
        assert res.counters.get("ompc.events.delete", 0) == 0
        # Under declared semantics the same program invalidates twice.
        prog2 = OmpProgram()
        tok2 = prog2.buffer(token.nbytes, data=np.zeros(4), name="token")
        prog2.target_enter_data(tok2)
        for i in range(3):
            prog2.target(fn=lambda t: None, depend=[depend_inout(tok2)],
                         cost=0.01, name=f"step{i}")
        res2 = OMPCRuntime(
            ClusterSpec(num_nodes=4), DECLARE, scheduler=RoundRobinScheduler()
        ).run(prog2)
        assert res2.counters.get("ompc.events.delete", 0) >= 1

    def test_page_fault_overhead_charged(self):
        prog = OmpProgram()
        data = np.zeros(400_000)  # ~3.2 MB -> ~780 pages
        A = prog.buffer(data.nbytes, data=data, name="A")
        prog.target_enter_data(A)
        prog.target(fn=lambda a: np.add(a, 1, out=a),
                    depend=[depend_inout(A)], cost=0.001)
        cfg = OMPCConfig(
            write_detection="page_protect", page_fault_overhead=1e-5, **BASE
        )
        rt = OMPCRuntime(ClusterSpec(num_nodes=2), cfg)
        res = rt.run(prog)
        faults = res.counters.get("ompc.page_faults", 0)
        assert faults == int(data.nbytes // 4096)
        # ~780 pages x 10us = ~7.8 ms visible in the makespan.
        assert res.makespan > faults * 1e-5

    def test_timing_only_tasks_fall_back_to_declared(self):
        prog = OmpProgram()
        A = prog.buffer(1_000_000, name="A")  # no real payload
        prog.target_enter_data(A)
        prog.target(depend=[depend_inout(A)], cost=0.01, name="w1")
        prog.target(depend=[depend_inout(A)], cost=0.01, name="w2")
        res = OMPCRuntime(
            ClusterSpec(num_nodes=3), DETECT, scheduler=RoundRobinScheduler()
        ).run(prog)
        # Declared-intent fallback: w1's copy is invalidated when w2
        # (on another node) writes.
        assert res.counters.get("ompc.events.exchange_dst", 0) == 1

    def test_undeclared_write_detected_and_kept_coherent(self):
        """A task that writes MORE than it declared: detection catches
        it and later readers see the new value from the right node."""
        prog = OmpProgram()
        data = np.zeros(8)
        A = prog.buffer(data.nbytes, data=data, name="A")
        token = prog.buffer(8, data=np.zeros(1), name="token")
        prog.target_enter_data(A)
        # Orders through a dummy token (§7's "artificial data
        # dependencies to order the execution of tasks") and declares
        # only IN on A — yet actually writes A.
        prog.target(
            fn=lambda a, t: (np.add(a, 5.0, out=a), None)[1],
            depend=[depend_in(A), depend_inout(token)],
            cost=0.01, name="sneaky",
        )
        out = np.zeros(8)
        C = prog.buffer(out.nbytes, data=out, name="C")
        prog.target(
            fn=lambda a, t, c: np.copyto(c, a),
            depend=[depend_in(A), depend_inout(token), depend_out(C)],
            cost=0.01, name="reader",
        )
        prog.target_exit_data(C)
        OMPCRuntime(
            ClusterSpec(num_nodes=4), DETECT, scheduler=RoundRobinScheduler()
        ).run(prog)
        np.testing.assert_allclose(out, np.full(8, 5.0))
