"""Unit tests for the static program linter."""

from types import SimpleNamespace

from repro.analysis import lint_program
from repro.analysis.findings import Severity
from repro.omp import DependenceAnalyzer, OmpProgram, TaskGraph
from repro.omp.task import (
    Buffer,
    Dep,
    DepType,
    Task,
    TaskKind,
    depend_in,
    depend_inout,
    depend_out,
)


def rules(findings):
    return sorted(f.rule for f in findings)


class TestClauseRules:
    def test_clean_program(self):
        prog = OmpProgram(name="clean")
        a = prog.buffer(8, name="a")
        prog.target_enter_data(a)
        prog.target(depend=[depend_inout(a)], cost=1e-3)
        prog.target_exit_data(a)
        assert lint_program(prog) == []

    def test_duplicate_dep(self):
        prog = OmpProgram(name="dup")
        a = prog.buffer(8, name="a")
        prog.target(depend=[depend_in(a), depend_in(a)], cost=1e-3)
        (finding,) = lint_program(prog)
        assert finding.rule == "duplicate-dep"
        assert finding.severity == Severity.WARNING

    def test_conflicting_dep(self):
        # OmpProgram.validate() rejects in+out outright, so build the
        # graph by hand the way a malformed front end might.
        buf = Buffer(8, name="a")
        task = Task(
            task_id=0,
            kind=TaskKind.TARGET,
            deps=(Dep(buf, DepType.IN), Dep(buf, DepType.OUT)),
        )
        graph = TaskGraph()
        graph.add_task(task)
        program = SimpleNamespace(name="bad", graph=graph)
        (finding,) = lint_program(program)
        assert finding.rule == "conflicting-dep"
        assert finding.severity == Severity.ERROR


class TestEnterExitPairing:
    def test_exit_without_enter_or_writer_warns(self):
        prog = OmpProgram(name="unmatched")
        a = prog.buffer(8, name="a")
        b = prog.buffer(8, name="b")
        prog.target_enter_data(a)
        prog.target(depend=[depend_inout(a)], cost=1e-3)
        prog.target_exit_data(a, b)  # b: never entered, never written
        findings = [f for f in lint_program(prog)
                    if f.rule == "unmatched-exit"]
        assert len(findings) == 1
        assert findings[0].buffer == "b"

    def test_device_written_buffer_may_exit(self):
        # The pure-out producer idiom: no enter data, the first writer
        # materializes the device copy, exit data retrieves it.
        prog = OmpProgram(name="produce")
        out = prog.buffer(8, name="out")
        prog.target(depend=[depend_out(out)], cost=1e-3, name="producer")
        prog.target_exit_data(out)
        assert lint_program(prog) == []


class TestReachability:
    def test_task_reaching_no_sink_warns(self):
        prog = OmpProgram(name="orphan")
        a = prog.buffer(8, name="a")
        b = prog.buffer(8, name="b")
        prog.target_enter_data(a)
        prog.target(depend=[depend_inout(a)], cost=1e-3, name="useful")
        prog.target_exit_data(a)
        prog.target(depend=[depend_out(b)], cost=1e-3, name="orphaned")
        findings = [f for f in lint_program(prog)
                    if f.rule == "unreachable-task"]
        assert [f.tasks for f in findings] == [("orphaned",)]

    def test_sinkless_program_skips_rule(self):
        # Pure timing benchmarks (Task Bench) have no exit data and no
        # classical tasks; nothing is "observable", so nothing warns.
        prog = OmpProgram(name="bench")
        a = prog.buffer(8, name="a")
        prog.target(depend=[depend_out(a)], cost=1e-3)
        assert lint_program(prog) == []


class TestOverSerialization:
    def test_disjoint_actual_footprints_flagged(self):
        prog = OmpProgram(name="slack")
        a = prog.buffer(8, name="a")
        b = prog.buffer(8, name="b")
        prog.target(
            depend=[depend_out(a)], cost=1e-3, name="first",
            accesses=(depend_out(a),),
        )
        prog.target(
            depend=[depend_in(a)], cost=1e-3, name="second",
            accesses=(depend_in(b),),  # never actually touches a
        )
        findings = [f for f in lint_program(prog)
                    if f.rule == "over-serialization"]
        assert len(findings) == 1
        assert findings[0].severity == Severity.INFO
        assert findings[0].tasks == ("first", "second")

    def test_true_dependence_not_flagged(self):
        prog = OmpProgram(name="tight")
        a = prog.buffer(8, name="a")
        prog.target(depend=[depend_out(a)], cost=1e-3,
                    accesses=(depend_out(a),))
        prog.target(depend=[depend_in(a)], cost=1e-3,
                    accesses=(depend_in(a),))
        assert lint_program(prog) == []

    def test_declared_only_footprints_give_no_signal(self):
        prog = OmpProgram(name="plain")
        a = prog.buffer(8, name="a")
        prog.target(depend=[depend_out(a)], cost=1e-3)
        prog.target(depend=[depend_in(a)], cost=1e-3)
        assert lint_program(prog) == []


class TestAnalyzerUsedDirectly:
    def test_lint_accepts_hand_built_graphs(self):
        buffers = [Buffer(8, name=f"b{i}") for i in range(2)]
        analyzer = DependenceAnalyzer()
        graph = TaskGraph()
        for task_id in range(3):
            task = Task(
                task_id=task_id,
                kind=TaskKind.TARGET,
                deps=(Dep(buffers[task_id % 2], DepType.INOUT),),
            )
            graph.add_task(task)
            for pred, succ in analyzer.edges_for(task):
                graph.add_edge(pred, succ)
        program = SimpleNamespace(name="hand", graph=graph)
        assert lint_program(program) == []
