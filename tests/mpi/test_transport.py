"""Tests for the reliable (ack + retransmit) MPI transport under loss."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NetworkSpec
from repro.core.faultmodel import FaultPlan, LinkLoss
from repro.mpi import MpiError, MpiWorld, TransportConfig


def make_world(n=2, plan=None, transport=None, overhead=0.0):
    net = NetworkSpec(latency=1e-6, bandwidth=1e9)
    cluster = Cluster(ClusterSpec(num_nodes=n, network=net))
    if plan is not None:
        plan.install(cluster)
    mpi = MpiWorld(cluster, overhead=overhead, transport=transport)
    return cluster, mpi


class TestTransportConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            TransportConfig(rto=0.0)
        with pytest.raises(ValueError):
            TransportConfig(backoff=0.5)
        with pytest.raises(ValueError):
            TransportConfig(max_retries=-1)
        with pytest.raises(ValueError):
            TransportConfig(ack_bytes=-1.0)


class TestReliableDelivery:
    def test_clean_fabric_one_send_one_ack(self):
        cluster, mpi = make_world(transport=TransportConfig())
        sim = cluster.sim

        def sender():
            yield from mpi.world.rank(0).send(1, "x", nbytes=100, tag=3)

        def receiver():
            msg = yield from mpi.world.rank(1).recv(src=0, tag=3)
            return msg.payload

        sim.process(sender())
        p = sim.process(receiver())
        assert sim.run(until=p) == "x"
        sim.run()  # drain the in-flight ack
        assert mpi.stats["retransmissions"] == 0
        assert mpi.stats["acks"] == 1
        assert mpi.stats["duplicates"] == 0

    def test_lossy_fabric_retransmits_until_delivered(self):
        plan = FaultPlan(seed=5, losses=[LinkLoss(probability=0.5)])
        cluster, mpi = make_world(plan=plan, transport=TransportConfig())
        sim = cluster.sim

        def sender():
            r = mpi.world.rank(0)
            for i in range(32):
                yield from r.send(1, i, nbytes=64, tag=1)

        def receiver():
            r = mpi.world.rank(1)
            got = []
            for _ in range(32):
                msg = yield from r.recv(src=0, tag=1)
                got.append(msg.payload)
            return got

        sim.process(sender())
        p = sim.process(receiver())
        got = sim.run(until=p)
        # Every message arrives exactly once despite the lossy link.
        assert sorted(got) == list(range(32))
        assert mpi.stats["drops"] > 0
        assert mpi.stats["retransmissions"] > 0

    def test_loss_costs_time_not_correctness(self):
        def elapsed(plan):
            cluster, mpi = make_world(plan=plan, transport=TransportConfig())
            sim = cluster.sim

            def sender():
                r = mpi.world.rank(0)
                for i in range(16):
                    yield from r.send(1, i, nbytes=1000)

            def receiver():
                r = mpi.world.rank(1)
                for _ in range(16):
                    yield from r.recv(src=0)
                return sim.now

            sim.process(sender())
            p = sim.process(receiver())
            sim.run(until=p)
            return sim.now

        clean = elapsed(None)
        lossy = elapsed(FaultPlan(seed=9, losses=[LinkLoss(probability=0.4)]))
        assert lossy > clean

    def test_broken_fabric_raises_after_retry_cap(self):
        plan = FaultPlan(losses=[LinkLoss(probability=1.0)])
        cluster, mpi = make_world(
            plan=plan, transport=TransportConfig(max_retries=3)
        )
        sim = cluster.sim

        def sender():
            yield from mpi.world.rank(0).send(1, "x", nbytes=10)

        p = sim.process(sender())
        with pytest.raises(MpiError, match="unacked after 3 retries"):
            sim.run(until=p)
        assert mpi.stats["retransmissions"] == 3

    def test_lost_acks_cause_deduped_duplicates(self):
        # Forward link is clean; every ack (1 -> 0) is eaten, so the
        # sender keeps retransmitting and the receiver must suppress the
        # duplicates, delivering the payload exactly once.
        plan = FaultPlan(losses=[LinkLoss(probability=1.0, src=1, dst=0)])
        cluster, mpi = make_world(
            plan=plan, transport=TransportConfig(max_retries=2)
        )
        sim = cluster.sim

        def sender():
            yield from mpi.world.rank(0).send(1, "x", nbytes=10)

        def receiver():
            got = []
            r = mpi.world.rank(1)
            msg = yield from r.recv(src=0)
            got.append(msg.payload)
            return got

        recv_p = sim.process(receiver())
        send_p = sim.process(sender())
        with pytest.raises(MpiError):
            sim.run(until=send_p)
        assert recv_p.value == ["x"]  # delivered exactly once
        assert mpi.stats["duplicates"] == 2

    def test_self_send_never_dropped(self):
        plan = FaultPlan(losses=[LinkLoss(probability=1.0)])
        cluster, mpi = make_world(plan=plan, transport=TransportConfig())
        sim = cluster.sim

        def roundtrip():
            r = mpi.world.rank(0)
            r.isend(0, "local", nbytes=8, tag=2)
            msg = yield from r.recv(src=0, tag=2)
            return msg.payload

        p = sim.process(roundtrip())
        assert sim.run(until=p) == "local"


class TestDatagramOptOut:
    def test_unreliable_comm_drops_silently(self):
        plan = FaultPlan(losses=[LinkLoss(probability=1.0)])
        cluster, mpi = make_world(plan=plan, transport=TransportConfig())
        datagram = mpi.new_communicator(reliable=False)
        sim = cluster.sim

        def sender():
            yield from datagram.rank(0).send(1, "gone", nbytes=16)

        req = datagram.rank(1).irecv(src=0)
        p = sim.process(sender())
        sim.run(until=p)  # the send completes locally (fire-and-forget)
        sim.run(until=1.0)
        assert not req.test()  # nothing ever arrives
        assert mpi.stats["retransmissions"] == 0
        assert cluster.faults.dropped_messages == 1


class TestRecvCancellation:
    def test_cancelled_recv_never_matches(self):
        cluster, mpi = make_world()
        sim = cluster.sim
        stale = mpi.world.rank(1).irecv(src=0, tag=7)
        assert stale.cancel()
        assert stale.cancelled

        def sender():
            yield from mpi.world.rank(0).send(1, "beat", nbytes=16, tag=7)

        p = sim.process(sender())
        sim.run(until=p)
        sim.run(until=1.0)
        # The message must not have been swallowed by the cancelled
        # request: a fresh receive still gets it.
        assert not stale.test()
        fresh = mpi.world.rank(1).irecv(src=0, tag=7)
        sim.run(until=2.0)
        assert fresh.test()
        assert fresh.event.value.payload == "beat"

    def test_cancel_after_completion_is_refused(self):
        cluster, mpi = make_world()
        sim = cluster.sim

        def sender():
            yield from mpi.world.rank(0).send(1, "x", nbytes=16, tag=1)

        req = mpi.world.rank(1).irecv(src=0, tag=1)
        p = sim.process(sender())
        sim.run(until=p)
        sim.run(until=1.0)
        assert req.test()
        assert not req.cancel()
        assert not req.cancelled

    def test_cancel_is_idempotent(self):
        cluster, mpi = make_world()
        req = mpi.world.rank(1).irecv(src=0, tag=1)
        assert req.cancel()
        assert not req.cancel()  # second call reports already-cancelled

    def test_send_requests_are_not_cancellable(self):
        cluster, mpi = make_world()
        req = mpi.world.rank(0).isend(1, "x", nbytes=16)
        assert not req.cancel()
