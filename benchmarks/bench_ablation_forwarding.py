"""Ablation B: data-manager worker-to-worker forwarding (§4.3).

"OMPC automatically forwards data between worker nodes without using
the host (i.e., head node) as an intermediate location, dramatically
improving performance."  This bench disables that path (every move
staged through the head) and measures the cost.
"""

from __future__ import annotations

from dataclasses import replace

from figutil import BANDWIDTH
from repro.bench.report import format_table
from repro.cluster.machine import ClusterSpec
from repro.core import OMPCConfig, OMPCRuntime
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec, build_omp_program


def run_forwarding(enabled: bool, nodes: int = 8) -> float:
    spec = TaskBenchSpec.with_ccr(
        16, 16, Pattern.STENCIL_1D, KernelSpec.paper_50ms(), 0.5, BANDWIDTH
    )
    program = build_omp_program(spec)
    config = OMPCConfig(forwarding_enabled=enabled)
    runtime = OMPCRuntime(ClusterSpec(num_nodes=nodes), config)
    result = runtime.run(program)
    return result.makespan


class TestAblationForwarding:
    def test_bench_forwarding_dramatically_improves_performance(self, benchmark):
        def sweep():
            return run_forwarding(True), run_forwarding(False)

        direct, via_head = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # Staging through the head doubles every worker-to-worker
        # transfer and serializes them on the head NIC.
        assert via_head > direct * 1.3


def main() -> None:
    rows = [
        ["worker-to-worker (paper)", run_forwarding(True)],
        ["staged via head (ablation)", run_forwarding(False)],
    ]
    print(
        format_table(
            ["data path", "makespan (s)"],
            rows,
            title="Ablation B — DM forwarding (stencil 16x16, 8 nodes, CCR 0.5)",
        )
    )


if __name__ == "__main__":
    main()
