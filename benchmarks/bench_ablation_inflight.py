"""Ablation D: the head-node in-flight task limit (§7).

"An OpenMP thread at the head node is always blocked, waiting for a
target region to complete (even when it is marked as nowait).  This
means that we can have as many in-flight tasks as we have threads on
the head node" — the paper's explanation for the Fig. 5 knee at 32-64
nodes.  This bench varies ``head_threads`` on a wide graph and shows
the knee appearing and disappearing.
"""

from __future__ import annotations

from figutil import BANDWIDTH
from repro.bench.report import format_table
from repro.cluster.machine import ClusterSpec
from repro.core import OMPCConfig, OMPCRuntime
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec, build_omp_program

THREAD_COUNTS = (8, 48, 256)


def run_with_threads(head_threads: int, nodes: int = 32) -> float:
    # Fig. 5 geometry at 32 nodes: width 64 exceeds 48 head threads.
    spec = TaskBenchSpec.with_ccr(
        2 * nodes, 8, Pattern.TRIVIAL, KernelSpec.paper_50ms(), 1.0, BANDWIDTH
    )
    program = build_omp_program(spec)
    config = OMPCConfig(head_threads=head_threads)
    return OMPCRuntime(ClusterSpec(num_nodes=nodes), config).run(program).makespan


class TestAblationInflight:
    def test_bench_head_threads_bound_throughput(self, benchmark):
        def sweep():
            return {t: run_with_threads(t) for t in THREAD_COUNTS}

        times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # Fewer threads -> harder throttling of the 64-wide graph.
        assert times[8] > times[48] > times[256]
        # With 8 threads the 64-wide steps serialize into ~8 waves.
        assert times[8] > times[256] * 3.0


def main() -> None:
    rows = [[t, run_with_threads(t)] for t in THREAD_COUNTS]
    print(
        format_table(
            ["head threads", "makespan (s)"],
            rows,
            title="Ablation D — in-flight limit (trivial 64x8, 32 nodes)",
        )
    )


if __name__ == "__main__":
    main()
