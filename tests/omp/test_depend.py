"""Tests for the sequential dependence analysis."""

from repro.omp import Buffer, DependenceAnalyzer, Task, TaskKind
from repro.omp.task import depend_in, depend_inout, depend_out


def mk(task_id, *deps):
    return Task(task_id=task_id, kind=TaskKind.TARGET, deps=tuple(deps))


class TestDependenceAnalyzer:
    def test_raw_edge(self):
        a = Buffer(1)
        an = DependenceAnalyzer()
        writer = mk(0, depend_out(a))
        reader = mk(1, depend_in(a))
        assert an.edges_for(writer) == []
        assert an.edges_for(reader) == [(writer, reader)]

    def test_waw_edge(self):
        a = Buffer(1)
        an = DependenceAnalyzer()
        w1, w2 = mk(0, depend_out(a)), mk(1, depend_out(a))
        an.edges_for(w1)
        assert an.edges_for(w2) == [(w1, w2)]

    def test_war_edge(self):
        a = Buffer(1)
        an = DependenceAnalyzer()
        writer = mk(0, depend_out(a))
        r1, r2 = mk(1, depend_in(a)), mk(2, depend_in(a))
        w2 = mk(3, depend_out(a))
        an.edges_for(writer)
        an.edges_for(r1)
        an.edges_for(r2)
        edges = an.edges_for(w2)
        # The new writer must wait for both readers (the earlier writer is
        # already ordered before them transitively but also collected).
        preds = {p.task_id for p, _ in edges}
        assert {1, 2} <= preds

    def test_readers_do_not_depend_on_each_other(self):
        a = Buffer(1)
        an = DependenceAnalyzer()
        an.edges_for(mk(0, depend_out(a)))
        r1 = mk(1, depend_in(a))
        r2 = mk(2, depend_in(a))
        an.edges_for(r1)
        edges = an.edges_for(r2)
        assert all(p.task_id == 0 for p, _ in edges)

    def test_inout_chain_serializes(self):
        a = Buffer(1)
        an = DependenceAnalyzer()
        tasks = [mk(i, depend_inout(a)) for i in range(4)]
        an.edges_for(tasks[0])
        for i in range(1, 4):
            edges = an.edges_for(tasks[i])
            assert edges == [(tasks[i - 1], tasks[i])]

    def test_independent_buffers_no_edges(self):
        a, b = Buffer(1), Buffer(1)
        an = DependenceAnalyzer()
        an.edges_for(mk(0, depend_inout(a)))
        assert an.edges_for(mk(1, depend_inout(b))) == []

    def test_in_and_out_same_buffer_no_self_edge(self):
        a = Buffer(1)
        an = DependenceAnalyzer()
        task = mk(0, depend_in(a), depend_out(a))
        assert an.edges_for(task) == []

    def test_edges_deduplicated_across_buffers(self):
        a, b = Buffer(1), Buffer(1)
        an = DependenceAnalyzer()
        producer = mk(0, depend_out(a), depend_out(b))
        consumer = mk(1, depend_in(a), depend_in(b))
        an.edges_for(producer)
        assert an.edges_for(consumer) == [(producer, consumer)]

    def test_last_writer_query(self):
        a = Buffer(1)
        an = DependenceAnalyzer()
        assert an.last_writer(a) is None
        w = mk(0, depend_out(a))
        an.edges_for(w)
        assert an.last_writer(a) is w
        an.edges_for(mk(1, depend_in(a)))
        assert an.last_writer(a) is w
