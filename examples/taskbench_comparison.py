"""Compare the four distributed runtimes on Task Bench (mini Fig. 6).

Runs a 16-point x 16-step Task Bench graph with 100 ms tasks at CCR 1.0
on an 8-node simulated cluster under all four runtimes — the full OMPC
stack, a Charm++-like message-driven runtime, a StarPU-like dataflow
runtime, and the hand-written bulk-synchronous MPI baseline — and
prints a paper-style table.

Run:  python examples/taskbench_comparison.py
"""

from repro.bench.report import format_table
from repro.cluster import ClusterSpec
from repro.runtimes import all_runtimes
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.util.units import Gbps

NODES = 8


def main() -> None:
    rows = []
    for pattern in Pattern.paper_patterns():
        spec = TaskBenchSpec.with_ccr(
            width=16,
            steps=16,
            pattern=pattern,
            kernel=KernelSpec.from_duration(0.100),
            ccr=1.0,
            bandwidth=Gbps(100.0),
        )
        times = {}
        for runtime in all_runtimes():
            result = runtime.run(spec, ClusterSpec(num_nodes=NODES))
            times[runtime.name] = result.makespan
        rows.append(
            [
                pattern.value,
                times["MPI"],
                times["StarPU"],
                times["OMPC"],
                times["Charm++"],
                times["Charm++"] / times["OMPC"],
            ]
        )
    print(
        format_table(
            ["pattern", "MPI (s)", "StarPU (s)", "OMPC (s)", "Charm++ (s)",
             "OMPC speedup vs Charm++"],
            rows,
            title=f"Task Bench on {NODES} simulated nodes "
                  f"(16x16 graph, 100 ms tasks, CCR 1.0)",
        )
    )
    print(
        "\nExpected shape (paper §6.2): MPI and StarPU lead, OMPC beats\n"
        "Charm++ on the communicating patterns, all tie on trivial."
    )


if __name__ == "__main__":
    main()
