"""Simulated MPI: ranks, communicators, tag matching, collectives.

This layer gives the OMPC runtime (and the comparator runtimes) the
communication substrate the paper builds on: MPICH with message matching
on ``(communicator, source, tag)`` and multiple Virtual Communication
Interfaces (§4.2, §6.1).  One MPI rank runs per cluster node; rank ids
equal node ids.
"""

from repro.mpi.comm import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    MpiWorld,
    Rank,
    TransportConfig,
)
from repro.mpi.datatypes import Message
from repro.mpi.errors import MpiError
from repro.mpi.request import Request
from repro.mpi.vci import CommunicatorPool

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "CommunicatorPool",
    "Message",
    "MpiError",
    "MpiWorld",
    "Rank",
    "Request",
    "TransportConfig",
]
