"""METG: Minimum Effective Task Granularity (Task Bench [31]).

Task Bench's headline metric: the smallest task duration at which a
system still achieves at least 50% efficiency.  Smaller METG means the
runtime tolerates finer-grained parallelism.  The OMPC paper's Fig. 7a
is a cousin of this analysis (overhead fraction vs task size); METG
condenses it to one number per (runtime, pattern, nodes).

Efficiency here is measured against the dependence-limited ideal: a
``width × steps`` grid whose chains are spread over the workers cannot
finish faster than ``steps × duration`` (plus nothing), so

    efficiency(d) = steps * d / makespan(d)

METG(50%) is found by bisection on the task duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.machine import ClusterSpec
from repro.taskbench.graph import TaskBenchSpec
from repro.taskbench.kernel import KernelSpec
from repro.taskbench.patterns import Pattern

if TYPE_CHECKING:  # avoid the runtimes<->taskbench import cycle
    from repro.runtimes.base import TaskBenchRuntime


@dataclass(frozen=True)
class MetgResult:
    """Outcome of one METG search."""

    runtime: str
    pattern: Pattern
    nodes: int
    metg_seconds: float
    target_efficiency: float
    evaluations: int


def efficiency(
    runtime: "TaskBenchRuntime",
    pattern: Pattern,
    nodes: int,
    duration: float,
    width: int,
    steps: int,
    ccr: float,
    bandwidth: float,
) -> float:
    """Dependence-limited efficiency at one task duration."""
    if duration <= 0:
        raise ValueError("duration must be > 0")
    spec = TaskBenchSpec.with_ccr(
        width, steps, pattern, KernelSpec.from_duration(duration), ccr, bandwidth
    )
    result = runtime.run(spec, ClusterSpec(num_nodes=nodes))
    ideal = steps * duration
    return min(1.0, ideal / result.makespan) if result.makespan > 0 else 1.0


def find_metg(
    runtime: "TaskBenchRuntime",
    pattern: Pattern,
    nodes: int,
    width: int | None = None,
    steps: int = 8,
    ccr: float = 4.0,
    bandwidth: float = 12.5e9,
    target: float = 0.5,
    lo: float = 1e-5,
    hi: float = 10.0,
    tolerance: float = 0.1,
) -> MetgResult:
    """Bisect for the smallest duration with efficiency >= ``target``.

    ``tolerance`` is relative (0.1 = the bracket shrinks to within 10%).
    If even ``hi`` misses the target the search raises — the
    configuration has a structural (not granularity) bottleneck.
    """
    if not 0 < target <= 1:
        raise ValueError("target must be in (0, 1]")
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    width = width if width is not None else 2 * nodes

    evaluations = 0

    def eff(d: float) -> float:
        nonlocal evaluations
        evaluations += 1
        return efficiency(runtime, pattern, nodes, d, width, steps, ccr, bandwidth)

    if eff(hi) < target:
        raise ValueError(
            f"{runtime.name} never reaches {target:.0%} efficiency on "
            f"{pattern.value} at {nodes} nodes, even with {hi}s tasks"
        )
    if eff(lo) >= target:
        return MetgResult(runtime.name, pattern, nodes, lo, target, evaluations)

    while hi / lo > 1 + tolerance:
        mid = (lo * hi) ** 0.5  # geometric midpoint: durations span decades
        if eff(mid) >= target:
            hi = mid
        else:
            lo = mid
    return MetgResult(runtime.name, pattern, nodes, hi, target, evaluations)
