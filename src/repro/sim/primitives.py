"""Composite waiting primitives: timeouts and AND/OR conditions."""

from __future__ import annotations

from typing import Any

from repro.sim.core import Event, Simulator


def Timeout(sim: Simulator, delay: float, value: Any = None) -> Event:
    """Functional alias for :meth:`Simulator.timeout`."""
    return sim.timeout(delay, value)


class Condition(Event):
    """An event that fires when a predicate over child events is met.

    The condition's value is a dict mapping each *triggered* child event
    to its value, in trigger order.  If any child fails before the
    condition is met, the condition fails with the child's exception.
    """

    __slots__ = ("_events", "_need", "_count", "_results")

    def __init__(self, sim: Simulator, events: list[Event], need: int, name: str = ""):
        super().__init__(sim, name or f"condition({need}/{len(events)})")
        if need < 0 or need > len(events):
            raise ValueError(f"need={need} out of range for {len(events)} events")
        self._events = list(events)
        self._need = need
        self._count = 0
        self._results: dict[Event, Any] = {}
        if need == 0:
            self.succeed(self._results)
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._results[ev] = ev.value
        self._count += 1
        if self._count >= self._need:
            self.succeed(dict(self._results))


def AllOf(sim: Simulator, events: list[Event]) -> Condition:
    """Fires when *all* of ``events`` have fired."""
    return Condition(sim, events, need=len(events), name="all_of")


def AnyOf(sim: Simulator, events: list[Event]) -> Condition:
    """Fires when *any one* of ``events`` has fired."""
    return Condition(sim, events, need=min(1, len(events)), name="any_of")
