"""Job descriptions and per-job lifecycle state.

A :class:`JobSpec` is the immutable request a tenant submits: which
program to run (as a zero-argument factory, so every attempt gets a
fresh task graph), how many nodes it needs, who is asking, and how it
should be treated.  The :class:`Job` wraps one spec with the mutable
scheduling record — queue/run timestamps, the physical partition it
ran on, attempt counts — from which all the standard batch-scheduling
metrics (wait, turnaround, slowdown, bounded slowdown) derive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.config import OMPCConfig
from repro.core.faults import NodeFailure


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"      # submitted (or requeued), waiting for nodes
    RUNNING = "running"      # holds a partition, runtime in flight
    COMPLETED = "completed"  # finished successfully
    FAILED = "failed"        # gave up (unrecoverable, or out of attempts)
    SHED = "shed"            # rejected at admission (throttle/queue bound)
    DEAD_LETTERED = "dead_lettered"  # quarantined after repeated trouble


#: Terminal states — a job in one of these never changes again.
TERMINAL_STATES = frozenset({
    JobState.COMPLETED, JobState.FAILED,
    JobState.SHED, JobState.DEAD_LETTERED,
})


@dataclass(frozen=True)
class JobSpec:
    """One tenant's request to run an OMPC application.

    ``program`` is a factory, not a program: requeued attempts and
    deterministic replays both need to rebuild the task graph from
    scratch (buffers carry run-local payloads).

    ``est_runtime`` is the user's runtime estimate, the quantity EASY
    backfill reasons with; 0 means "unknown", which disables holes that
    rely on this job finishing in time.

    ``failures`` (times relative to the job's own startup) and
    ``fault_tolerant`` select the fault-tolerant runtime — a partition
    of at least 3 nodes — so a partition losing a node resumes through
    the existing checkpoint/failover machinery instead of dying.
    """

    name: str
    program: Callable[[], Any]
    nodes: int
    tenant: str = "default"
    priority: int = 0
    est_runtime: float = 0.0
    config: OMPCConfig | None = None
    fault_tolerant: bool = False
    failures: tuple[NodeFailure, ...] = ()
    max_attempts: int = 2
    #: A preemptible job may be evicted mid-run by the elastic manager
    #: to make room for a higher-priority job; it is requeued (not
    #: charged an attempt) and restarted from its program factory on
    #: fresh nodes.
    preemptible: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if not callable(self.program):
            raise TypeError("program must be a zero-argument callable")
        floor = 3 if (self.fault_tolerant or self.failures) else 2
        if self.nodes < floor:
            raise ValueError(
                f"job {self.name!r} needs >= {floor} nodes "
                f"(head + worker{'s' if floor > 2 else ''}"
                f"{', fault tolerance needs two workers' if floor > 2 else ''}"
                f"), got {self.nodes}"
            )
        if self.est_runtime < 0:
            raise ValueError("est_runtime must be >= 0 (0 = unknown)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        object.__setattr__(self, "failures", tuple(self.failures))

    @property
    def needs_fault_tolerance(self) -> bool:
        return self.fault_tolerant or bool(self.failures)


class Job:
    """One submitted job: spec + scheduling record + outcome."""

    def __init__(self, job_id: int, spec: JobSpec, submit_time: float):
        self.job_id = job_id
        self.spec = spec
        self.state = JobState.PENDING
        #: When the job entered the queue (arrival time).
        self.submit_time = submit_time
        #: When the job last started running (None while queued).
        self.start_time: float | None = None
        self.finish_time: float | None = None
        #: Physical node ids of the partition of the current/last run.
        self.partition: tuple[int, ...] = ()
        self.attempts = 0
        self.requeues = 0
        #: How many times this job was preempted for a higher-priority
        #: job (each preemption requeues without charging an attempt).
        self.preemptions = 0
        #: True when the *current/last* dispatch jumped the queue.
        self.backfilled = False
        #: Injected failures still pending for the next attempt (fired
        #: ones are stripped when a crashed attempt is requeued).
        self.pending_failures: tuple[NodeFailure, ...] = spec.failures
        #: The runtime's result object on success (OMPCRunResult or
        #: FTRunResult), or None.
        self.result: Any = None
        self.error: str | None = None

    # -- derived metrics ---------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def wait_time(self) -> float | None:
        """Submission → first node allocation (requeue waits included:
        the clock runs from the original submission)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> float | None:
        """Duration of the final (successful or fatal) run."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def turnaround(self) -> float | None:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def slowdown(self) -> float | None:
        """Turnaround over run time (1.0 = ran the instant it arrived)."""
        run = self.run_time
        if run is None or run <= 0 or self.turnaround is None:
            return None
        return self.turnaround / run

    def bounded_slowdown(self, tau: float = 1e-3) -> float | None:
        """Slowdown with short jobs clamped to ``tau`` seconds, so a
        trivial job's wait does not dominate the mean (the standard
        bounded-slowdown metric of the backfill literature)."""
        if self.turnaround is None or self.run_time is None:
            return None
        return max(1.0, self.turnaround / max(self.run_time, tau))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Job #{self.job_id} {self.spec.name!r} {self.state.value} "
            f"nodes={self.spec.nodes} tenant={self.spec.tenant}>"
        )
