"""Unit tests for the observability metrics primitives."""

import pytest

from repro.obs.metrics import Counter, Gauge, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("bytes")
        assert c.value == 0.0
        c.inc()
        c.inc(41.0)
        assert c.value == 42.0


class TestGauge:
    def test_value_before_any_sample_is_zero(self):
        g = Gauge("q")
        assert g.value == 0.0
        assert g.maximum() == 0.0

    def test_set_and_add(self):
        g = Gauge("q")
        g.set(1.0, 3.0)
        g.add(2.0, -1.0)
        assert g.value == 2.0
        assert g.maximum() == 3.0
        assert g.samples == [(1.0, 3.0), (2.0, 2.0)]

    def test_time_average_is_exact_step_integral(self):
        g = Gauge("q")
        g.set(1.0, 2.0)  # 0 on [0,1), 2 on [1,3), 4 on [3,4)
        g.set(3.0, 4.0)
        assert g.time_average(0.0, 4.0) == pytest.approx(
            (0 * 1 + 2 * 2 + 4 * 1) / 4.0
        )

    def test_time_average_clips_to_window(self):
        g = Gauge("q")
        g.set(0.0, 10.0)
        g.set(2.0, 0.0)
        # Window [1, 3]: value 10 on [1,2), 0 on [2,3).
        assert g.time_average(1.0, 3.0) == pytest.approx(5.0)

    def test_time_average_window_before_first_sample(self):
        g = Gauge("q")
        g.set(5.0, 7.0)
        assert g.time_average(0.0, 5.0) == 0.0

    def test_empty_window_is_zero(self):
        g = Gauge("q")
        g.set(0.0, 1.0)
        assert g.time_average(2.0, 2.0) == 0.0
        assert g.busy_fraction(2.0, 2.0) == 0.0

    def test_busy_fraction_counts_above_threshold_time(self):
        g = Gauge("link")
        g.add(1.0, 1.0)
        g.add(2.0, -1.0)  # busy exactly on [1, 2)
        assert g.busy_fraction(0.0, 4.0) == pytest.approx(0.25)

    def test_busy_fraction_threshold(self):
        g = Gauge("depth")
        g.set(0.0, 1.0)
        g.set(1.0, 3.0)
        g.set(2.0, 0.0)
        assert g.busy_fraction(0.0, 4.0, threshold=1.0) == pytest.approx(0.25)

    def test_coincident_samples_last_wins(self):
        g = Gauge("q")
        g.set(1.0, 5.0)
        g.set(1.0, 2.0)
        assert g.value == 2.0
        assert g.time_average(0.0, 2.0) == pytest.approx(1.0)


class TestMetricsRegistry:
    def test_counter_and_gauge_are_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g", node=2) is reg.gauge("g")
        assert reg.gauge("g").node == 2
