"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import DeadlockError, Event, Interrupt, Simulator
from repro.sim.errors import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_initial_state(self, sim):
        ev = sim.event("x")
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.value == 42
        assert ev.ok

    def test_fail_carries_exception(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        assert ev.triggered
        assert not ev.ok
        assert isinstance(ev.value, RuntimeError)

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError())

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]


class TestTimeAdvance:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(5.0)
        assert sim.run() == 5.0

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_same_time_fifo_order(self, sim):
        order = []
        for i in range(5):
            ev = sim.timeout(1.0)
            ev.add_callback(lambda e, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_time_stops_early(self, sim):
        fired = []
        sim.timeout(10.0).add_callback(lambda e: fired.append(1))
        assert sim.run(until=5.0) == 5.0
        assert fired == []
        sim.run()
        assert fired == [1]

    def test_run_until_past_raises(self, sim):
        sim.timeout(3.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_run_until_advances_clock_when_heap_drains_early(self, sim):
        # Regression: the last event at t=3 used to leave now() at 3
        # even though the caller asked to run until t=10.
        sim.timeout(3.0)
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_run_until_on_empty_heap_advances_clock(self, sim):
        assert sim.run(until=7.0) == 7.0
        assert sim.now == 7.0

    def test_run_until_repeated_horizons_accumulate(self, sim):
        sim.timeout(1.0)
        assert sim.run(until=4.0) == 4.0
        assert sim.run(until=6.0) == 6.0
        assert sim.now == 6.0


class TestProcess:
    def test_process_returns_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(proc())
        assert sim.run(until=p) == "done"
        assert sim.now == 1.0

    def test_sequential_waits_accumulate_time(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.5)
            return sim.now

        p = sim.process(proc())
        assert sim.run(until=p) == 3.5

    def test_process_receives_event_value(self, sim):
        ev = sim.event()

        def trigger():
            yield sim.timeout(2.0)
            ev.succeed("hello")

        def waiter():
            value = yield ev
            return value

        sim.process(trigger())
        p = sim.process(waiter())
        assert sim.run(until=p) == "hello"

    def test_failed_event_raises_in_process(self, sim):
        ev = sim.event()

        def trigger():
            yield sim.timeout(1.0)
            ev.fail(ValueError("nope"))

        def waiter():
            try:
                yield ev
            except ValueError as exc:
                return f"caught {exc}"

        sim.process(trigger())
        p = sim.process(waiter())
        assert sim.run(until=p) == "caught nope"

    def test_unhandled_process_exception_crashes_run(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise RuntimeError("unhandled")

        sim.process(proc())
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_waited_process_exception_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("child died")

        def parent():
            try:
                yield sim.process(child())
            except RuntimeError:
                return "observed"

        p = sim.process(parent())
        assert sim.run(until=p) == "observed"

    def test_yield_non_event_is_error(self, sim):
        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimulationError, match="must yield Events"):
            sim.run()

    def test_process_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_waiting_on_process_result(self, sim):
        def child():
            yield sim.timeout(3.0)
            return 99

        def parent():
            value = yield sim.process(child())
            return value + 1

        p = sim.process(parent())
        assert sim.run(until=p) == 100

    def test_many_processes_interleave_deterministically(self, sim):
        log = []

        def worker(wid, delay):
            yield sim.timeout(delay)
            log.append((sim.now, wid))
            yield sim.timeout(delay)
            log.append((sim.now, wid))

        for wid, delay in enumerate([3.0, 1.0, 2.0]):
            sim.process(worker(wid, delay))
        sim.run()
        # At t=2.0 worker 2's first timeout (scheduled at t=0) precedes
        # worker 1's second (scheduled at t=1): earlier insertion wins.
        assert log == [(1.0, 1), (2.0, 2), (2.0, 1), (3.0, 0), (4.0, 2), (6.0, 0)]


class TestInterrupt:
    def test_interrupt_raises_inside_process(self, sim):
        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                return f"interrupted: {intr.cause}"

        p = sim.process(victim())

        def killer():
            yield sim.timeout(1.0)
            p.interrupt("node failure")

        sim.process(killer())
        assert sim.run(until=p) == "interrupted: node failure"
        assert sim.now == 1.0

    def test_interrupt_finished_process_rejected(self, sim):
        def quick():
            yield sim.timeout(0.5)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_uncaught_interrupt_kills_process(self, sim):
        def victim():
            yield sim.timeout(100.0)

        p = sim.process(victim())

        def killer():
            yield sim.timeout(1.0)
            p.interrupt("bye")

        sim.process(killer())
        with pytest.raises(Interrupt):
            sim.run()
        assert p.triggered and not p.ok


class TestDeadlockDetection:
    def test_waiting_on_never_triggered_event_deadlocks(self, sim):
        ev = sim.event()

        def stuck():
            yield ev

        p = sim.process(stuck(), name="stuck-proc")
        with pytest.raises(DeadlockError, match="stuck-proc"):
            sim.run(until=p)

    def test_check_deadlock_flag(self, sim):
        def stuck():
            yield sim.event()

        sim.process(stuck())
        with pytest.raises(DeadlockError):
            sim.run(check_deadlock=True)

    def test_clean_completion_no_deadlock(self, sim):
        def fine():
            yield sim.timeout(1.0)

        sim.process(fine())
        assert sim.run(check_deadlock=True) == 1.0
