"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al. [34]).

Standard two-phase HEFT with an insertion-based processor selection,
run over the *compute* tasks (targets); classical and data-movement
tasks are placed by the §4.4 adaptation rules afterwards.

Cost model
----------
* ``w(t, n) = t.cost / speed(n)`` — execution time of task ``t`` on
  node ``n``; the ranking phase uses the mean over worker nodes.
* ``c(u, v) = latency + bytes(u→v) / bandwidth`` when ``u`` and ``v``
  run on different nodes, else 0.  ``bytes(u→v)`` is the total size of
  buffers written by ``u`` and read by ``v``.
* Tasks whose input buffers originate on the host (entered via
  ``target enter data``) additionally see a host-staging term: the
  transfer host → candidate-node, available from time 0.

Complexity is ``O(e × p)`` (§4.4): each edge is examined once per
candidate node during processor selection.
"""

from __future__ import annotations

import bisect
from collections import defaultdict

from repro.cluster.machine import Cluster
from repro.core.datamanager import HOST
from repro.core.scheduler.base import Schedule, Scheduler
from repro.omp.task import Task, TaskKind
from repro.omp.taskgraph import TaskGraph

_INF = float("inf")


def shared_bytes(producer: Task, consumer: Task) -> float:
    """Bytes flowing along the dependence edge ``producer → consumer``."""
    produced = {b.buffer_id: b.nbytes for b in producer.writes}
    return sum(nbytes for bid, nbytes in produced.items()
               if any(b.buffer_id == bid for b in consumer.reads))


class _SlotTimeline:
    """Busy intervals of one execution slot, insertion-based EST."""

    def __init__(self):
        self._busy: list[tuple[float, float]] = []

    def earliest_start(self, ready: float, duration: float) -> float:
        """Earliest start ≥ ready such that [start, start+duration) is free."""
        start = ready
        for begin, end in self._busy:
            if start + duration <= begin:
                break
            if end > start:
                start = end
        return start

    def insert(self, start: float, end: float) -> None:
        bisect.insort(self._busy, (start, end))


class _NodeTimeline:
    """A node's execution capacity: one slot per core.

    Classic HEFT treats each processor as serial; an OMPC "device" is a
    whole node whose cores run many target tasks concurrently, so the
    schedule models ``cores`` parallel slots.  Slots are created lazily:
    a new slot is used whenever the existing ones cannot start the task
    at its ready time and capacity remains.
    """

    def __init__(self, cores: int):
        self._cores = max(1, cores)
        self._slots: list[_SlotTimeline] = [_SlotTimeline()]

    def earliest_start(self, ready: float, duration: float) -> float:
        best = None
        for s in self._slots:
            est = s.earliest_start(ready, duration)
            if est <= ready:
                return est  # no slot can beat the ready time
            if best is None or est < best:
                best = est
        if len(self._slots) < self._cores:
            return ready  # a fresh core can take it immediately
        return best

    def insert(self, start: float, end: float) -> None:
        for slot in self._slots:
            if slot.earliest_start(start, end - start) == start:
                slot.insert(start, end)
                return
        if len(self._slots) < self._cores:
            fresh = _SlotTimeline()
            fresh.insert(start, end)
            self._slots.append(fresh)
            return
        raise AssertionError("insert() must follow earliest_start()")


class HeftScheduler(Scheduler):
    """The OMPC production scheduler.

    ``exec_slots_per_node`` is the number of target regions one worker
    executes concurrently — bounded by the event-handler pool of the
    runtime (§4.2), not by raw core count.  The scheduler must model
    the capacity of the machine it schedules for, or it collapses
    communication-free chains (e.g. Task Bench's tree) onto one node
    whose handlers then serialize them.
    """

    def __init__(
        self,
        exec_slots_per_node: int = 4,
        affinity_stickiness: float = 1.0,
        replica_aware: bool = False,
    ):
        if exec_slots_per_node < 1:
            raise ValueError("exec_slots_per_node must be >= 1")
        if affinity_stickiness < 0:
            raise ValueError("affinity_stickiness must be >= 0")
        self.exec_slots_per_node = exec_slots_per_node
        #: Under the tiered data plane, a read-only entered buffer that
        #: one task already pulled to a node stays resident there as a
        #: clean replica — a later reader scheduled on the same node
        #: pays nothing to stage it.  With ``replica_aware`` the ready
        #: time models that: a node already assigned a reader of a
        #: read-only staged buffer sees that buffer's staging cost drop
        #: to zero, so hot replicas attract their consumers.  Off by
        #: default — it changes placement, hence event digests.
        self.replica_aware = replica_aware
        #: How much EFT slack (in units of the task's input-communication
        #: cost) the scheduler accepts to keep a task on its affinity's
        #: home node.  EFT prices each edge in isolation, so it sees
        #: migration as free whenever inputs are remote either way — but
        #: at runtime migration multiplies coherency traffic (the write
        #: invalidations and re-fetches of §4.3) and NIC contention.
        #: Stickiness 1.0 holds a chain in place unless moving wins more
        #: than one full input-transfer time.
        self.affinity_stickiness = affinity_stickiness

    def schedule(self, graph: TaskGraph, cluster: Cluster) -> Schedule:
        workers = self.worker_nodes(cluster)
        if not workers:
            # Degenerate single-node cluster: everything on the head.
            assignment = {t.task_id: HOST for t in graph.tasks()}
            return Schedule(assignment)

        net = cluster.network.spec
        speeds = {n: cluster.node(n).spec.speed for n in workers}
        mean_speed = sum(speeds.values()) / len(speeds)

        targets = [t for t in graph.tasks() if t.kind == TaskKind.TARGET]
        target_ids = {t.task_id for t in targets}

        # -- derive compute-graph neighbor sets with edge bytes ------------
        succ_bytes: dict[int, list[tuple[Task, float]]] = defaultdict(list)
        pred_bytes: dict[int, list[tuple[Task, float]]] = defaultdict(list)
        host_staging: dict[int, float] = defaultdict(float)
        # Replica awareness needs the staged bytes *itemized* per buffer
        # (not the aggregate): only a buffer no target ever writes stays
        # a clean replica wherever it lands, so only those are reusable.
        staged_items: dict[int, list[tuple[int, float]]] = defaultdict(list)
        written_ids = (
            {b.buffer_id for t in targets for b in t.writes}
            if self.replica_aware else set()
        )

        def stage(task: Task, pred: Task) -> None:
            host_staging[task.task_id] += shared_bytes(pred, task)
            if self.replica_aware:
                produced = {b.buffer_id: b.nbytes for b in pred.writes}
                for b in task.reads:
                    nbytes = produced.get(b.buffer_id)
                    if nbytes is not None:
                        staged_items[task.task_id].append(
                            (b.buffer_id, nbytes)
                        )

        for task in targets:
            for pred in graph.predecessors(task):
                if pred.task_id in target_ids:
                    nbytes = shared_bytes(pred, task)
                    pred_bytes[task.task_id].append((pred, nbytes))
                    succ_bytes[pred.task_id].append((task, nbytes))
                elif pred.kind == TaskKind.TARGET_ENTER_DATA:
                    # Input staged from the host at program start.
                    stage(task, pred)
                elif pred.kind == TaskKind.CLASSICAL:
                    # Produced on the head node; treat like host staging.
                    stage(task, pred)

        # -- upward ranks ---------------------------------------------------
        def mean_comm(nbytes: float) -> float:
            return net.latency + nbytes / net.bandwidth

        rank_u: dict[int, float] = {}
        for task in reversed(graph.topological_order()):
            if task.task_id not in target_ids:
                continue
            w_bar = task.cost / mean_speed
            best_succ = max(
                (
                    mean_comm(nbytes) + rank_u[succ.task_id]
                    for succ, nbytes in succ_bytes[task.task_id]
                ),
                default=0.0,
            )
            rank_u[task.task_id] = w_bar + best_succ

        # Descending rank_u is a valid topological order of the compute
        # graph; ties broken by task id for determinism.
        order = sorted(targets, key=lambda t: (-rank_u[t.task_id], t.task_id))

        # -- processor selection (insertion-based EFT) -----------------------
        timelines = {
            n: _NodeTimeline(
                min(cluster.node(n).spec.cores, self.exec_slots_per_node)
            )
            for n in workers
        }
        assignment: dict[int, int] = {}
        planned: dict[int, tuple[float, float]] = {}
        # Locality tie-break state: where each task affinity last ran.
        # Symmetric graphs (e.g. a stencil interior point choosing between
        # its two neighbours' nodes) produce exact EFT ties; classic HEFT
        # then drifts tasks across nodes every step, multiplying traffic.
        # Programs may tag tasks with an ``affinity`` meta key (the Task
        # Bench port uses the grid point); tied candidates prefer the
        # affinity's previous node, keeping logical chains in place.
        # Integer affinities are pre-seeded block-contiguously — the
        # index-based initial distribution every data-aware task runtime
        # (StarPU data homes, Legion mappers) starts from — so adjacent
        # chains land on the same node and only block boundaries talk.
        affinity_home: dict[object, int] = {}
        load: dict[int, int] = {n: 0 for n in workers}
        int_affinities = sorted(
            {
                task.meta["affinity"]
                for task in targets
                if isinstance(task.meta.get("affinity"), int)
            }
        )
        for i, aff in enumerate(int_affinities):
            affinity_home[aff] = workers[i * len(workers) // len(int_affinities)]

        # Nodes already assigned a reader of each read-only staged
        # buffer — i.e. nodes that will hold a clean device replica by
        # the time a later reader could run there (replica_aware only).
        replica_nodes: dict[int, set[int]] = defaultdict(set)

        def note_replicas(task: Task, node: int) -> None:
            if not self.replica_aware:
                return
            for bid, _nbytes in staged_items.get(task.task_id, ()):
                if bid not in written_ids:
                    replica_nodes[bid].add(node)

        for task in order:
            # .get() keeps the defaultdicts clean: indexing would
            # materialize an empty entry per (task, node) probe.
            staged = host_staging.get(task.task_id, 0.0)
            preds = pred_bytes.get(task.task_id, [])
            affinity = task.meta.get("affinity")
            home = affinity_home.get(affinity) if affinity is not None else None
            # A task with no predecessors and no host staging moves no
            # input at all: its stickiness slack must be 0, not the
            # phantom ``mean_comm(0) == latency`` of an empty transfer.
            input_comm = max(
                (mean_comm(nbytes) for _p, nbytes in preds),
                default=mean_comm(staged) if staged else 0.0,
            )
            stick = (
                self.affinity_stickiness * input_comm
                if home is not None else 0.0
            )

            # EST lower bound per node: the timeline can only delay a
            # task past its ready time, so ``ready + duration`` bounds
            # the node's EFT from below.  Scanning nodes in lower-bound
            # order lets the selection stop as soon as no remaining node
            # can still make the tie set — the timeline walk (the O(e*p)
            # inner loop's expensive part) then runs for a handful of
            # contenders instead of every node.  The surviving candidate
            # set, and therefore the choice, is exactly that of the
            # full scan.
            ready0 = mean_comm(staged) if staged else 0.0
            items = (
                staged_items.get(task.task_id)
                if self.replica_aware and staged else None
            )

            def staged_ready(node: int) -> float:
                # Staging cost with this node's resident replicas free.
                if items is None:
                    return ready0
                nb = sum(
                    nbytes for bid, nbytes in items
                    if node not in replica_nodes.get(bid, ())
                )
                return mean_comm(nb) if nb else 0.0

            bounds: list[tuple[float, float, float, int]] = []
            lb_min = _INF
            home_bound: tuple[float, float, float, int] | None = None
            for node in workers:
                ready = staged_ready(node)
                for pred, nbytes in preds:
                    pred_finish = planned[pred.task_id][1]
                    if assignment[pred.task_id] != node:
                        pred_finish += net.latency + nbytes / net.bandwidth
                    if pred_finish > ready:
                        ready = pred_finish
                duration = task.cost / speeds[node]
                lb = ready + duration
                bounds.append((lb, ready, duration, node))
                if lb < lb_min:
                    lb_min = lb
                if node == home:
                    home_bound = bounds[-1]

            # Home fast path: ``best_eft >= lb_min`` and the tolerance
            # grows with ``best_eft``, so a home EFT inside the window
            # anchored at ``lb_min`` is inside the real window too — and
            # the tie key prefers home over every other member, making
            # the rest of the scan irrelevant.  (On affinity-seeded
            # graphs this resolves almost every task with one timeline
            # walk.)
            if home_bound is not None:
                _lb, ready, duration, _node = home_bound
                est = timelines[home].earliest_start(ready, duration)
                home_eft = est + duration
                if home_eft <= lb_min + lb_min * 1e-9 + 1e-15 + stick:
                    load[home] += 1
                    affinity_home[affinity] = home
                    assignment[task.task_id] = home
                    planned[task.task_id] = (est, home_eft)
                    timelines[home].insert(est, home_eft)
                    note_replicas(task, home)
                    continue

            bounds.sort(key=lambda b: b[0])

            # Phase 1 — find the global best EFT, evaluating timelines
            # only while a node's lower bound can still beat the running
            # best (``best_eft`` only decreases and the tolerance grows
            # with it, so a bound that misses the running window also
            # misses the final one).  The home node is always evaluated:
            # the tie key prefers it over every other member, so when it
            # lands in the tie window no other member matters.
            evaluated: dict[int, tuple[float, float, int]] = {}
            best_eft = _INF
            home_cand: tuple[float, float, int] | None = None
            for lb, ready, duration, node in bounds:
                if lb > best_eft + best_eft * 1e-9 + 1e-15:
                    break
                est = timelines[node].earliest_start(ready, duration)
                eft = est + duration
                evaluated[node] = (eft, est, node)
                if eft < best_eft:
                    best_eft = eft
            tol = best_eft * 1e-9 + 1e-15 + stick
            if home is not None:
                home_cand = evaluated.get(home)
                if home_cand is None:
                    for lb, ready, duration, node in bounds:
                        if node == home:
                            est = timelines[home].earliest_start(
                                ready, duration
                            )
                            home_cand = (est + duration, est, home)
                            evaluated[home] = home_cand
                            break

            if home_cand is not None and home_cand[0] <= best_eft + tol:
                eft, est, node = home_cand
            else:
                # Phase 2 — the home is absent or out of the window, so
                # the full tie set decides.  Evaluate the nodes whose
                # lower bound still fits (with the stickiness slack,
                # which widens the window even among non-home nodes).
                for lb, ready, duration, node in bounds:
                    if lb > best_eft + tol:
                        break
                    if node not in evaluated:
                        est = timelines[node].earliest_start(ready, duration)
                        evaluated[node] = (est + duration, est, node)
                tied = [
                    c for c in evaluated.values() if c[0] <= best_eft + tol
                ]
                # Tie order: affinity home first, then least-loaded node
                # (so independent tasks fan out instead of packing into
                # the lowest node's free slots), then EFT/EST/node id.
                eft, est, node = min(
                    tied,
                    key=lambda c: (c[2] != home, load[c[2]], c[0], c[1], c[2]),
                )
            load[node] += 1
            if affinity is not None:
                affinity_home[affinity] = node
            assignment[task.task_id] = node
            planned[task.task_id] = (est, eft)
            timelines[node].insert(est, eft)
            note_replicas(task, node)

        self.pin_special_tasks(graph, assignment)
        return Schedule(assignment, planned)
