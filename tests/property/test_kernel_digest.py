"""Fast-path kernel equivalence: bit-identical event streams.

The simulator's optimized structures (the two-lane event queue and the
slotted MPI match tables, gated by ``Simulator(fastpath=...)``) promise
an *exactly* identical execution to the reference heap/linear-scan
kernel — same events, processed at the same times, with the same
priorities, in the same total order, producing the same results.

These tests enforce that promise with an event-order digest: a SHA-256
over every processed event's ``(time, priority, name)``, captured via
``sim._event_tap``.  Any reordering — even of two same-time events —
changes the digest.  Scenarios cover the Fig. 5 workload shape, several
Task Bench dependence patterns, observer/analysis hooks on and off, and
the multi-tenant overload day.
"""

from __future__ import annotations

import hashlib
import struct
from contextlib import contextmanager

import pytest

from repro.cluster.machine import ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.runtime import OMPCRuntime
from repro.sim import core as simcore
from repro.sim.core import Simulator, set_fastpath_default
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.taskbench.bench import build_omp_program

BANDWIDTH = 100e9 / 8.0


@contextmanager
def _tap_all_sims(digest: "hashlib._Hash"):
    """Attach an event-order tap to every Simulator built in the block.

    Runtimes construct their simulator internally, so the tap is
    installed by wrapping ``Simulator.__init__`` for the duration.
    """
    orig = Simulator.__init__

    def tapped(self, *args, **kwargs):
        orig(self, *args, **kwargs)

        def tap(t, priority, event, _d=digest, _p=struct.pack):
            _d.update(_p("<dI", t, priority))
            _d.update(event.name.encode())

        self._event_tap = tap

    Simulator.__init__ = tapped
    try:
        yield
    finally:
        Simulator.__init__ = orig


def _run_traced(scenario, fastpath: bool):
    """Run ``scenario()`` under the given kernel; return (digest, result)."""
    digest = hashlib.sha256()
    old = set_fastpath_default(fastpath)
    try:
        with _tap_all_sims(digest):
            result = scenario()
    finally:
        set_fastpath_default(old)
    return digest.hexdigest(), result


def _assert_equivalent(scenario):
    fast_digest, fast_result = _run_traced(scenario, fastpath=True)
    ref_digest, ref_result = _run_traced(scenario, fastpath=False)
    assert fast_digest == ref_digest, (
        "optimized kernel reordered the event stream"
    )
    assert fast_result == ref_result


def _fig5_scenario(pattern: Pattern, nodes: int, steps: int,
                   trace: bool = False, analysis: bool = False):
    spec = TaskBenchSpec.with_ccr(
        2 * nodes, steps, pattern, KernelSpec.paper_50ms(), 1.0, BANDWIDTH
    )

    def scenario():
        runtime = OMPCRuntime(
            ClusterSpec(num_nodes=nodes),
            OMPCConfig(trace=trace, analysis=analysis),
        )
        res = runtime.run(build_omp_program(spec))
        cluster = runtime.last_cluster
        net = cluster.network
        return (
            res.makespan,
            net.total_bytes,
            net.total_messages,
            cluster.sim._seq,
        )

    return scenario


@pytest.mark.parametrize("pattern", [
    Pattern.STENCIL_1D,
    Pattern.FFT,
    Pattern.TREE,
    Pattern.ALL_TO_ALL,
    Pattern.SPREAD,
])
def test_taskbench_patterns_bit_identical(pattern):
    _assert_equivalent(_fig5_scenario(pattern, nodes=4, steps=4))


def test_fig5_shape_bit_identical_with_hooks_off_and_on():
    # Hooks off: the no-op fast path (zero observer/analysis calls).
    _assert_equivalent(_fig5_scenario(Pattern.STENCIL_1D, 4, 4))
    # Hooks on: every span/counter emitted, same event stream.
    _assert_equivalent(
        _fig5_scenario(Pattern.STENCIL_1D, 4, 4, trace=True, analysis=True)
    )


def test_overload_day_bit_identical():
    from repro.bench.jobscmd import overload_counts, run_overload

    def scenario():
        manager, report = run_overload("backfill", load=1.0, quick=True)
        counts = overload_counts(manager, report)
        return counts, report.horizon, manager.sim._seq

    _assert_equivalent(scenario)


def test_fastpath_default_is_on_and_restorable():
    # The environment default is "on" unless REPRO_SIM_FASTPATH=0; the
    # setter returns the previous value so tests can scope overrides.
    old = set_fastpath_default(False)
    try:
        assert Simulator()._fastpath is False
        assert simcore._FASTPATH_DEFAULT is False
    finally:
        set_fastpath_default(old)
    assert Simulator(fastpath=True)._fastpath is True
    assert Simulator(fastpath=False)._fastpath is False
