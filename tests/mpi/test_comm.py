"""Tests for point-to-point messaging and matching semantics."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NetworkSpec
from repro.mpi import ANY_SOURCE, ANY_TAG, MpiError, MpiWorld
from repro.mpi.request import Request


def make_world(n=2, **net_kwargs):
    net = NetworkSpec(**net_kwargs) if net_kwargs else NetworkSpec()
    cluster = Cluster(ClusterSpec(num_nodes=n, network=net))
    return cluster, MpiWorld(cluster, overhead=0.0)


class TestBasicMessaging:
    def test_send_recv_roundtrip(self):
        cluster, mpi = make_world(2)
        sim = cluster.sim

        def sender():
            r = mpi.world.rank(0)
            yield from r.send(1, {"x": 42}, nbytes=100, tag=7)

        def receiver():
            r = mpi.world.rank(1)
            msg = yield from r.recv(src=0, tag=7)
            return msg.payload

        sim.process(sender())
        p = sim.process(receiver())
        assert sim.run(until=p) == {"x": 42}

    def test_transfer_charges_network_time(self):
        cluster, mpi = make_world(2, latency=1e-6, bandwidth=1e9)
        sim = cluster.sim

        def sender():
            yield from mpi.world.rank(0).send(1, None, nbytes=1e6)

        def receiver():
            yield from mpi.world.rank(1).recv(src=0)
            return sim.now

        sim.process(sender())
        p = sim.process(receiver())
        assert sim.run(until=p) == pytest.approx(1e-3 + 1e-6)

    def test_software_overhead_charged(self):
        cluster = Cluster(
            ClusterSpec(num_nodes=2, network=NetworkSpec(latency=0.0, bandwidth=1e12))
        )
        mpi = MpiWorld(cluster, overhead=1e-5)
        sim = cluster.sim

        def sender():
            yield from mpi.world.rank(0).send(1, None, nbytes=0)

        def receiver():
            yield from mpi.world.rank(1).recv(src=0)
            return sim.now

        sim.process(sender())
        p = sim.process(receiver())
        assert sim.run(until=p) == pytest.approx(1e-5)

    def test_recv_blocks_until_message(self):
        cluster, mpi = make_world(2)
        sim = cluster.sim

        def sender():
            yield sim.timeout(5.0)
            yield from mpi.world.rank(0).send(1, "late")

        def receiver():
            yield from mpi.world.rank(1).recv(src=0)
            return sim.now

        sim.process(sender())
        p = sim.process(receiver())
        assert sim.run(until=p) >= 5.0


class TestMatching:
    def test_tag_matching(self):
        cluster, mpi = make_world(2)
        sim = cluster.sim

        def sender():
            r = mpi.world.rank(0)
            yield from r.send(1, "tagged-3", tag=3)
            yield from r.send(1, "tagged-9", tag=9)

        def receiver():
            r = mpi.world.rank(1)
            first = yield from r.recv(src=0, tag=9)
            second = yield from r.recv(src=0, tag=3)
            return first.payload, second.payload

        sim.process(sender())
        p = sim.process(receiver())
        assert sim.run(until=p) == ("tagged-9", "tagged-3")

    def test_source_matching(self):
        cluster, mpi = make_world(3)
        sim = cluster.sim

        def sender(src, payload, delay):
            def proc():
                yield sim.timeout(delay)
                yield from mpi.world.rank(src).send(2, payload)
            return proc

        def receiver():
            r = mpi.world.rank(2)
            from_1 = yield from r.recv(src=1)
            from_0 = yield from r.recv(src=0)
            return from_1.payload, from_0.payload

        sim.process(sender(0, "zero", 0.0)())
        sim.process(sender(1, "one", 1.0)())
        p = sim.process(receiver())
        assert sim.run(until=p) == ("one", "zero")

    def test_wildcards(self):
        cluster, mpi = make_world(3)
        sim = cluster.sim

        def sender():
            yield from mpi.world.rank(1).send(0, "anything", tag=55)

        def receiver():
            r = mpi.world.rank(0)
            msg = yield from r.recv(src=ANY_SOURCE, tag=ANY_TAG)
            return msg.src, msg.tag, msg.payload

        sim.process(sender())
        p = sim.process(receiver())
        assert sim.run(until=p) == (1, 55, "anything")

    def test_non_overtaking_same_src_tag(self):
        # Messages with equal (src, tag) must be received in send order.
        cluster, mpi = make_world(2, latency=0.0, bandwidth=1e12)
        sim = cluster.sim

        def sender():
            r = mpi.world.rank(0)
            for i in range(10):
                yield from r.send(1, i, tag=1)

        def receiver():
            r = mpi.world.rank(1)
            out = []
            for _ in range(10):
                msg = yield from r.recv(src=0, tag=1)
                out.append(msg.payload)
            return out

        sim.process(sender())
        p = sim.process(receiver())
        assert sim.run(until=p) == list(range(10))

    def test_communicator_isolation(self):
        cluster, mpi = make_world(2)
        sim = cluster.sim
        other = mpi.world.dup()

        def sender():
            yield from other.rank(0).send(1, "on-dup", tag=1)
            yield from mpi.world.rank(0).send(1, "on-world", tag=1)

        def receiver():
            # Same (src, tag) but different communicators must not match
            # each other even though the dup message arrives first.
            world_msg = yield from mpi.world.rank(1).recv(src=0, tag=1)
            dup_msg = yield from other.rank(1).recv(src=0, tag=1)
            return world_msg.payload, dup_msg.payload

        sim.process(sender())
        p = sim.process(receiver())
        assert sim.run(until=p) == ("on-world", "on-dup")


class TestNonblocking:
    def test_isend_irecv(self):
        cluster, mpi = make_world(2)
        sim = cluster.sim

        def receiver():
            r = mpi.world.rank(1)
            req = r.irecv(src=0)
            assert not req.test()
            msg = yield from req.wait()
            assert req.test()
            return msg.payload

        def sender():
            yield sim.timeout(1.0)
            req = mpi.world.rank(0).isend(1, "async")
            yield from req.wait()

        p = sim.process(receiver())
        sim.process(sender())
        assert sim.run(until=p) == "async"

    def test_wait_all(self):
        cluster, mpi = make_world(4, latency=0.0, bandwidth=1e12)
        sim = cluster.sim

        def receiver():
            r = mpi.world.rank(0)
            reqs = [r.irecv(src=s) for s in (1, 2, 3)]
            msgs = yield from Request.wait_all(reqs)
            return sorted(m.payload for m in msgs)

        def sender(src):
            def proc():
                yield from mpi.world.rank(src).send(0, src * 10)
            return proc

        p = sim.process(receiver())
        for s in (1, 2, 3):
            sim.process(sender(s)())
        assert sim.run(until=p) == [10, 20, 30]


class TestValidation:
    def test_bad_rank(self):
        _, mpi = make_world(2)
        with pytest.raises(MpiError):
            mpi.world.rank(5)

    def test_bad_send_tag(self):
        cluster, mpi = make_world(2)
        with pytest.raises(MpiError):
            mpi.world.rank(0).isend(1, None, tag=-3)

    def test_negative_overhead_rejected(self):
        cluster = Cluster(ClusterSpec(num_nodes=1))
        with pytest.raises(ValueError):
            MpiWorld(cluster, overhead=-1.0)

    def test_rank_on_other_communicator(self):
        _, mpi = make_world(2)
        r = mpi.world.rank(0)
        dup = mpi.world.dup()
        assert r.on(dup).rank_id == 0
        assert r.on(dup).comm is dup
