"""A sharded control plane surviving the death of a shard head.

One head node is a dispatch bottleneck *and* a single point of control.
With ``OMPCConfig.head_shards=K`` the task graph is partitioned across
K manager nodes by consistent hashing — each shard runs its own
scheduler and ``head_threads`` pool, resolving cross-shard dependencies
with a lease/notify protocol instead of a shared structure.  SWIM
gossip membership (``OMPCConfig.gossip=True``) watches all managers
with O(1) probes per node per round, and each shard streams its commit
log to standbys, so a dying shard head is detected, confirmed, and
failed over without touching the other shards.

This example runs a 512-wide Task Bench stencil on 256 nodes under 4
shards, shoots shard 2's manager (node 2) mid-run, and prints the
gossip membership timeline plus the per-shard utilization report.

Run:  python examples/sharded_control.py
"""

from repro.cluster import ClusterSpec
from repro.core import OMPCConfig
from repro.core.shard import ShardedRuntime
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.taskbench.bench import build_omp_program

NODES = 256
SHARDS = 4
CRASH_AT = 0.02   # seconds after runtime startup: mid-stencil
CRASH_NODE = 2    # shard 2's manager

BANDWIDTH = 100e9 / 8.0
#: Compute-leaning cells (CCR 10: compute 10x the comm) keep the fluid
#: network lightly loaded so the run stays fast at 256 nodes; the
#: control plane — the thing this example demonstrates — is exercised
#: identically.
CCR = 10.0
KERNEL_SECONDS = 5e-3
STEPS = 6
#: 2 ms probe rounds: confirmation lands well inside the ~70 ms run
#: while keeping gossip traffic (256 probers) off the critical path.
GOSSIP_INTERVAL = 2e-3


def build_workload():
    spec = TaskBenchSpec.with_ccr(
        2 * NODES, STEPS, Pattern.STENCIL_1D,
        KernelSpec.from_duration(KERNEL_SECONDS), CCR, BANDWIDTH,
    )
    return build_omp_program(spec)


def main() -> None:
    cfg = OMPCConfig(head_shards=SHARDS, gossip=True, head_standbys=1,
                     gossip_interval=GOSSIP_INTERVAL)
    runtime = ShardedRuntime(
        ClusterSpec(num_nodes=NODES), cfg,
        inject_failures=((CRASH_AT, CRASH_NODE),),
    )
    main_proc, finish = runtime.launch(build_workload())
    main_proc.sim.run(until=main_proc)
    result = finish()

    print(f"--- {NODES} nodes, {SHARDS} shards, manager {CRASH_NODE} "
          f"shot at t={CRASH_AT * 1e3:.0f} ms ---")
    print(f"makespan        : {result.makespan * 1e3:.1f} ms")
    print(f"gossip rounds   : {result.gossip_rounds}")
    for dead, by, at in result.detections:
        print(f"confirmed dead  : node {dead} by node {by} "
              f"at {at * 1e3:.2f} ms")

    print("\nmembership timeline (first suspicion -> converged death):")
    shown = 0
    for at, node, status, target in result.membership_timeline:
        if target != CRASH_NODE:
            continue
        print(f"  {at * 1e3:8.2f} ms  node {node:3d} marks "
              f"node {target} {status}")
        shown += 1
        if shown >= 12:
            remaining = sum(
                1 for _t, _n, _s, tgt in result.membership_timeline
                if tgt == CRASH_NODE
            ) - shown
            if remaining > 0:
                print(f"  ... and {remaining} more view updates")
            break

    print()
    print(result.utilization_report())

    failed_over = [s for s in result.shard_stats.values()
                   if s.failovers > 0]
    for stats in failed_over:
        print(f"\nshard {stats.shard} failed over to node "
              f"{stats.manager}: {stats.dispatched} tasks dispatched "
              f"({stats.dedup_hits} deduplicated re-dispatches)")


if __name__ == "__main__":
    main()
