"""Tests for the experiment launcher."""

import pytest

from repro.bench import ExperimentConfig, Launcher


class TestLauncher:
    def test_runs_grid_and_records(self):
        cfg = ExperimentConfig(
            name="tiny",
            runtimes=("mpi", "starpu"),
            patterns=("stencil_1d",),
            nodes=(2, 4),
            width=4,
            steps=3,
            iterations=100_000,  # 0.5 ms tasks
            ccrs=(1.0,),
        )
        launcher = Launcher()
        records = launcher.run(cfg)
        assert len(records) == 4  # 2 runtimes x 2 node counts
        assert {r.runtime for r in records} == {"MPI", "StarPU"}
        assert all(r.summary.mean > 0 for r in records)
        assert all(r.width == 4 for r in records)

    def test_width_2n(self):
        cfg = ExperimentConfig(
            name="w2n", runtimes=("mpi",), patterns=("trivial",),
            nodes=(3,), width="2n", steps=2, iterations=1000,
        )
        records = Launcher().run(cfg)
        assert records[0].width == 6

    def test_unknown_runtime_rejected(self):
        cfg = ExperimentConfig(name="x", runtimes=("not-a-runtime",))
        with pytest.raises(ValueError, match="unknown runtime"):
            Launcher().run(cfg)

    def test_select_filters(self):
        cfg = ExperimentConfig(
            name="sel", runtimes=("mpi",), patterns=("trivial", "no_comm"),
            nodes=(2,), width=4, steps=2, iterations=1000,
        )
        launcher = Launcher()
        launcher.run(cfg)
        assert len(launcher.select(pattern="trivial")) == 1
        assert len(launcher.select(runtime="MPI")) == 2
        assert launcher.select(pattern="fft") == []

    def test_repetitions_counted(self):
        cfg = ExperimentConfig(
            name="rep", runtimes=("mpi",), patterns=("trivial",),
            nodes=(2,), width=2, steps=2, iterations=1000, repetitions=3,
        )
        records = Launcher().run(cfg)
        assert records[0].summary.count == 3
        # Deterministic simulation: zero dispersion across repetitions.
        assert records[0].summary.std == 0.0

    def test_progress_callback(self):
        seen = []
        cfg = ExperimentConfig(
            name="prog", runtimes=("mpi",), patterns=("trivial",),
            nodes=(2,), width=2, steps=2, iterations=1000,
        )
        Launcher(progress=seen.append).run(cfg)
        assert len(seen) == 1 and "prog" in seen[0]


class _FlakyRuntime:
    """Runs like MPI on every cell except nodes==4, which explodes."""

    name = "Flaky"

    def __init__(self):
        from repro.runtimes import MpiSyncRuntime

        self._inner = MpiSyncRuntime()

    def run(self, spec, cluster_spec):
        if cluster_spec.num_nodes == 4:
            raise RuntimeError("cell exploded")
        return self._inner.run(spec, cluster_spec)


class TestLauncherFailureTolerance:
    def _flaky_config(self):
        return ExperimentConfig(
            name="flaky",
            runtimes=("flaky", "mpi"),
            patterns=("trivial",),
            nodes=(2, 4, 8),
            width=4,
            steps=2,
            iterations=1000,
        )

    def test_failed_cell_does_not_abort_sweep(self, monkeypatch):
        from repro.bench.launcher import RUNTIME_FACTORIES

        monkeypatch.setitem(RUNTIME_FACTORIES, "flaky", _FlakyRuntime)
        launcher = Launcher()
        records = launcher.run(self._flaky_config())
        # 6 cells, 1 explosion: 5 records, every healthy cell present —
        # including the mpi sweep scheduled *after* the failing runtime.
        assert len(records) == 5
        assert len(launcher.failures) == 1
        failure = launcher.failures[0]
        assert failure.runtime == "flaky"
        assert failure.nodes == 4
        assert "cell exploded" in failure.error
        assert {r.nodes for r in launcher.select(runtime="Flaky")} == {2, 8}
        assert {r.nodes for r in launcher.select(runtime="MPI")} == {2, 4, 8}

    def test_failure_reported_to_progress(self, monkeypatch):
        from repro.bench.launcher import RUNTIME_FACTORIES

        monkeypatch.setitem(RUNTIME_FACTORIES, "flaky", _FlakyRuntime)
        messages = []
        launcher = Launcher(progress=messages.append)
        launcher.run(self._flaky_config())
        assert any("FAILED" in m and "cell exploded" in m for m in messages)
