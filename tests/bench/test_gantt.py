"""Tests for the Gantt renderer and utilization computation."""

import pytest

from repro.bench.gantt import render_gantt, utilization


class TestRenderGantt:
    def test_basic_layout(self):
        intervals = {0: (0.0, 1.0), 1: (1.0, 2.0)}
        assignment = {0: 1, 1: 2}
        out = render_gantt(intervals, assignment, width=42, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2 tasks" in lines[1]
        assert lines[2].startswith("node   1 |")
        assert lines[3].startswith("node   2 |")
        # Node 1's bar occupies the first half, node 2's the second.
        bar1 = lines[2].split("|")[1]
        bar2 = lines[3].split("|")[1]
        assert bar1[:10].strip() != ""
        assert bar1[30:].strip() == ""
        assert bar2[:10].strip() == ""
        assert bar2[25:35].strip() != ""

    def test_empty(self):
        assert "(no tasks)" in render_gantt({}, {})

    def test_tiny_task_still_visible(self):
        out = render_gantt({0: (0.0, 1e-9), 1: (0.0, 1.0)}, {0: 1, 1: 1})
        bar = out.splitlines()[1]
        assert "1" in out

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_gantt({0: (0, 1)}, {0: 1}, width=5)

    def test_real_run_renders(self):
        from repro.cluster import ClusterSpec
        from repro.core import OMPCRuntime
        from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec, build_omp_program

        spec = TaskBenchSpec(4, 4, Pattern.STENCIL_1D, KernelSpec.from_duration(0.01), 1000.0)
        res = OMPCRuntime(ClusterSpec(num_nodes=3)).run(build_omp_program(spec))
        out = render_gantt(res.task_intervals, res.schedule.assignment)
        assert "16 tasks" in out
        assert out.count("node") >= 1


class TestUtilization:
    def test_full_busy(self):
        u = utilization({0: (0.0, 1.0)}, {0: 1}, makespan=1.0)
        assert u == {1: pytest.approx(1.0)}

    def test_overlaps_merged(self):
        u = utilization(
            {0: (0.0, 1.0), 1: (0.5, 1.5)}, {0: 1, 1: 1}, makespan=2.0
        )
        assert u[1] == pytest.approx(0.75)

    def test_gaps_counted_idle(self):
        u = utilization(
            {0: (0.0, 1.0), 1: (3.0, 4.0)}, {0: 1, 1: 1}, makespan=4.0
        )
        assert u[1] == pytest.approx(0.5)

    def test_invalid_makespan(self):
        with pytest.raises(ValueError):
            utilization({0: (0, 1)}, {0: 1}, makespan=0.0)
