"""Figure 7(b): Awave weak scaling on Sigsbee- and Marmousi-like models.

Setup (§6.2): one shot per worker node, nodes from 1 to 16, speedup
relative to the single-worker run.  Expected shape: both models stay
close to the ideal (linear) speedup because shot tasks are coarse
enough to amortize every runtime overhead.

Weak-scaling speedup here is ``n x T(1) / T(n)``: with one shot per
worker, perfect scaling keeps T(n) = T(1), giving speedup n.
"""

from __future__ import annotations

from figutil import BANDWIDTH  # noqa: F401  (kept for parity with sibling benches)
from repro.apps.awave import marmousi_like, run_awave, sigsbee_like
from repro.bench.report import format_series

WORKER_COUNTS = (1, 2, 4, 8, 16)


def weak_scaling_speedups(model, worker_counts=WORKER_COUNTS) -> list[float]:
    makespans = {
        n: run_awave(model, num_workers=n, compute_images=False).makespan
        for n in worker_counts
    }
    t1 = makespans[worker_counts[0]]
    return [n * t1 / makespans[n] for n in worker_counts]


class TestFig7b:
    def test_bench_sigsbee_weak_scaling(self, benchmark):
        model = sigsbee_like(nx=100, nz=60)

        def sweep():
            return weak_scaling_speedups(model)

        speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
        for n, s in zip(WORKER_COUNTS, speedups):
            assert s > 0.85 * n, (n, s)

    def test_bench_marmousi_weak_scaling(self, benchmark):
        model = marmousi_like(nx=100, nz=60)

        def sweep():
            return weak_scaling_speedups(model)

        speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
        for n, s in zip(WORKER_COUNTS, speedups):
            assert s > 0.85 * n, (n, s)

    def test_bench_real_imaging_small(self, benchmark):
        """End-to-end distributed RTM with actual image computation."""
        import numpy as np

        from repro.apps.awave import RtmConfig

        model = sigsbee_like(nx=60, nz=40)

        def cell():
            return run_awave(
                model,
                num_workers=2,
                config=RtmConfig(nt=150, snapshot_every=5),
            )

        res = benchmark.pedantic(cell, rounds=1, iterations=1)
        assert np.isfinite(res.image).all()
        assert np.abs(res.image).max() > 0


def main() -> None:
    series = {}
    for name, model in (
        ("Sigsbee-like", sigsbee_like(nx=100, nz=60)),
        ("Marmousi-like", marmousi_like(nx=100, nz=60)),
        ("ideal", None),
    ):
        if model is None:
            series[name] = [float(n) for n in WORKER_COUNTS]
        else:
            series[name] = weak_scaling_speedups(model)
    print(
        format_series(
            "nodes",
            WORKER_COUNTS,
            series,
            title="Figure 7(b) — Awave weak-scaling speedup (1 shot/worker)",
            unit="x",
        )
    )


if __name__ == "__main__":
    main()
