"""Tests for fault tolerance: heartbeats, failure injection, recovery."""

import dataclasses

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.datamanager import HOST, DataManager
from repro.core.events import EventSystem
from repro.core.faultmodel import (
    FaultPlan,
    LinkDegradation,
    LinkLoss,
    NodeHang,
    NodeStall,
)
from repro.core.faults import (
    FailureInjector,
    FaultTolerantRuntime,
    HeartbeatRing,
    NodeFailure,
    RecoveryError,
)
from repro.mpi import MpiWorld
from repro.omp import OmpProgram
from repro.omp.task import Buffer, Task, TaskKind, depend_in, depend_inout, depend_out

FAST = OMPCConfig(
    startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
    event_origin_overhead=0.0, event_handler_overhead=0.0,
    task_creation_overhead=0.0, schedule_unit_cost=0.0,
)


def target(task_id, *deps):
    return Task(task_id=task_id, kind=TaskKind.TARGET, deps=tuple(deps))


class TestNodeFailureValidation:
    def test_head_failure_now_allowed(self):
        # Head failover (repro.core.headlog) made node 0 a legal target.
        assert NodeFailure(time=1.0, node=0).node == 0
        with pytest.raises(ValueError):
            NodeFailure(time=-1.0, node=1)
        with pytest.raises(ValueError):
            NodeFailure(time=1.0, node=-1)


class TestDataManagerFailure:
    def test_replicated_buffer_survives(self):
        dm = DataManager()
        buf = Buffer(100)
        reader = target(0, depend_in(buf))
        for m in dm.plan_for_task(reader, 1)[0]:
            dm.commit_move(m)
        dm.commit_task_done(reader, 1)
        lost = dm.on_node_failure(1)
        assert lost == []
        assert dm.locations(buf) == {HOST}

    def test_sole_copy_reported_lost(self):
        dm = DataManager()
        buf = Buffer(100)
        writer = target(0, depend_inout(buf))
        for m in dm.plan_for_task(writer, 2)[0]:
            dm.commit_move(m)
        dm.commit_task_done(writer, 2)
        assert dm.locations(buf) == {2}
        lost = dm.on_node_failure(2)
        assert lost == [buf]
        assert dm.locations(buf) == set()

    def test_latest_redirected_to_survivor(self):
        dm = DataManager()
        buf = Buffer(100)
        dm.commit_enter_data(buf, 3)
        assert dm.latest(buf) == 3
        lost = dm.on_node_failure(3)
        assert lost == []
        assert dm.latest(buf) == HOST

    def test_home_failure_rejected_until_rehomed(self):
        dm = DataManager()
        with pytest.raises(ValueError):
            dm.on_node_failure(HOST)
        # After a failover rehomes the directory, the old head's copies
        # can be dropped like any worker's.
        dm.rehome(2)
        assert dm.on_node_failure(HOST) == []
        with pytest.raises(ValueError):
            dm.on_node_failure(2)


class TestEventSystemFailure:
    def make(self, n=4):
        cluster = Cluster(ClusterSpec(num_nodes=n))
        events = EventSystem(cluster, MpiWorld(cluster), FAST)
        events.start()
        return cluster, events

    def test_fail_node_wipes_memory(self):
        cluster, events = self.make()

        def main():
            yield from events.submit(2, 7, "payload", 100)
            events.fail_node(2)

        p = cluster.sim.process(main())
        cluster.sim.run(until=p)
        assert events.node_failed(2)
        assert 7 not in events.memories[2]

    def test_failure_event_fires(self):
        cluster, events = self.make()
        fired = []
        events.failure_event(1).add_callback(lambda ev: fired.append(ev.value))

        def main():
            yield cluster.sim.timeout(1.0)
            events.fail_node(1)

        cluster.sim.process(main())
        cluster.sim.run()
        assert fired == [1]

    def test_fail_node_idempotent(self):
        cluster, events = self.make()

        def main():
            yield cluster.sim.timeout(0.1)
            events.fail_node(1)
            events.fail_node(1)

        cluster.sim.process(main())
        cluster.sim.run()
        assert cluster.trace.counters["ompc.node_failures"] == 1

    def test_head_failure_allowed(self):
        cluster, events = self.make()
        events.fail_node(0)  # head failover made this legal
        assert events.node_failed(0)

    def test_shutdown_skips_failed_nodes(self):
        cluster, events = self.make()

        def main():
            yield cluster.sim.timeout(0.1)
            events.fail_node(2)
            yield from events.shutdown()

        p = cluster.sim.process(main())
        cluster.sim.run(until=p)  # must terminate without deadlock


class TestFailureInjector:
    def make(self, n=4):
        cluster = Cluster(ClusterSpec(num_nodes=n))
        events = EventSystem(cluster, MpiWorld(cluster), FAST)
        events.start()
        return cluster, FailureInjector(events)

    def test_duplicate_node_rejected(self):
        _, injector = self.make()
        injector.arm([NodeFailure(time=0.1, node=1)])
        with pytest.raises(ValueError, match="already has an armed failure"):
            injector.arm([NodeFailure(time=0.5, node=1)])

    def test_overlap_within_one_batch_rejected(self):
        _, injector = self.make()
        with pytest.raises(ValueError, match="already has an armed failure"):
            injector.arm([
                NodeFailure(time=0.1, node=2),
                NodeFailure(time=0.2, node=2),
            ])

    def test_distinct_nodes_accepted(self):
        cluster, injector = self.make()
        injector.arm([
            NodeFailure(time=0.1, node=1),
            NodeFailure(time=0.2, node=2),
        ])
        cluster.sim.run()
        assert [f.node for f in injector.injected] == [1, 2]


class TestHeartbeatRing:
    def make_ring(self, n=4, **kwargs):
        cluster = Cluster(ClusterSpec(num_nodes=n))
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, FAST)
        events.start()
        ring = HeartbeatRing(cluster, mpi, events, **kwargs)
        return cluster, events, ring

    def test_no_false_positives_without_failure(self):
        cluster, events, ring = self.make_ring()
        ring.start()

        def stopper():
            yield cluster.sim.timeout(0.05)
            ring.stop()

        cluster.sim.process(stopper())
        cluster.sim.run(until=0.2)
        assert ring.detections == []

    def test_failure_detected_by_successor(self):
        cluster, events, ring = self.make_ring()
        ring.start()

        def fail_later():
            yield cluster.sim.timeout(0.02)
            events.fail_node(2)
            yield cluster.sim.timeout(0.05)
            ring.stop()

        cluster.sim.process(fail_later())
        cluster.sim.run(until=0.2)
        assert len(ring.detections) == 1
        dead, by, at = ring.detections[0]
        assert dead == 2
        assert by == 3  # the ring successor monitors node 2
        # Detection latency is bounded by the heartbeat timeout window.
        assert 0.02 < at < 0.02 + 3 * ring.timeout

    def test_on_detect_callback(self):
        cluster, events, ring = self.make_ring()
        seen = []
        ring.on_detect = lambda dead, by: seen.append((dead, by))
        ring.start()

        def fail_later():
            yield cluster.sim.timeout(0.01)
            events.fail_node(1)
            yield cluster.sim.timeout(0.05)
            ring.stop()

        cluster.sim.process(fail_later())
        cluster.sim.run(until=0.2)
        assert seen == [(1, 2)]

    def test_invalid_intervals(self):
        cluster = Cluster(ClusterSpec(num_nodes=3))
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, FAST)
        with pytest.raises(ValueError):
            HeartbeatRing(cluster, mpi, events, interval=0.0)
        with pytest.raises(ValueError):
            HeartbeatRing(cluster, mpi, events, interval=1.0, timeout=0.5)


def shots_program(num_shots=4, cost=0.05):
    """Awave-shaped program: read-only model, independent shot outputs."""
    prog = OmpProgram("shots")
    model = np.arange(16.0)
    model_buf = prog.buffer(model.nbytes, data=model, name="model")
    prog.target_enter_data(model_buf)
    outputs = []
    out_bufs = []
    for i in range(num_shots):
        out = np.zeros(16)
        outputs.append(out)
        buf = prog.buffer(out.nbytes, data=out, name=f"out{i}")
        out_bufs.append(buf)
        prog.target(
            fn=lambda m, o: np.copyto(o, m * 2.0),
            depend=[depend_in(model_buf), depend_out(buf)],
            cost=cost,
            name=f"shot{i}",
        )
    prog.target_exit_data(*out_bufs)
    return prog, model, outputs


class TestFaultTolerantRuntime:
    def test_no_failures_matches_plain_semantics(self):
        prog, model, outputs = shots_program()
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST)
        res = rt.run(prog)
        assert res.failures == []
        assert res.reexecuted_tasks == 0
        for out in outputs:
            np.testing.assert_allclose(out, model * 2.0)

    def test_failure_during_execution_recovers(self):
        prog, model, outputs = shots_program(cost=0.1)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST)
        # Kill a worker while shots are in flight (startup is 0, tasks
        # start ~immediately and run 100 ms).
        res = rt.run(prog, failures=[NodeFailure(time=0.05, node=1)])
        assert res.failures == [1]
        # Every shot still produced the right answer.
        for out in outputs:
            np.testing.assert_allclose(out, model * 2.0)
        # At least one task needed a second attempt.
        assert max(res.task_attempts.values()) >= 2

    def test_failure_detected_by_heartbeat(self):
        prog, _, _ = shots_program(cost=0.1)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST)
        res = rt.run(prog, failures=[NodeFailure(time=0.03, node=2)])
        assert any(dead == 2 for dead, _by, _t in res.detections)

    def test_two_failures_survived(self):
        prog, model, outputs = shots_program(num_shots=6, cost=0.08)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=6), FAST)
        res = rt.run(
            prog,
            failures=[
                NodeFailure(time=0.02, node=1),
                NodeFailure(time=0.05, node=3),
            ],
        )
        assert sorted(res.failures) == [1, 3]
        for out in outputs:
            np.testing.assert_allclose(out, model * 2.0)

    def test_lost_sole_copy_triggers_lineage_reexecution(self):
        # Producer writes on a worker; the consumer is gated behind a
        # long host task; the producer's node dies in between, so the
        # consumer must re-run the (idempotent) producer elsewhere.
        prog = OmpProgram()
        a = prog.buffer(64, data=np.zeros(8), name="a")
        b = prog.buffer(64, data=np.zeros(8), name="b")
        gate = prog.buffer(8, name="gate")

        def produce(x):
            x[:] = 1.0  # overwrites fully: safe to re-execute

        producer = prog.target(
            fn=produce, depend=[depend_out(a)], cost=0.02, name="producer",
        )
        prog.task(depend=[depend_out(gate)], cost=0.2, name="delay")
        prog.target(
            fn=lambda x, _g, y: np.copyto(y, x * 10.0),
            depend=[depend_in(a), depend_in(gate), depend_out(b)],
            cost=0.02, name="consumer",
        )
        prog.target_exit_data(a, b)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST)
        res = rt.run(prog)
        producer_node = res.schedule.assignment[producer.task_id]

        # Re-run with a failure of the producer's node after it finished
        # but before the consumer starts.
        prog2 = OmpProgram()
        a2 = prog2.buffer(64, data=np.zeros(8), name="a")
        b2 = prog2.buffer(64, data=np.zeros(8), name="b")
        gate2 = prog2.buffer(8, name="gate")
        prog2.target(fn=produce, depend=[depend_out(a2)], cost=0.02, name="producer")
        prog2.task(depend=[depend_out(gate2)], cost=0.2, name="delay")
        prog2.target(
            fn=lambda x, _g, y: np.copyto(y, x * 10.0),
            depend=[depend_in(a2), depend_in(gate2), depend_out(b2)],
            cost=0.02, name="consumer",
        )
        prog2.target_exit_data(a2, b2)
        res2 = FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST).run(
            prog2, failures=[NodeFailure(time=0.1, node=producer_node)]
        )
        assert res2.reexecuted_tasks >= 1
        np.testing.assert_allclose(b2.data, np.full(8, 10.0))

    def test_inplace_producer_loss_is_unrecoverable(self):
        # An INOUT producer rebuilds its output from its own previous
        # value; losing the sole copy is unrecoverable and must raise.
        prog = OmpProgram()
        a = prog.buffer(64, data=np.zeros(8), name="a")
        gate = prog.buffer(8, name="gate")
        prog.target(
            fn=lambda x: np.add(x, 1.0, out=x),
            depend=[depend_inout(a)], cost=0.02, name="producer",
        )
        prog.task(depend=[depend_out(gate)], cost=0.2, name="delay")
        prog.target(
            depend=[depend_in(a), depend_in(gate)], cost=0.02, name="consumer",
        )
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST)
        res = rt.run(prog)
        node = next(
            res.schedule.assignment[t.task_id]
            for t in prog.graph.tasks()
            if t.name == "producer"
        )
        prog2 = OmpProgram()
        a2 = prog2.buffer(64, data=np.zeros(8), name="a")
        gate2 = prog2.buffer(8, name="gate")
        prog2.target(
            fn=lambda x: np.add(x, 1.0, out=x),
            depend=[depend_inout(a2)], cost=0.02, name="producer",
        )
        prog2.task(depend=[depend_out(gate2)], cost=0.2, name="delay")
        prog2.target(
            depend=[depend_in(a2), depend_in(gate2)], cost=0.02, name="consumer",
        )
        with pytest.raises(RecoveryError, match="in-place producer"):
            FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST).run(
                prog2, failures=[NodeFailure(time=0.1, node=node)]
            )

    def test_makespan_overhead_of_recovery(self):
        prog, _, _ = shots_program(num_shots=4, cost=0.1)
        clean = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST).run(prog)
        prog2, _, _ = shots_program(num_shots=4, cost=0.1)
        failed = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST).run(
            prog2, failures=[NodeFailure(time=0.05, node=1)]
        )
        # Recovery re-runs work, so it costs time — but bounded (not a
        # full serial re-execution of everything).
        assert failed.makespan > clean.makespan
        assert failed.makespan < clean.makespan + 0.3

    def test_requires_two_workers(self):
        with pytest.raises(ValueError):
            FaultTolerantRuntime(ClusterSpec(num_nodes=2))

    def test_failures_accepts_any_sequence(self):
        prog, model, outputs = shots_program(cost=0.1)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST)
        res = rt.run(
            prog, failures=(f for f in [NodeFailure(time=0.05, node=1)])
        )
        assert res.failures == [1]
        for out in outputs:
            np.testing.assert_allclose(out, model * 2.0)

    def test_all_workers_dead_raises(self):
        prog, _, _ = shots_program(num_shots=4, cost=0.2)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=3), FAST)
        with pytest.raises(RecoveryError, match="all worker nodes"):
            rt.run(prog, failures=[
                NodeFailure(time=0.02, node=1),
                NodeFailure(time=0.03, node=2),
            ])


class TestHeartbeatLossHardening:
    def make_lossy_ring(self, plan, n=4, **kwargs):
        cluster = Cluster(ClusterSpec(num_nodes=n))
        plan.install(cluster)
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, FAST)
        events.start()
        ring = HeartbeatRing(cluster, mpi, events, **kwargs)
        return cluster, mpi, events, ring

    def test_lost_heartbeats_cleared_by_ping_not_declared(self):
        # Every heartbeat on the 2 -> 3 ring link is eaten, so node 3
        # repeatedly suspects node 2 — but node 2 answers the head's
        # pings, so it is never declared dead.
        plan = FaultPlan(losses=[LinkLoss(probability=1.0, src=2, dst=3)])
        cluster, mpi, events, ring = self.make_lossy_ring(plan)
        ring.start()

        def stopper():
            yield cluster.sim.timeout(0.08)
            ring.stop()

        cluster.sim.process(stopper())
        cluster.sim.run(until=0.2)
        assert ring.detections == []
        assert ring.false_positives == 0
        assert ring.suspicions_cleared >= 1

    def test_missed_windows_do_not_leak_receives(self):
        # Each missed window must withdraw its unmatched irecv; before
        # the fix every miss left a stale getter on node 3's queue.
        plan = FaultPlan(losses=[LinkLoss(probability=1.0, src=2, dst=3)])
        cluster, mpi, events, ring = self.make_lossy_ring(plan)
        ring.start()

        def stopper():
            yield cluster.sim.timeout(0.08)
            ring.stop()

        cluster.sim.process(stopper())
        cluster.sim.run(until=0.2)
        store = mpi._queue(3, ring.comm.comm_id)
        assert len(store._getters) <= 1  # only the live window's receive

    def test_real_failure_still_detected_under_loss(self):
        plan = FaultPlan(seed=2, losses=[LinkLoss(probability=0.2)])
        cluster, mpi, events, ring = self.make_lossy_ring(plan)
        ring.start()

        def fail_later():
            yield cluster.sim.timeout(0.02)
            events.fail_node(2)
            yield cluster.sim.timeout(0.1)
            ring.stop()

        cluster.sim.process(fail_later())
        cluster.sim.run(until=0.3)
        assert any(dead == 2 for dead, _by, _t in ring.detections)
        assert ring.false_positives == 0

    def test_suspect_windows_validation(self):
        cluster = Cluster(ClusterSpec(num_nodes=3))
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, FAST)
        with pytest.raises(ValueError):
            HeartbeatRing(cluster, mpi, events, suspect_windows=0)
        with pytest.raises(ValueError):
            HeartbeatRing(cluster, mpi, events, ping_timeout=0.0)


class TestTransientFaults:
    def run_shots(self, plan=None, config=FAST, failures=(), num_shots=4,
                  cost=0.05, nodes=5):
        prog, model, outputs = shots_program(num_shots, cost)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=nodes), config)
        res = rt.run(prog, failures=failures, fault_plan=plan)
        return res, model, outputs

    def test_lossy_run_bit_identical_to_lossless(self):
        clean, model, clean_out = self.run_shots()
        plan = FaultPlan(seed=11, losses=[LinkLoss(probability=0.05)])
        lossy, _, out = self.run_shots(plan=plan)
        for a, b in zip(clean_out, out):
            assert np.array_equal(a, b)  # bit-identical numerics
            np.testing.assert_allclose(b, model * 2.0)
        assert lossy.makespan >= clean.makespan
        assert lossy.transport["drops"] >= 1
        assert lossy.counters["faults.dropped_messages"] == (
            lossy.transport["drops"]
        )
        assert lossy.failures == []
        assert lossy.false_positive_detections == 0

    def test_same_seed_same_makespan(self):
        a, _, _ = self.run_shots(
            plan=FaultPlan(seed=11, losses=[LinkLoss(probability=0.05)])
        )
        b, _, _ = self.run_shots(
            plan=FaultPlan(seed=11, losses=[LinkLoss(probability=0.05)])
        )
        assert a.makespan == b.makespan
        assert a.transport == b.transport

    def test_degraded_but_alive_node_not_declared_dead(self):
        # Node 2 sits behind a lossy, slow link and even hangs briefly —
        # pure transients, zero failures: nothing may be declared dead.
        plan = FaultPlan(
            seed=3,
            losses=[LinkLoss(probability=0.25, dst=2),
                    LinkLoss(probability=0.25, src=2)],
            degradations=[LinkDegradation(start=0.0, end=1.0,
                                          latency_factor=5.0,
                                          bandwidth_factor=0.5, dst=2)],
            hangs=[NodeHang(node=2, start=0.02, duration=0.0008)],
        )
        res, model, outputs = self.run_shots(plan=plan)
        for out in outputs:
            np.testing.assert_allclose(out, model * 2.0)
        assert res.detections == []
        assert res.failures == []
        assert res.false_positive_detections == 0

    def test_fail_stop_under_loss_detected_and_recovered(self):
        plan = FaultPlan(seed=4, losses=[LinkLoss(probability=0.05)])
        res, model, outputs = self.run_shots(
            plan=plan, cost=0.1,
            failures=[NodeFailure(time=0.03, node=2)],
        )
        for out in outputs:
            np.testing.assert_allclose(out, model * 2.0)
        assert 2 in res.failures
        assert any(dead == 2 for dead, _by, _t in res.detections)
        assert res.false_negative_detections == 0


def inout_chain_program():
    """a is produced in place (INOUT): unrecoverable without checkpoints."""
    prog = OmpProgram()
    a = prog.buffer(64, data=np.zeros(8), name="a")
    gate = prog.buffer(8, name="gate")
    b = prog.buffer(64, data=np.zeros(8), name="b")
    prog.target(
        fn=lambda x: np.add(x, 1.0, out=x),
        depend=[depend_inout(a)], cost=0.02, name="producer",
    )
    prog.task(depend=[depend_out(gate)], cost=0.2, name="delay")
    prog.target(
        fn=lambda x, _g, y: np.copyto(y, x * 10.0),
        depend=[depend_in(a), depend_in(gate), depend_out(b)],
        cost=0.02, name="consumer",
    )
    prog.target_exit_data(a, b)
    return prog, a, b


class TestCheckpointRecovery:
    CKPT = dataclasses.replace(FAST, checkpoint_interval=0.03)

    def producer_node(self, make_prog):
        prog = make_prog()[0]
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST).run(prog)
        return next(
            res.schedule.assignment[t.task_id]
            for t in prog.graph.tasks()
            if t.name == "producer"
        )

    def test_inplace_producer_recovers_with_checkpointing(self):
        node = self.producer_node(inout_chain_program)
        prog, a, b = inout_chain_program()
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=4), self.CKPT).run(
            prog, failures=[NodeFailure(time=0.1, node=node)]
        )
        assert res.checkpoints_taken >= 1
        assert res.checkpoint_restores >= 1
        np.testing.assert_allclose(a.data, np.ones(8))
        np.testing.assert_allclose(b.data, np.full(8, 10.0))

    def test_checkpointing_off_still_raises(self):
        # The seed contract survives: with checkpointing disabled the
        # in-place producer's loss stays unrecoverable.
        node = self.producer_node(inout_chain_program)
        prog, _a, _b = inout_chain_program()
        with pytest.raises(RecoveryError, match="in-place producer"):
            FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST).run(
                prog, failures=[NodeFailure(time=0.1, node=node)]
            )

    def test_stale_checkpoint_replays_producer_on_restored_bytes(self):
        # t1 writes a, the checkpoint snapshots that version, then an
        # INOUT t2 bumps a on the node before it dies: recovery must
        # restore the stale snapshot and re-run t2 on top of it.
        def make_prog():
            prog = OmpProgram()
            a = prog.buffer(64, data=np.zeros(8), name="a")
            gate = prog.buffer(8, name="gate")
            b = prog.buffer(64, data=np.zeros(8), name="b")
            prog.target(
                fn=lambda x: np.copyto(x, 1.0),
                depend=[depend_out(a)], cost=0.02, name="producer",
            )
            prog.target(
                fn=lambda x: np.add(x, 1.0, out=x),
                depend=[depend_inout(a)], cost=0.05, name="bumper",
            )
            prog.task(depend=[depend_out(gate)], cost=0.25, name="delay")
            prog.target(
                fn=lambda x, _g, y: np.copyto(y, x * 10.0),
                depend=[depend_in(a), depend_in(gate), depend_out(b)],
                cost=0.02, name="consumer",
            )
            prog.target_exit_data(a, b)
            return prog, a, b

        prog0 = make_prog()[0]
        res0 = FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST).run(prog0)
        node = next(
            res0.schedule.assignment[t.task_id]
            for t in prog0.graph.tasks()
            if t.name == "bumper"
        )
        prog, a, b = make_prog()
        # Checkpoint fires at t=0.03 (snapshot of a after `producer`,
        # while `bumper` is still running); the node dies at 0.08,
        # before the next checkpoint would capture bumper's version.
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=4), self.CKPT).run(
            prog, failures=[NodeFailure(time=0.08, node=node)]
        )
        assert res.checkpoint_restores >= 1
        assert res.reexecuted_tasks >= 1
        np.testing.assert_allclose(a.data, np.full(8, 2.0))
        np.testing.assert_allclose(b.data, np.full(8, 20.0))

    def test_multi_failure_cascade_with_checkpoints(self):
        prog, model, outputs = shots_program(num_shots=6, cost=0.08)
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=6), self.CKPT).run(
            prog,
            failures=[NodeFailure(time=0.02, node=1),
                      NodeFailure(time=0.05, node=3)],
        )
        assert sorted(res.failures) == [1, 3]
        for out in outputs:
            np.testing.assert_allclose(out, model * 2.0)

    def test_no_checkpoints_taken_when_disabled(self):
        prog, _, _ = shots_program()
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST).run(prog)
        assert res.checkpoints_taken == 0
        assert res.checkpoint_restores == 0


class TestStragglerMitigation:
    SPEC = dataclasses.replace(FAST, straggler_factor=3.0)
    STALL = FaultPlan(
        seed=1, stalls=[NodeStall(node=1, start=0.0, end=10.0, factor=0.05)]
    )

    def test_speculation_rescues_stalled_node(self):
        prog, model, outputs = shots_program(cost=0.05)
        slow = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST).run(
            prog, fault_plan=self.STALL
        )
        prog2, _, outputs2 = shots_program(cost=0.05)
        fast = FaultTolerantRuntime(ClusterSpec(num_nodes=5), self.SPEC).run(
            prog2, fault_plan=FaultPlan(
                seed=1,
                stalls=[NodeStall(node=1, start=0.0, end=10.0, factor=0.05)],
            )
        )
        assert fast.speculative_attempts >= 1
        assert fast.speculation_wins >= 1
        assert fast.makespan < slow.makespan
        for out in outputs2:
            np.testing.assert_allclose(out, model * 2.0)

    def test_disabled_by_default(self):
        prog, _, _ = shots_program(cost=0.05)
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST).run(
            prog, fault_plan=self.STALL
        )
        assert res.speculative_attempts == 0

    def test_inout_tasks_not_eligible(self):
        # The only slow task writes in place; double execution would not
        # be idempotent, so speculation must leave it alone.
        prog = OmpProgram()
        a = prog.buffer(64, data=np.zeros(8), name="a")
        prog.target_enter_data(a)
        prog.target(
            fn=lambda x: np.add(x, 1.0, out=x),
            depend=[depend_inout(a)], cost=0.05, name="bump",
        )
        prog.target_exit_data(a)
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=5), self.SPEC).run(
            prog, fault_plan=self.STALL
        )
        assert res.speculative_attempts == 0
        np.testing.assert_allclose(a.data, np.ones(8))
