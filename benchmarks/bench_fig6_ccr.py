"""Figure 6: execution time across Computation-to-Communication Ratios.

Setup (§6.2): 16 nodes, 16x16 task graph, 100M iterations (500 ms) per
task, CCR in {0.5, 1.0, 2.0}, four patterns, four runtimes.

Expected shapes (paper): OMPC matches or beats Charm++ on tree/
stencil/fft at every CCR (average speedups 1.53x/1.34x/1.41x); Charm++
collapses when communication dominates (CCR 0.5); OMPC's variability
across CCR stays similar to StarPU's and MPI's; MPI/StarPU fastest.
"""

from __future__ import annotations

from figutil import RUNTIME_ORDER, fig6_spec, run_cell
from repro.bench.report import format_series
from repro.bench.stats import geometric_mean
from repro.taskbench import Pattern

NODES = 16
CCRS = (0.5, 1.0, 2.0)


class TestFig6:
    def test_bench_ccr_sweep_stencil(self, benchmark):
        def sweep():
            return {
                ccr: {
                    name: run_cell(name, fig6_spec(Pattern.STENCIL_1D, ccr), NODES)
                    for name in RUNTIME_ORDER
                }
                for ccr in CCRS
            }

        times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        for ccr in CCRS:
            assert times[ccr]["OMPC"] < times[ccr]["Charm++"]
            assert times[ccr]["MPI"] < times[ccr]["OMPC"]
        # Charm++ collapses as communication grows; OMPC degrades
        # gracefully, with variability comparable to MPI's.
        charm_spread = times[0.5]["Charm++"] / times[2.0]["Charm++"]
        ompc_spread = times[0.5]["OMPC"] / times[2.0]["OMPC"]
        assert charm_spread > ompc_spread

    def test_bench_ompc_beats_charm_on_paper_patterns(self, benchmark):
        def sweep():
            speedups = {}
            for pattern in (Pattern.TREE, Pattern.STENCIL_1D, Pattern.FFT):
                ratios = []
                for ccr in CCRS:
                    spec = fig6_spec(pattern, ccr)
                    ratios.append(
                        run_cell("Charm++", spec, NODES)
                        / run_cell("OMPC", spec, NODES)
                    )
                speedups[pattern.value] = geometric_mean(ratios)
            return speedups

        speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # Paper: 1.53x (tree), 1.34x (stencil), 1.41x (fft).  Shape
        # check: all comfortably above 1x, below 4x.
        for pattern, s in speedups.items():
            assert 1.05 < s < 4.0, (pattern, s)

    def test_bench_trivial_pattern_parity(self, benchmark):
        """No communication -> all runtimes converge."""
        spec = fig6_spec(Pattern.TRIVIAL, 1.0)

        def cell():
            return [run_cell(name, spec, NODES) for name in RUNTIME_ORDER]

        times = benchmark.pedantic(cell, rounds=1, iterations=1)
        assert max(times) / min(times) < 1.1


def main() -> None:
    for pattern in Pattern.paper_patterns():
        series = {name: [] for name in RUNTIME_ORDER}
        for ccr in CCRS:
            spec = fig6_spec(pattern, ccr)
            for name in RUNTIME_ORDER:
                series[name].append(run_cell(name, spec, NODES))
        print(
            format_series(
                "ccr",
                CCRS,
                series,
                title=f"Figure 6 — {pattern.value} (16 nodes, 16x16, 500ms)",
            )
        )
        print()


if __name__ == "__main__":
    main()
