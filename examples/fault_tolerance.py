"""Surviving node failures: the §3.1 heartbeat ring in action.

The paper sketches OMPC's fault-tolerance design: every node heartbeats
its ring successor; a missed deadline flags the predecessor dead, and
the runtime restarts the failed tasks.  This example runs an
Awave-style workload (read-only model, independent shot tasks) on 6
workers, kills two of them mid-run, and shows the system detect the
failures, re-dispatch the lost shots, and still produce correct output.

A second scenario turns the fabric hostile instead of killing anyone:
2% of all messages are dropped, one worker sits behind a degraded link,
and a node produces its output *in place* (INOUT) before its node dies —
recoverable only because periodic checkpointing is on.  The reliable
transport retransmits through the loss, and the suspect→confirm
heartbeat protocol keeps the degraded-but-alive worker from being
declared dead (the false-positive counter stays zero).

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.core import (
    FaultPlan,
    FaultTolerantRuntime,
    LinkDegradation,
    LinkLoss,
    NodeFailure,
    OMPCConfig,
)
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_inout, depend_out


def build_workload(num_shots: int = 12):
    prog = OmpProgram("resilient-shots")
    model = np.linspace(1.0, 2.0, 256)
    model_buf = prog.buffer(model.nbytes, data=model, name="model")
    prog.target_enter_data(model_buf)
    outputs, out_bufs = [], []
    for i in range(num_shots):
        out = np.zeros_like(model)
        outputs.append(out)
        buf = prog.buffer(out.nbytes, data=out, name=f"shot{i}")
        out_bufs.append(buf)
        prog.target(
            fn=lambda m, o, k=i: np.copyto(o, np.sqrt(m) * (k + 1)),
            depend=[depend_in(model_buf), depend_out(buf)],
            cost=0.25,  # 250 ms shots: plenty of time to die mid-flight
            name=f"shot{i}",
        )
    prog.target_exit_data(*out_bufs)
    return prog, model, outputs


def build_inplace_workload(num_chains: int = 6):
    """Chains whose values are built up *in place* (INOUT producers)."""
    prog = OmpProgram("inplace-chains")
    arrays, bufs = [], []
    for i in range(num_chains):
        arr = np.zeros(256)
        arrays.append(arr)
        buf = prog.buffer(arr.nbytes, data=arr, name=f"chain{i}")
        bufs.append(buf)
        prog.target_enter_data(buf)
        for step in range(3):
            prog.target(
                fn=lambda x, k=i: np.add(x, k + 1.0, out=x),
                depend=[depend_inout(buf)],
                cost=0.08, name=f"chain{i}.step{step}",
            )
    prog.target_exit_data(*bufs)
    return prog, arrays


def lossy_checkpointed_run() -> None:
    prog, arrays = build_inplace_workload()
    plan = FaultPlan(
        seed=17,
        losses=[LinkLoss(probability=0.02)],
        degradations=[
            LinkDegradation(start=0.0, end=1.0, latency_factor=4.0,
                            bandwidth_factor=0.5, dst=3),
        ],
    )
    runtime = FaultTolerantRuntime(
        ClusterSpec(num_nodes=7),
        OMPCConfig(checkpoint_interval=0.05),
    )
    print("\n--- transient faults: 2% loss, degraded link to node 3, "
          "node 4 dies at t=150ms ---")
    print("in-place (INOUT) chains: checkpoint-free lineage could not "
          "recover these")
    result = runtime.run(
        prog,
        failures=[NodeFailure(time=0.150, node=4)],
        fault_plan=plan,
    )

    print(f"makespan             : {result.makespan * 1e3:.1f} ms")
    print(f"messages dropped     : {result.transport['drops']}, "
          f"retransmissions: {result.transport['retransmissions']}, "
          f"duplicates deduped: {result.transport['duplicates']}")
    print(f"checkpoints taken    : {result.checkpoints_taken}, "
          f"restores: {result.checkpoint_restores}")
    print(f"suspicions cleared   : {result.suspicions_cleared} "
          "(degraded node pinged alive, not declared dead)")
    print(f"false positives      : {result.false_positive_detections}, "
          f"false negatives: {result.false_negative_detections}")
    ok = all(
        np.allclose(arr, 3.0 * (i + 1)) for i, arr in enumerate(arrays)
    )
    print(f"all chain outputs correct: {ok}")
    assert ok
    assert result.false_positive_detections == 0


def main() -> None:
    prog, model, outputs = build_workload()
    runtime = FaultTolerantRuntime(ClusterSpec(num_nodes=7))
    failures = [
        NodeFailure(time=0.100, node=2),
        NodeFailure(time=0.180, node=5),
    ]
    print("running 12 shots on 6 workers; nodes 2 and 5 will crash at "
          "t=100ms and t=180ms...")
    result = runtime.run(prog, failures=failures)

    print(f"\nmakespan           : {result.makespan * 1e3:.1f} ms")
    print(f"failures injected  : nodes {sorted(result.failures)}")
    for dead, by, at in result.detections:
        print(f"heartbeat detection: node {dead} declared dead by node "
              f"{by} at t={at * 1e3:.1f} ms")
    retried = {tid: n for tid, n in result.task_attempts.items() if n > 1}
    print(f"tasks re-dispatched: {len(retried)} "
          f"(attempt counts {sorted(retried.values(), reverse=True)})")

    # Verify every shot's output despite the crashes.
    ok = all(
        np.allclose(out, np.sqrt(model) * (i + 1))
        for i, out in enumerate(outputs)
    )
    print(f"all shot outputs correct: {ok}")
    assert ok

    lossy_checkpointed_run()


if __name__ == "__main__":
    main()
