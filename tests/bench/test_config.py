"""Tests for the YAML-subset parser and experiment configs."""

import pytest

from repro.bench.config import ExperimentConfig, YamlError, parse_yaml


class TestParseYaml:
    def test_scalars(self):
        text = """
a: 1
b: 2.5
c: true
d: no
e: hello
f: "quoted # not comment"
g: null
"""
        assert parse_yaml(text) == {
            "a": 1, "b": 2.5, "c": True, "d": False,
            "e": "hello", "f": "quoted # not comment", "g": None,
        }

    def test_inline_list(self):
        assert parse_yaml("xs: [1, 2, 3]") == {"xs": [1, 2, 3]}
        assert parse_yaml("xs: []") == {"xs": []}
        assert parse_yaml("xs: [a, 1, 2.0]") == {"xs": ["a", 1, 2.0]}

    def test_block_list(self):
        text = """
items:
  - 1
  - two
  - 3.0
"""
        assert parse_yaml(text) == {"items": [1, "two", 3.0]}

    def test_nested_mapping(self):
        text = """
outer:
  inner:
    x: 1
  y: 2
z: 3
"""
        assert parse_yaml(text) == {
            "outer": {"inner": {"x": 1}, "y": 2}, "z": 3,
        }

    def test_list_of_mappings(self):
        text = """
jobs:
  - name: a
    nodes: 2
  - name: b
    nodes: 4
"""
        assert parse_yaml(text) == {
            "jobs": [{"name": "a", "nodes": 2}, {"name": "b", "nodes": 4}],
        }

    def test_comments_stripped(self):
        text = """
# leading comment
a: 1  # trailing
"""
        assert parse_yaml(text) == {"a": 1}

    def test_errors(self):
        with pytest.raises(YamlError):
            parse_yaml(" a: 1")  # odd indentation
        with pytest.raises(YamlError):
            parse_yaml("a: 1\na: 2")  # duplicate key
        with pytest.raises(YamlError):
            parse_yaml("just a line without colon")


class TestExperimentConfig:
    def test_from_yaml_full(self):
        text = """
name: fig5
runtimes: [ompc, mpi]
patterns: [stencil_1d, tree]
nodes: [2, 4, 8]
width: 2n
steps: 32
iterations: 10000000
ccrs: [1.0]
repetitions: 3
"""
        cfg = ExperimentConfig.from_yaml(text)
        assert cfg.name == "fig5"
        assert cfg.runtimes == ("ompc", "mpi")
        assert cfg.nodes == (2, 4, 8)
        assert cfg.width_for(8) == 16
        assert cfg.repetitions == 3

    def test_defaults(self):
        cfg = ExperimentConfig.from_yaml("name: quick")
        assert cfg.runtimes == ("ompc", "charmpp", "starpu", "mpi")
        assert cfg.width_for(10) == 16

    def test_unknown_key_rejected(self):
        with pytest.raises(YamlError, match="unknown config keys"):
            ExperimentConfig.from_yaml("name: x\nbogus: 1")

    def test_missing_name_rejected(self):
        with pytest.raises(YamlError, match="name"):
            ExperimentConfig.from_yaml("steps: 4")

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", width="3n")

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", repetitions=0)
