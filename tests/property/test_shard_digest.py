"""Sharded control plane digest properties.

Two bit-identity promises guard the sharded plane (repro.core.shard):

* ``head_shards == 1`` *is* the classic runtime.  The delegation guard
  in :meth:`OMPCRuntime.launch` never imports the sharded modules for a
  single-shard config, so an explicit ``head_shards=1, gossip=False``
  run must produce the exact event stream of a default-config run —
  same SHA-256 over every processed ``(time, priority, name)``.

* The sharded plane itself rides the optimized simulator kernel.  A
  multi-shard run under ``fastpath=True`` must be bit-identical to the
  same run on the reference heap/linear-scan kernel — this also pins
  the ``MatchStore`` per-tag FIFO (ANY_SOURCE-by-tag matching), which
  the shard lease/notify traffic exercises hard.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.cluster.machine import ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.runtime import OMPCRuntime
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.taskbench.bench import build_omp_program

from tests.property.test_kernel_digest import _run_traced, _tap_all_sims

BANDWIDTH = 100e9 / 8.0


def _scenario(nodes: int, steps: int, config: OMPCConfig,
              pattern: Pattern = Pattern.STENCIL_1D):
    spec = TaskBenchSpec.with_ccr(
        2 * nodes, steps, pattern, KernelSpec.paper_50ms(), 1.0, BANDWIDTH
    )

    def scenario():
        runtime = OMPCRuntime(ClusterSpec(num_nodes=nodes), config)
        res = runtime.run(build_omp_program(spec))
        cluster = runtime.last_cluster
        net = cluster.network
        return (
            res.makespan,
            net.total_bytes,
            net.total_messages,
            cluster.sim._seq,
        )

    return scenario


def _digest_of(scenario) -> tuple[str, object]:
    digest = hashlib.sha256()
    with _tap_all_sims(digest):
        result = scenario()
    return digest.hexdigest(), result


def test_single_shard_bit_identical_to_default():
    """head_shards=1 must never reach the sharded code path."""
    base_digest, base_result = _digest_of(
        _scenario(4, 4, OMPCConfig())
    )
    one_digest, one_result = _digest_of(
        _scenario(4, 4, OMPCConfig(head_shards=1, gossip=False))
    )
    assert one_digest == base_digest, (
        "an explicit head_shards=1 config changed the event stream of "
        "the classic single-head runtime"
    )
    assert one_result == base_result


def test_single_shard_never_imports_sharded_plane():
    import repro.core.runtime as rt_mod

    runtime = OMPCRuntime(ClusterSpec(num_nodes=4),
                          OMPCConfig(head_shards=1))
    spec = TaskBenchSpec.with_ccr(
        8, 2, Pattern.STENCIL_1D, KernelSpec.paper_50ms(), 1.0, BANDWIDTH
    )
    runtime.run(build_omp_program(spec))
    assert runtime._sharded is None
    assert rt_mod is not None  # the import guard lives in launch()


@pytest.mark.parametrize("shards,nodes", [(2, 8), (4, 16)])
def test_sharded_run_fast_vs_reference_bit_identical(shards, nodes):
    cfg = OMPCConfig(head_shards=shards)
    fast_digest, fast_result = _run_traced(
        _scenario(nodes, 3, cfg), fastpath=True
    )
    ref_digest, ref_result = _run_traced(
        _scenario(nodes, 3, cfg), fastpath=False
    )
    assert fast_digest == ref_digest, (
        "optimized kernel reordered the sharded plane's event stream"
    )
    assert fast_result == ref_result


def test_sharded_run_is_deterministic():
    cfg = OMPCConfig(head_shards=4, gossip=True)
    first = _digest_of(_scenario(16, 3, cfg))
    second = _digest_of(_scenario(16, 3, cfg))
    assert first == second
