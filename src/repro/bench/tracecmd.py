"""The ``trace`` subcommand: one traced OMPC run, exported for Perfetto.

Usage::

    python -m repro.bench trace stencil_1d --nodes 4 --out trace.json

Runs a single Task Bench scenario through the full OMPC stack with
``OMPCConfig(trace=True)``, writes the Chrome/Perfetto trace JSON to
``--out``, and prints the utilization summary (per-link busy fraction
and bandwidth occupancy, per-node core occupancy, head in-flight slot
pressure, event-queue depths).  Load the JSON at
https://ui.perfetto.dev or in ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.cluster.machine import ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.runtime import OMPCRuntime
from repro.obs import (
    format_utilization,
    to_chrome_trace,
    utilization_summary,
    validate_chrome_trace,
)
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.taskbench.bench import build_omp_program

#: Reference fabric bandwidth for CCR-derived payload sizes (§6.1).
DEFAULT_BANDWIDTH = 100e9 / 8.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench trace",
        description="Run one traced scenario and export a Perfetto trace.",
    )
    parser.add_argument(
        "scenario",
        choices=sorted(p.value for p in Pattern),
        help="Task Bench dependence pattern to run",
    )
    parser.add_argument("--nodes", type=int, default=4,
                        help="cluster size incl. the head node (default 4)")
    parser.add_argument("--width", type=int, default=None,
                        help="tasks per step (default: 2 per worker)")
    parser.add_argument("--steps", type=int, default=4,
                        help="timesteps in the task graph (default 4)")
    parser.add_argument("--iterations", type=int, default=1_000_000,
                        help="kernel iterations per task (default 1e6)")
    parser.add_argument("--ccr", type=float, default=1.0,
                        help="computation-to-communication ratio (default 1)")
    parser.add_argument("--out", type=Path, default=Path("trace.json"),
                        help="output trace file (default trace.json)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.nodes < 2:
        raise SystemExit("trace needs a head node plus >= 1 worker")
    width = args.width if args.width is not None else 2 * (args.nodes - 1)

    spec = TaskBenchSpec.with_ccr(
        width,
        args.steps,
        Pattern(args.scenario),
        KernelSpec(args.iterations),
        args.ccr,
        DEFAULT_BANDWIDTH,
    )
    config = OMPCConfig(trace=True)
    runtime = OMPCRuntime(ClusterSpec(num_nodes=args.nodes), config)
    result = runtime.run(build_omp_program(spec))
    obs = result.obs
    assert obs is not None  # trace=True guarantees an observer

    events = to_chrome_trace(obs)
    problems = validate_chrome_trace(events)
    if problems:  # pragma: no cover - exporter bug guard
        for problem in problems:
            print(f"invalid trace: {problem}")
        return 1
    args.out.write_text(json.dumps({"traceEvents": events}, indent=1))

    print(
        f"{args.scenario}: nodes={args.nodes} width={width} "
        f"steps={args.steps} ccr={args.ccr}"
    )
    print(
        f"wrote {args.out} ({len(events)} events, "
        f"categories: {', '.join(sorted(obs.categories()))})"
    )
    print()
    report = utilization_summary(
        obs, runtime.last_cluster, result.makespan,
        head_threads=config.head_threads,
    )
    print(format_utilization(report))
    return 0
