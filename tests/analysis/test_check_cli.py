"""Tests for ``python -m repro.bench check``."""

import json

import pytest

from repro.bench.checkcmd import main as check_main
from repro.bench.__main__ import main as bench_main


class TestCheckCommand:
    def test_racy_demo_fails_with_the_race(self, capsys):
        assert check_main(["demo-racy"]) == 1
        out = capsys.readouterr().out
        assert "missing-dep-race" in out
        assert "reader ↔ writer @ B" in out
        assert "1 error(s)" in out

    def test_clean_demo_passes(self, capsys):
        assert check_main(["demo-clean"]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "0 error(s)" in out

    def test_json_output(self, capsys):
        assert check_main(["demo-racy", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["program"] == "demo-racy"
        assert len(payload["findings"]) == 1
        assert payload["findings"][0]["rule"] == "missing-dep-race"
        assert payload["findings"][0]["severity"] == "ERROR"

    def test_static_only_lints_a_pattern(self, capsys):
        rc = check_main(["stencil_1d", "--static-only", "--steps", "2"])
        assert rc == 0
        assert "static lint" in capsys.readouterr().out

    def test_full_analysis_on_a_pattern(self, capsys):
        rc = check_main(["trivial", "--nodes", "3", "--steps", "2",
                         "--iterations", "1000"])
        assert rc == 0
        assert "full analysis" in capsys.readouterr().out

    def test_rejects_single_node_cluster(self):
        with pytest.raises(SystemExit):
            check_main(["demo-clean", "--nodes", "1"])

    def test_dispatch_through_bench_main(self, capsys):
        assert bench_main(["check", "demo-clean"]) == 0
        assert "demo-clean" in capsys.readouterr().out
