"""Charm++-like runtime: message-driven chares with PUP copies.

Charm++ over-decomposes the domain into *chares* (here: one per grid
point) that execute entry methods when messages arrive — a pure
message-driven dataflow with no global barriers, which pipelines well.
Its structural cost is the messaging layer: every inter-node message is
serialized through the PUP (Pack/UnPack) framework — one memory copy on
the sending side and one on the receiving side — plus a per-message
envelope and scheduler overhead.

At high CCR (little data) those copies are negligible and Charm++ rides
its excellent pipelining.  At CCR ≤ 1 Task Bench messages reach
hundreds of megabytes, the copies land on the chare critical path, and
performance collapses — the behaviour the paper observes in Fig. 6
("Charm++ ... had its performance dramatically decreased when the
communication took most of the execution time").
"""

from __future__ import annotations

from repro.runtimes.calibration import CHARM, RuntimeCosts
from repro.runtimes.dataflow import DataflowRuntime


class CharmLikeRuntime(DataflowRuntime):
    """Message-driven chare dataflow with Charm++'s cost profile."""

    name = "Charm++"

    def __init__(self, costs: RuntimeCosts = CHARM):
        super().__init__(costs)
