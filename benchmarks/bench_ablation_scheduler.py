"""Ablation A: HEFT versus baseline schedulers (§4.4).

The paper adopts static HEFT because dynamic/naive placement "incurs
transferring data over the network whenever one process steals a task
from another".  This bench quantifies that choice by swapping OMPC's
scheduler while keeping everything else fixed: a communication-heavy
stencil graph where locality is the whole game.
"""

from __future__ import annotations

from figutil import BANDWIDTH
from repro.bench.report import format_table
from repro.cluster.machine import ClusterSpec
from repro.core import OMPCRuntime
from repro.core.scheduler import (
    HeftScheduler,
    MinLoadScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec, build_omp_program

SCHEDULERS = {
    "HEFT": HeftScheduler,
    "min-load": MinLoadScheduler,
    "round-robin": RoundRobinScheduler,
    "random": lambda: RandomScheduler(seed=0),
}


def run_with(scheduler_name: str, nodes: int = 8) -> float:
    spec = TaskBenchSpec.with_ccr(
        16, 16, Pattern.STENCIL_1D, KernelSpec.paper_50ms(), 1.0, BANDWIDTH
    )
    program = build_omp_program(spec)
    runtime = OMPCRuntime(
        ClusterSpec(num_nodes=nodes), scheduler=SCHEDULERS[scheduler_name]()
    )
    return runtime.run(program).makespan


class TestAblationScheduler:
    def test_bench_heft_beats_locality_blind_baselines(self, benchmark):
        def sweep():
            return {name: run_with(name) for name in SCHEDULERS}

        times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # HEFT's locality-aware placement must beat the baselines that
        # ignore communication entirely.
        assert times["HEFT"] < times["round-robin"]
        assert times["HEFT"] < times["random"]
        assert times["HEFT"] <= times["min-load"] * 1.05


def main() -> None:
    rows = [[name, run_with(name)] for name in SCHEDULERS]
    print(
        format_table(
            ["scheduler", "makespan (s)"],
            rows,
            title="Ablation A — scheduler choice (stencil 16x16, 8 nodes, CCR 1.0)",
        )
    )


if __name__ == "__main__":
    main()
