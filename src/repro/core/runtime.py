"""The OMPC runtime: end-to-end execution of an OmpProgram on a cluster.

Execution follows §3.1/§4.4:

1. the process starts on the head node (startup: MPI init, event-system
   spin-up, gate-thread creation);
2. the control thread creates every task *without executing it* —
   worker threads are kept idle;
3. at the implicit barrier the whole task graph is scheduled with HEFT
   (cost ``O(e × p)``);
4. tasks whose dependences are satisfied are dispatched: the data
   manager plans buffer moves (submit from head, or worker-to-worker
   exchange), the event system performs them, and an EXECUTE event runs
   the target region;
5. completions release dependents until the graph drains; exit-data
   tasks retrieve results to the head node;
6. the event system shuts down (gate-thread destruction, process end).

The §7 limitation is modeled exactly: each in-flight task occupies one
of ``config.head_threads`` slots ("an OpenMP thread at the head node is
always blocked, waiting for a target region to complete, even when it
is marked as nowait"), which is what bends the weak-scaling curves at
32–64 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.findings import AnalysisReport
from repro.analysis.hooks import Analysis
from repro.cluster.machine import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.datamanager import HOST, DataManager, Move
from repro.core.events import EventSystem
from repro.core.scheduler import HeftScheduler, Schedule, Scheduler
from repro.mpi.comm import MpiWorld
from repro.obs.observer import Observer
from repro.omp.api import OmpProgram
from repro.omp.task import Task, TaskKind
from repro.sim.primitives import AllOf
from repro.sim.resources import Resource


@dataclass
class OMPCRunResult:
    """Everything measured during one OMPC execution."""

    makespan: float
    startup_time: float
    scheduling_time: float
    shutdown_time: float
    schedule: Schedule
    #: task_id -> (dispatch, finish) simulated interval
    task_intervals: dict[int, tuple[float, float]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    #: Bytes moved over the fabric during the run.
    network_bytes: float = 0.0
    network_messages: int = 0
    #: The run's :class:`~repro.obs.observer.Observer` when the config
    #: enabled tracing (``OMPCConfig.trace``); ``None`` otherwise.
    obs: Observer | None = None
    #: Correctness findings when the config enabled analysis
    #: (``OMPCConfig.analysis``); ``None`` otherwise.
    analysis: AnalysisReport | None = None

    @property
    def constant_overhead(self) -> float:
        """Startup + shutdown + scheduling — the Fig. 7a numerator."""
        return self.startup_time + self.shutdown_time + self.scheduling_time

    @property
    def overhead_fraction(self) -> float:
        """Fraction of wall time not spent inside task execution."""
        if self.makespan == 0:
            return 0.0
        busy = sum(end - start for start, end in self.task_intervals.values())
        return max(0.0, 1.0 - min(busy, self.makespan) / self.makespan)


class OMPCRuntime:
    """Run OmpPrograms on a simulated cluster through the full OMPC stack."""

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        config: OMPCConfig | None = None,
        scheduler: Scheduler | None = None,
    ):
        if cluster_spec.num_nodes < 2:
            raise ValueError(
                "OMPC needs a head node plus at least one worker node"
            )
        self.cluster_spec = cluster_spec
        self.config = config or OMPCConfig()
        # The default HEFT models each worker's concurrent-execution
        # capacity, which the event-handler pool bounds (§4.2).
        self.scheduler = scheduler or HeftScheduler(
            exec_slots_per_node=self.config.event_handlers
        )
        #: The cluster of the most recent run (for inspection in tests).
        self.last_cluster: Cluster | None = None

    # ------------------------------------------------------------------
    def run(self, program: OmpProgram) -> OMPCRunResult:
        """Execute ``program`` on a fresh cluster and drive the clock."""
        main_proc, finish = self.launch(program)
        main_proc.sim.run(until=main_proc)
        return finish()

    def launch(self, program: OmpProgram, cluster=None):
        """Set up one execution and return ``(main_process, finish)``.

        With ``cluster=None`` a private :class:`Cluster` is built from
        ``self.cluster_spec`` (the classic single-application path).
        Passing a cluster — in practice a
        :class:`~repro.cluster.partition.ClusterView` partition — runs
        the program *inside an already-ticking simulation*: the caller
        owns the clock, this runtime only contributes a process.  All
        result times are relative to launch (``makespan`` is the job's
        duration, not the absolute clock), and ``finish()`` must be
        called only after the returned process has completed.
        """
        program.validate()
        if cluster is None:
            cluster = Cluster(self.cluster_spec)
        elif cluster.num_nodes != self.cluster_spec.num_nodes:
            raise ValueError(
                f"cluster has {cluster.num_nodes} nodes, spec expects "
                f"{self.cluster_spec.num_nodes}"
            )
        self.last_cluster = cluster
        sim = cluster.sim
        t0 = sim.now
        if self.config.trace and not cluster.obs.enabled:
            # Must precede MpiWorld/EventSystem construction — both
            # capture ``cluster.obs`` when built.  On a ClusterView this
            # attaches to the view only, keeping job traces isolated.
            cluster.install_observer(Observer(sim))
        obs = cluster.obs
        if self.config.analysis and not cluster.analysis.enabled:
            # Like the observer: must precede MpiWorld/EventSystem
            # construction, which capture ``cluster.analysis``.
            cluster.install_analysis(Analysis())
        analysis = cluster.analysis
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, self.config)
        dm = DataManager(analysis=analysis if analysis.enabled else None)
        analysis.program_begin(program)
        trace = cluster.trace
        cfg = self.config

        graph = program.graph
        result = OMPCRunResult(
            makespan=0.0,
            startup_time=0.0,
            scheduling_time=0.0,
            shutdown_time=0.0,
            schedule=Schedule({}),
        )

        remaining = {t.task_id: graph.in_degree(t) for t in graph.tasks()}
        pending = len(remaining)
        all_done = sim.event("all-tasks-done")
        slots = Resource(sim, capacity=cfg.head_threads, name="head-threads")

        def complete(task: Task) -> None:
            nonlocal pending
            pending -= 1
            for succ in graph.successors(task):
                remaining[succ.task_id] -= 1
                if remaining[succ.task_id] == 0:
                    sim.process(run_task(succ), name=f"task:{succ.name}")
            if pending == 0:
                all_done.succeed()

        # -- buffer movement -------------------------------------------------
        def perform_move(move: Move):
            buf = move.buffer
            move_span = obs.begin(
                "data", f"move:{buf.name}", 0,
                src=move.src, dst=move.dst, nbytes=buf.nbytes,
            ) if obs.enabled else None
            if move.src == HOST:
                payload = buf.data
                yield from events.submit(move.dst, buf.buffer_id, payload, buf.nbytes)
            elif move.dst == HOST:
                payload = yield from events.retrieve(
                    move.src, buf.buffer_id, buf.nbytes
                )
                buf.data = payload
            elif cfg.forwarding_enabled:
                yield from events.exchange(
                    move.src, move.dst, buf.buffer_id, buf.nbytes
                )
            else:
                # Ablation B: stage worker-to-worker moves via the head.
                payload = yield from events.retrieve(
                    move.src, buf.buffer_id, buf.nbytes
                )
                yield from events.submit(move.dst, buf.buffer_id, payload, buf.nbytes)
            dm.commit_move(move)
            if move_span is not None:
                obs.end(move_span)

        def perform_moves(moves: list[Move]):
            """Overlap independent buffer moves of one task."""
            if not moves:
                return
            if len(moves) == 1:
                yield from perform_move(moves[0])
                return
            procs = [
                sim.process(perform_move(m), name=f"move:{m.buffer.name}")
                for m in moves
            ]
            yield AllOf(sim, procs)

        def perform_deletes(stale: list):
            """Synchronously remove invalidated worker copies."""
            for buf, holder in stale:
                if holder != HOST:
                    del_span = obs.begin(
                        "data", f"delete:{buf.name}", 0, holder=holder
                    ) if obs.enabled else None
                    yield from events.delete(holder, buf.buffer_id)
                    if del_span is not None:
                        obs.end(del_span)

        # -- per-task execution ---------------------------------------------
        def run_task(task: Task):
            # §7: one head-node OpenMP thread blocks per in-flight task.
            enabled = obs.enabled
            wait_span = obs.begin(
                "task", f"{task.name}:wait-slot", 0, task_id=task.task_id
            ) if enabled else None
            yield slots.request()
            if enabled:
                obs.end(wait_span)
                obs.gauge_add("head.inflight", 1)
            analysis.task_begin(task)
            start = sim.now
            try:
                node = schedule.node_of(task)
                if task.kind == TaskKind.CLASSICAL:
                    yield from run_classical(task)
                elif task.kind == TaskKind.TARGET_ENTER_DATA:
                    yield from run_enter_data(task, node)
                elif task.kind == TaskKind.TARGET_EXIT_DATA:
                    yield from run_exit_data(task)
                else:
                    yield from run_target(task, node)
            finally:
                slots.release()
                if enabled:
                    obs.gauge_add("head.inflight", -1)
            result.task_intervals[task.task_id] = (start, sim.now)
            trace.record("task", task.name, start, sim.now)
            analysis.task_end(task)
            complete(task)

        def run_classical(task: Task):
            # Classical tasks run on the head node against host memory.
            analysis.on_host_task(task, dm)
            head = cluster.head
            yield head.cpu.request()
            try:
                if task.cost:
                    yield sim.timeout(head.compute_time(task.cost))
                if task.fn is not None:
                    task.fn(*(d.buffer.data for d in task.deps))
            finally:
                head.cpu.release()

        def run_enter_data(task: Task, node: int):
            if node == HOST:
                return  # no consumer was scheduled; data stays on host
            moves = []
            for buf in task.buffers:
                moves.extend(dm.plan_enter_data(buf, node))
            yield from perform_moves(moves)
            for buf in task.buffers:
                dm.commit_enter_data(buf, node)
            # §7 extension: one-to-many proactive distribution.  When the
            # task graph shows the buffer is read-only and consumed on
            # several nodes, a single binomial broadcast event replaces
            # the later per-consumer exchanges (each of which would need
            # head orchestration).
            if cfg.broadcast_events:
                for buf in task.buffers:
                    extra = broadcast_targets.get(buf.buffer_id, ())
                    dsts = [d for d in extra if d != node and d != HOST]
                    if not dsts:
                        continue
                    yield from events.broadcast(node, dsts, buf.buffer_id,
                                                buf.nbytes)
                    for dst in dsts:
                        dm.commit_move(Move(buf, node, dst))

        def run_exit_data(task: Task):
            moves = []
            for buf in task.buffers:
                moves.extend(dm.plan_exit_data(buf))
            yield from perform_moves(moves)
            for buf in task.buffers:
                removals = dm.commit_exit_data(buf)
                yield from perform_deletes(removals)

        def run_target(task: Task, node: int):
            moves, allocs = dm.plan_for_task(task, node)
            for mv in moves:
                # A fetch logically reads the buffer on the task's behalf.
                analysis.on_move(task, mv.buffer)
            enabled = obs.enabled
            fetch_span = obs.begin(
                "task", f"{task.name}:fetch", 0,
                target=node, moves=len(moves), allocs=len(allocs),
            ) if enabled else None
            for buf in allocs:
                yield from events.alloc(node, buf.buffer_id, payload=buf.data,
                                        nbytes=buf.nbytes)
                dm.commit_alloc(buf, node)
            yield from perform_moves(moves)
            if enabled:
                obs.end(fetch_span)
            exec_span = obs.begin(
                "task", f"{task.name}:execute", 0, target=node
            ) if enabled else None
            detected = yield from events.execute(node, task)
            if enabled:
                obs.end(exec_span)
            commit_span = obs.begin(
                "task", f"{task.name}:commit", 0, target=node
            ) if enabled else None
            stale = dm.commit_task_done(
                task,
                node,
                written_ids=set(detected) if detected is not None else None,
            )
            yield from perform_deletes(stale)
            if enabled:
                obs.end(commit_span)

        # -- main process on the head node ------------------------------------
        def main():
            try:
                yield from main_body()
            except BaseException:
                # Abort (error or a workload manager's preemption
                # interrupt): kill this run's gate/handler processes so
                # a shared simulation (multi-tenant cluster views) is
                # not left with orphaned machinery ticking after the
                # error propagates out.  Aborts during startup find the
                # event system not yet started — nothing to tear down.
                if events._started:
                    for node_id in range(cluster.num_nodes):
                        if not events.node_failed(node_id):
                            events.fail_node(node_id)
                raise

        def main_body():
            # 1. startup: process start -> gate-thread creation (Fig. 7a).
            span = trace.begin("runtime", "startup")
            obs_span = obs.begin("sched", "startup", 0)
            yield sim.timeout(cfg.startup_time)
            events.start()
            trace.end(span)
            obs.end(obs_span)
            result.startup_time = cfg.startup_time

            # 2. control thread creates all tasks (workers stay idle).
            creation = len(remaining) * cfg.task_creation_overhead
            if creation:
                obs_span = obs.begin(
                    "sched", "task-creation", 0, tasks=len(remaining)
                )
                yield sim.timeout(creation)
                obs.end(obs_span)

            # 3. implicit barrier: schedule the entire graph with HEFT.
            span = trace.begin("runtime", "scheduling")
            obs_span = obs.begin("sched", "heft", 0, edges=graph.num_edges)
            sched_cost = (
                graph.num_edges
                * max(cluster.num_nodes - 1, 1)
                * cfg.schedule_unit_cost
            )
            if sched_cost:
                yield sim.timeout(sched_cost)
            trace.end(span)
            obs.end(obs_span)
            result.scheduling_time = sched_cost + 0.0

            # 4./5. dispatch and drain the graph.
            if pending == 0:
                all_done.succeed()
            else:
                for root in graph.roots():
                    sim.process(run_task(root), name=f"task:{root.name}")
            yield all_done

            # 6. shutdown: gate-thread destruction -> process end.
            span = trace.begin("runtime", "shutdown")
            obs_span = obs.begin("sched", "shutdown", 0)
            yield from events.shutdown()
            yield sim.timeout(cfg.shutdown_time)
            trace.end(span)
            obs.end(obs_span)
            result.shutdown_time = cfg.shutdown_time

        # Scheduling happens inside main() in simulated time, but the
        # assignment itself is computed eagerly here (it is deterministic
        # and independent of the clock).
        schedule = self.scheduler.schedule(graph, cluster)
        result.schedule = schedule

        # §7 broadcast detection: for each buffer entered via enter-data
        # and never written afterwards (read-only on the device side),
        # collect the distinct nodes of its consumers from the scheduled
        # task graph.
        broadcast_targets: dict[int, tuple[int, ...]] = {}
        if cfg.broadcast_events:
            readers: dict[int, set[int]] = {}
            written: set[int] = set()
            entered: set[int] = set()
            for task in graph.tasks():
                if task.kind == TaskKind.TARGET_ENTER_DATA:
                    entered.update(b.buffer_id for b in task.buffers)
                elif task.kind == TaskKind.TARGET:
                    node = schedule.node_of(task)
                    for buf in task.reads:
                        readers.setdefault(buf.buffer_id, set()).add(node)
                    written.update(b.buffer_id for b in task.writes)
            for bid in entered - written:
                nodes = sorted(readers.get(bid, ()))
                if len(nodes) > 1:
                    broadcast_targets[bid] = tuple(nodes)

        main_proc = sim.process(main(), name="ompc-main")
        net_bytes0 = cluster.network.total_bytes
        net_msgs0 = cluster.network.total_messages

        def finish() -> OMPCRunResult:
            result.makespan = sim.now - t0
            result.counters = dict(trace.counters)
            result.network_bytes = cluster.network.total_bytes - net_bytes0
            result.network_messages = (
                cluster.network.total_messages - net_msgs0
            )
            if obs.enabled:
                # Fold the transport + event-system tallies into the
                # observer so one object carries the whole run's metrics.
                for stat, value in mpi.stats.items():
                    obs.count(f"mpi.transport.{stat}", value)
                for counter_name, value in trace.counters.items():
                    obs.count(counter_name, value)
                result.obs = obs
            if analysis.enabled:
                result.analysis = analysis.finalize(
                    [mpi], failed=events._failed, obs=obs
                )
            return result

        return main_proc, finish
