"""Tests for kernel calibration, spec construction, and program building."""

import pytest

from repro.omp.task import DepType, TaskKind
from repro.taskbench import (
    KernelSpec,
    Pattern,
    TaskBenchSpec,
    build_omp_program,
)


class TestKernelSpec:
    def test_paper_calibration_points(self):
        assert KernelSpec.paper_50ms().duration == pytest.approx(0.050)
        assert KernelSpec.paper_500ms().duration == pytest.approx(0.500)

    def test_from_duration_roundtrip(self):
        k = KernelSpec.from_duration(0.010)
        assert k.duration == pytest.approx(0.010)
        assert k.iterations == 2_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelSpec(iterations=-1)
        with pytest.raises(ValueError):
            KernelSpec(iterations=1, seconds_per_iteration=0.0)
        with pytest.raises(ValueError):
            KernelSpec.from_duration(-1.0)


class TestTaskBenchSpec:
    def test_counts(self):
        spec = TaskBenchSpec(8, 4, Pattern.STENCIL_1D, KernelSpec(1000))
        assert spec.total_tasks == 32
        assert len(list(spec.tasks())) == 32
        # 3 interior steps x (6 interior points x 3 + 2 boundary x 2).
        assert spec.total_edges == 3 * (6 * 3 + 2 * 2)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            TaskBenchSpec(0, 4, Pattern.TRIVIAL, KernelSpec(1))
        with pytest.raises(ValueError):
            TaskBenchSpec(4, 0, Pattern.TRIVIAL, KernelSpec(1))
        with pytest.raises(ValueError):
            TaskBenchSpec(4, 4, Pattern.TRIVIAL, KernelSpec(1), output_bytes=-5)

    def test_fft_width_validated_at_construction(self):
        with pytest.raises(ValueError):
            TaskBenchSpec(6, 4, Pattern.FFT, KernelSpec(1))

    def test_with_ccr_balances_comm_and_comp(self):
        bw = 12.5e9
        kernel = KernelSpec.paper_500ms()
        spec = TaskBenchSpec.with_ccr(
            16, 16, Pattern.NO_COMM, kernel, ccr=1.0, bandwidth=bw
        )
        # in-degree exactly 1: per-task comm time must equal duration.
        assert spec.output_bytes / bw == pytest.approx(kernel.duration)

    def test_with_ccr_scales_inversely(self):
        bw = 12.5e9
        kernel = KernelSpec.paper_500ms()
        half = TaskBenchSpec.with_ccr(16, 16, Pattern.STENCIL_1D, kernel, 0.5, bw)
        two = TaskBenchSpec.with_ccr(16, 16, Pattern.STENCIL_1D, kernel, 2.0, bw)
        assert half.output_bytes == pytest.approx(4 * two.output_bytes)

    def test_with_ccr_trivial_no_bytes(self):
        spec = TaskBenchSpec.with_ccr(
            16, 16, Pattern.TRIVIAL, KernelSpec(1), 1.0, 1e9
        )
        assert spec.output_bytes == 0.0

    def test_with_ccr_validation(self):
        with pytest.raises(ValueError):
            TaskBenchSpec.with_ccr(4, 4, Pattern.TRIVIAL, KernelSpec(1), 0.0, 1e9)
        with pytest.raises(ValueError):
            TaskBenchSpec.with_ccr(4, 4, Pattern.TRIVIAL, KernelSpec(1), 1.0, 0.0)

    def test_describe(self):
        spec = TaskBenchSpec(8, 4, Pattern.FFT, KernelSpec.paper_50ms())
        text = spec.describe()
        assert "fft" in text and "8x4" in text


class TestBuildOmpProgram:
    def test_task_count_and_kinds(self):
        spec = TaskBenchSpec(4, 3, Pattern.STENCIL_1D, KernelSpec(1000), 100.0)
        prog = build_omp_program(spec)
        prog.validate()
        tasks = list(prog.graph.tasks())
        assert len(tasks) == 12
        assert all(t.kind == TaskKind.TARGET for t in tasks)
        assert len(prog.buffers) == 8  # two generations per point

    def test_edges_match_pattern_plus_war(self):
        spec = TaskBenchSpec(4, 3, Pattern.NO_COMM, KernelSpec(10), 10.0)
        prog = build_omp_program(spec)
        # Chains: p(t) reads p(t-1) output. RAW edges: width*(steps-1)=8.
        # WAR edges: task (t,p) writes the buffer read at t-1 -> another
        # 4 edges for t=2 (t=1 writes parity-1 buffers, unread before).
        graph = prog.graph
        assert graph.num_edges >= 8

    def test_deps_encode_pattern(self):
        spec = TaskBenchSpec(8, 2, Pattern.STENCIL_1D, KernelSpec(10), 10.0)
        prog = build_omp_program(spec)
        t1p4 = next(t for t in prog.graph.tasks() if t.name == "t1p4")
        read_names = sorted(
            d.buffer.name for d in t1p4.deps if d.type == DepType.IN
        )
        assert read_names == ["p3g0", "p4g0", "p5g0"]
        written = [d.buffer.name for d in t1p4.deps if d.type == DepType.OUT]
        assert written == ["p4g1"]

    def test_meta_records_grid_position(self):
        spec = TaskBenchSpec(2, 2, Pattern.TRIVIAL, KernelSpec(10))
        prog = build_omp_program(spec)
        task = next(t for t in prog.graph.tasks() if t.name == "t1p1")
        assert task.meta["step"] == 1 and task.meta["point"] == 1

    def test_program_runs_on_ompc(self):
        from repro.cluster import ClusterSpec
        from repro.core import OMPCRuntime

        spec = TaskBenchSpec(4, 4, Pattern.STENCIL_1D, KernelSpec.from_duration(0.01), 1000.0)
        prog = build_omp_program(spec)
        res = OMPCRuntime(ClusterSpec(num_nodes=3)).run(prog)
        assert len(res.task_intervals) == 16
        # Workers run points concurrently on their cores, so wall time is
        # bounded below by the 4-step critical path (40ms) plus startup/
        # shutdown, and must not balloon past ~2x that.
        assert 0.06 < res.makespan < 0.12
