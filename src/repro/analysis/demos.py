"""Tiny demo programs for ``repro.bench check`` and the test suite.

``demo_program(racy=True)`` builds the canonical missing-dependence
bug: a writer updates buffer ``B`` while a reader's depend clause only
mentions ``A`` — even though its kernel actually reads ``B`` too.  The
checker must report exactly that one race (writer ↔ reader on ``B``)
and nothing else; the ``racy=False`` variant restores the clause and
must come back clean.
"""

from __future__ import annotations

from repro.omp.api import OmpProgram
from repro.omp.task import depend_in, depend_inout


def demo_program(racy: bool) -> OmpProgram:
    prog = OmpProgram(name="demo-racy" if racy else "demo-clean")
    a = prog.buffer(nbytes=1 << 20, name="A")
    b = prog.buffer(nbytes=1 << 20, name="B")
    prog.target_enter_data(a, b)
    prog.target(depend=[depend_inout(b)], cost=1e-3, name="writer")
    reads = [depend_in(a)] if racy else [depend_in(a), depend_in(b)]
    prog.target(
        depend=reads,
        cost=1e-3,
        name="reader",
        accesses=(depend_in(a), depend_in(b)),
    )
    prog.target_exit_data(a, b)
    return prog
