"""Property tests for the job manager: seeded determinism and
conservation invariants across policies and seeds.

The headline property (ISSUE acceptance): two runs of the same Poisson
stream with the same seed produce identical schedules and telemetry,
for every admission policy.
"""

import pytest

from repro.cluster.machine import Cluster, ClusterSpec
from repro.jobs import JobManager, PoissonWorkload

POLICIES = ("fifo", "fair", "backfill")


def run_workload(policy, seed, nodes=11, jobs=10):
    workload = PoissonWorkload(
        seed=seed, jobs=jobs, mean_interarrival=0.01,
        small=(2, 3), large=(6, 9), large_fraction=0.4,
        task_seconds=(0.01, 0.03),
    ).generate()
    manager = JobManager(Cluster(ClusterSpec(num_nodes=nodes)),
                         policy=policy)
    return manager.run(workload)


def fingerprint(report):
    return (
        tuple((r.name, r.start_time, r.finish_time, r.backfilled, r.state)
              for r in report.records),
        report.utilization,
        report.queue_depth_avg,
        report.mean_wait,
        report.mean_bounded_slowdown,
        tuple(sorted(report.counters.items())),
    )


class TestSeededDeterminism:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_same_seed_identical_schedule_and_telemetry(self, policy):
        first = run_workload(policy, seed=13)
        second = run_workload(policy, seed=13)
        assert fingerprint(first) == fingerprint(second)

    def test_different_seeds_differ(self):
        assert fingerprint(run_workload("fifo", seed=13)) != \
            fingerprint(run_workload("fifo", seed=14))


class TestInvariants:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("seed", (1, 5))
    def test_conservation(self, policy, seed):
        report = run_workload(policy, seed)
        # Every job reaches a terminal state ...
        assert report.completed + report.failed == report.total_jobs
        # ... nothing runs before it arrives or finishes before it starts
        for r in report.records:
            if r.start_time is not None:
                assert r.start_time >= r.submit_time
            if r.finish_time is not None and r.start_time is not None:
                assert r.finish_time >= r.start_time
            if r.bounded_slowdown is not None:
                assert r.bounded_slowdown >= 1.0
        # ... and a space-shared machine is never over-committed.
        assert 0.0 <= report.utilization <= 1.0

    @pytest.mark.parametrize("seed", (1, 5))
    def test_policies_agree_on_the_work_not_the_order(self, seed):
        reports = {p: run_workload(p, seed) for p in POLICIES}
        names = {p: sorted(r.name for r in rep.records)
                 for p, rep in reports.items()}
        assert names["fifo"] == names["fair"] == names["backfill"]
        done = {p: rep.completed for p, rep in reports.items()}
        assert done["fifo"] == done["fair"] == done["backfill"]
