"""Results and per-shard reporting for sharded runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runtime import OMPCRunResult


@dataclass
class ShardStats:
    """What one shard manager did during the run."""

    shard: int
    manager: int
    #: Compute nodes the shard dispatches to.
    nodes: tuple[int, ...] = ()
    tasks: int = 0
    dispatched: int = 0
    #: Cross-shard subscriptions this shard sent / notifications it sent.
    leases_sent: int = 0
    forwards_sent: int = 0
    #: Duplicate notifications discarded (failover replays).
    dedup_hits: int = 0
    failovers: int = 0
    #: Simulated seconds of task occupancy dispatched by this shard.
    busy_time: float = 0.0


@dataclass
class ShardRunResult(OMPCRunResult):
    """An :class:`OMPCRunResult` plus the sharded-plane telemetry."""

    shard_stats: dict[int, ShardStats] = field(default_factory=dict)
    #: ``(time, node, event, subject)`` membership transitions (gossip).
    membership_timeline: list[tuple[float, int, str, int]] = \
        field(default_factory=list)
    #: Confirmed failures: ``(dead_node, detected_by, time)``.
    detections: list[tuple[int, int, float]] = field(default_factory=list)
    gossip_rounds: int = 0

    def utilization_report(self) -> str:
        """A per-shard utilization table (the example prints this)."""
        lines = [
            f"{'shard':>5} {'manager':>7} {'nodes':>7} {'tasks':>6} "
            f"{'dispatched':>10} {'leases':>6} {'fwd':>5} "
            f"{'failovers':>9} {'busy%':>6}"
        ]
        horizon = self.makespan or 1.0
        for sid in sorted(self.shard_stats):
            st = self.shard_stats[sid]
            span = len(st.nodes) * horizon or 1.0
            lines.append(
                f"{st.shard:>5} {st.manager:>7} {len(st.nodes):>7} "
                f"{st.tasks:>6} {st.dispatched:>10} {st.leases_sent:>6} "
                f"{st.forwards_sent:>5} {st.failovers:>9} "
                f"{100.0 * st.busy_time / span:>5.1f}%"
            )
        return "\n".join(lines)
