"""Space-shared cluster partitioning: virtual sub-clusters over one machine.

A multi-tenant workload manager (see :mod:`repro.jobs`) carves one
physical :class:`~repro.cluster.machine.Cluster` into disjoint node
partitions and hands each admitted job its own *view* of the machine.
A :class:`ClusterView` renumbers a subset of physical nodes as virtual
nodes ``0..k-1`` (virtual node 0 is the job's private head node) while
sharing the physical simulator clock, CPU/NIC resources, and fabric:

* compute contention is physical — a view's node *is* the physical
  node's CPU/GPU resources, so nothing else can double-book them while
  the partition is held;
* network contention is physical too — transfers issued through a view
  serialize on the shared NICs and fluid fair-share engine, so jobs in
  different partitions still fight over the fabric like real tenants;
* everything *stateful at the software layer* is private: each view
  owns its own trace recorder, observer slot, and byte counters, and
  the runtime built on top of it owns its own MPI world (communicator
  and tag space) and device-memory tables.

The :class:`NodePool` below is the allocator the job manager draws
partitions from; it is deliberately simple (lowest-free-id first) so
allocation is a pure function of the request sequence — seeded
workloads replay to identical placements.
"""

from __future__ import annotations

from repro.cluster.machine import Cluster, ClusterSpec
from repro.cluster.node import Node
from repro.cluster.trace import TraceRecorder
from repro.analysis.hooks import NULL_ANALYSIS
from repro.obs.observer import NULL_OBSERVER


class PartitionError(Exception):
    """Invalid partition request (overlap, unknown node, exhausted pool)."""


class _NodeView:
    """A physical node seen under a virtual id.

    Shares the physical node's resources (``cpu``, ``memory``, ``gpus``)
    so occupancy is accounted on the real hardware, but reports the
    virtual ``node_id`` the job's runtime schedules against.
    """

    __slots__ = ("_node", "node_id", "physical_id", "sim", "spec",
                 "cpu", "memory", "gpus")

    def __init__(self, node: Node, virtual_id: int):
        self._node = node
        self.node_id = virtual_id
        self.physical_id = node.node_id
        self.sim = node.sim
        self.spec = node.spec
        self.cpu = node.cpu
        self.memory = node.memory
        self.gpus = node.gpus

    def compute_time(self, nominal_seconds: float) -> float:
        return self._node.compute_time(nominal_seconds)

    def compute(self, nominal_seconds: float):
        yield from self._node.compute(nominal_seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<NodeView v{self.node_id}=phys{self.physical_id} "
            f"cores={self.spec.cores}>"
        )


class _FaultsView:
    """Virtual-id adapter over the physical cluster's ActiveFaults."""

    __slots__ = ("_faults", "_map")

    def __init__(self, faults, mapping: tuple[int, ...]):
        self._faults = faults
        self._map = mapping

    @property
    def plan(self):
        return self._faults.plan

    @property
    def dropped_messages(self) -> int:
        return self._faults.dropped_messages

    def drops(self, src: int, dst: int) -> bool:
        return self._faults.drops(self._map[src], self._map[dst])

    def latency_factor(self, src: int, dst: int, now: float) -> float:
        return self._faults.latency_factor(self._map[src], self._map[dst], now)

    def bandwidth_factor(self, src: int, dst: int, now: float) -> float:
        return self._faults.bandwidth_factor(
            self._map[src], self._map[dst], now
        )

    def hold_until(self, src: int, dst: int, now: float) -> float:
        return self._faults.hold_until(self._map[src], self._map[dst], now)

    def compute_rate(self, node: int, now: float) -> float:
        return self._faults.compute_rate(self._map[node], now)

    def stretched(self, node: int, start: float, duration: float) -> float:
        return self._faults.stretched(self._map[node], start, duration)

    def capacity_factor(self, node: int, now: float) -> float:
        return self._faults.capacity_factor(self._map[node], now)

    def fetch_fails(self, node: int, now: float) -> bool:
        return self._faults.fetch_fails(self._map[node], now)


class _NetworkView:
    """The shared fabric addressed by virtual node ids.

    Transfers delegate to the physical network (so they contend with
    every other partition's traffic on the real NICs), while byte and
    message totals are tallied per view — the per-job numbers a
    multi-tenant run reports.
    """

    def __init__(self, network, mapping: tuple[int, ...]):
        self._net = network
        self._map = mapping
        self.spec = network.spec
        #: Per-view observability sink (``ClusterView.install_observer``
        #: swaps in a recording observer for traced jobs).
        self.obs = NULL_OBSERVER
        #: Bytes/messages moved by *this view's* traffic only.
        self.total_bytes = 0
        self.total_messages = 0

    @property
    def num_nodes(self) -> int:
        return len(self._map)

    @property
    def faults(self):
        faults = self._net.faults
        if faults is None:
            return None
        return _FaultsView(faults, self._map)

    def _physical(self, node: int) -> int:
        if not 0 <= node < len(self._map):
            raise ValueError(
                f"node {node} out of range [0, {len(self._map)})"
            )
        return self._map[node]

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        return self._net.transfer_time(
            self._physical(src), self._physical(dst), nbytes
        )

    def transfer(self, src: int, dst: int, nbytes: float):
        """Generator: a timed transfer between two virtual nodes."""
        psrc, pdst = self._physical(src), self._physical(dst)
        obs = self.obs
        if obs.enabled:
            obs.gauge_add(f"link.{src}->{dst}", 1, node=src)
        try:
            yield from self._net.transfer(psrc, pdst, nbytes)
        finally:
            if obs.enabled:
                obs.gauge_add(f"link.{src}->{dst}", -1, node=src)
                obs.count(f"link.{src}->{dst}.bytes", nbytes)
        if psrc != pdst:
            self.total_bytes += int(nbytes)
            self.total_messages += 1


class ClusterView:
    """A disjoint slice of a physical cluster, renumbered from zero.

    Quacks like a :class:`~repro.cluster.machine.Cluster` for every
    consumer in the runtime stack (MPI world, event system, scheduler,
    heartbeat ring, fault-tolerant runtime): virtual node 0 is the
    partition's head, virtual nodes ``1..k-1`` its workers.
    """

    def __init__(self, cluster: Cluster, node_ids, name: str = ""):
        ids = tuple(int(n) for n in node_ids)
        if not ids:
            raise PartitionError("a partition needs at least one node")
        if len(set(ids)) != len(ids):
            raise PartitionError(f"duplicate nodes in partition {ids}")
        for node_id in ids:
            if not 0 <= node_id < cluster.num_nodes:
                raise PartitionError(
                    f"node {node_id} not in cluster of {cluster.num_nodes}"
                )
        self.physical = cluster
        self.node_ids = ids
        self.name = name
        self.sim = cluster.sim
        #: A spec consistent with the slice (heterogeneity preserved).
        self.spec = ClusterSpec(
            num_nodes=len(ids),
            node=cluster.spec.node,
            network=cluster.spec.network,
            node_overrides=tuple(
                (virt, cluster.spec.spec_for(phys))
                for virt, phys in enumerate(ids)
                if cluster.spec.spec_for(phys) is not cluster.spec.node
            ),
        )
        self.nodes = [
            _NodeView(cluster.nodes[phys], virt)
            for virt, phys in enumerate(ids)
        ]
        self.network = _NetworkView(cluster.network, ids)
        #: Per-view trace recorder: a job's counters and phase spans do
        #: not bleed into other tenants' runs.
        self.trace = TraceRecorder(self.sim)
        self.obs = NULL_OBSERVER
        self.analysis = NULL_ANALYSIS

    # -- Cluster interface -------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def head(self) -> _NodeView:
        return self.nodes[0]

    @property
    def workers(self) -> list[_NodeView]:
        return self.nodes[1:]

    def node(self, node_id: int) -> _NodeView:
        return self.nodes[node_id]

    @property
    def faults(self):
        return self.network.faults

    def install_observer(self, obs) -> None:
        """Attach an observer to this view only (not the physical machine).

        Must run before MPI worlds or runtimes are built on the view —
        they capture ``view.obs`` at construction time.
        """
        self.obs = obs
        self.network.obs = obs

    def install_analysis(self, analysis) -> None:
        """Attach an analysis to this view only (not the physical machine)."""
        self.analysis = analysis

    def physical_id(self, node_id: int) -> int:
        """The physical node behind a virtual id."""
        return self.node_ids[node_id]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClusterView {self.name!r} nodes={self.node_ids}>"


def shard_reserved(head_shards: int) -> tuple[int, ...]:
    """Reserved node ids for a sharded control plane.

    A run with ``head_shards == K`` pins its shard managers on nodes
    ``0..K-1`` (node 0 stays the host shard), exactly like the job
    manager reserving node 0 for itself.  Pass the result as
    ``NodePool(cluster, reserved=shard_reserved(k))`` so jobs never land
    on a manager node.
    """
    if head_shards < 1:
        raise PartitionError(f"head_shards must be >= 1, got {head_shards}")
    return tuple(range(head_shards))


class NodePool:
    """Allocator of disjoint node partitions on one physical cluster.

    ``reserved`` nodes (by default just physical node 0, where the job
    manager itself runs) are never handed to jobs.  Crashed nodes are
    :meth:`retire`\\ d permanently — the pool shrinks, exactly like a
    production cluster draining a broken machine.
    """

    def __init__(self, cluster: Cluster, reserved=(0,)):
        self.cluster = cluster
        self.reserved = frozenset(int(n) for n in reserved)
        for node_id in self.reserved:
            if not 0 <= node_id < cluster.num_nodes:
                raise PartitionError(f"reserved node {node_id} not in cluster")
        self._free = sorted(
            n for n in range(cluster.num_nodes) if n not in self.reserved
        )
        self._held: dict[int, str] = {}
        self._retired: set[int] = set()

    # -- capacity ----------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Schedulable nodes: free + held (retired ones are gone)."""
        return len(self._free) + len(self._held)

    @property
    def potential_capacity(self) -> int:
        """Nodes the pool could ever schedule.

        For the static pool this equals :attr:`capacity`; an elastic
        pool (see :class:`ElasticNodePool`) also counts parked nodes an
        autoscaler may still bring online, so the job manager does not
        fail a queued job that a future scale-up could satisfy.
        """
        return self.capacity

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def held_count(self) -> int:
        return len(self._held)

    def free_nodes(self) -> list[int]:
        return list(self._free)

    def holder_of(self, node_id: int) -> str | None:
        return self._held.get(node_id)

    # -- allocation ----------------------------------------------------------
    def allocate(self, count: int, holder: str = "") -> tuple[int, ...]:
        """Claim the ``count`` lowest-id free nodes for ``holder``.

        Deterministic by construction: the same request sequence always
        yields the same partitions.
        """
        if count < 1:
            raise PartitionError("partition size must be >= 1")
        if count > len(self._free):
            raise PartitionError(
                f"requested {count} nodes, only {len(self._free)} free"
            )
        taken = tuple(self._free[:count])
        del self._free[:count]
        for node_id in taken:
            self._held[node_id] = holder
        return taken

    def release(self, node_ids) -> None:
        """Return held nodes to the pool (retired nodes stay retired)."""
        for node_id in node_ids:
            if node_id in self._retired:
                self._held.pop(node_id, None)
                continue
            if node_id not in self._held:
                raise PartitionError(f"node {node_id} is not held")
            del self._held[node_id]
            self._free.append(node_id)
        self._free.sort()

    def retire(self, node_id: int) -> None:
        """Remove a node from service permanently (crash/drain)."""
        if node_id in self._retired:
            return
        self._retired.add(node_id)
        if node_id in self._free:
            self._free.remove(node_id)
        # A held node is dropped from the pool when its job releases it.

    @property
    def retired(self) -> frozenset[int]:
        return frozenset(self._retired)

    def view(self, node_ids, name: str = "") -> ClusterView:
        """Build the :class:`ClusterView` for an allocated partition."""
        return ClusterView(self.cluster, node_ids, name=name)


class ElasticNodePool(NodePool):
    """A node pool whose schedulable size an autoscaler grows and shrinks.

    The physical cluster is built at its *maximum* size; nodes beyond
    ``initial_online`` start *offline* (parked, consuming nothing,
    invisible to the allocator).  The autoscaling controller moves nodes
    between three states:

    offline
        Parked.  Not allocatable, not counted in :attr:`capacity`, but
        counted in :attr:`potential_capacity` — a queued job that fits
        the potential pool is kept queued instead of failed.
    warming
        A scale-up was decided but the node is still booting (warm-up
        cost).  Allocatable only once warm-up completes.
    online
        In the free list, exactly like a static pool's nodes.

    Scale-down only ever takes *free* nodes (jobs are never evicted by
    the autoscaler — preemption is a separate, priority-driven
    mechanism), and takes the highest-ids first so the lowest-first
    allocator keeps packing the stable low end of the pool.  All
    transitions are pure functions of the request sequence, so seeded
    runs replay identically.
    """

    def __init__(self, cluster: Cluster, reserved=(0,),
                 initial_online: int | None = None):
        super().__init__(cluster, reserved=reserved)
        total = len(self._free)
        if initial_online is None:
            initial_online = total
        if not 1 <= initial_online <= total:
            raise PartitionError(
                f"initial_online must be in [1, {total}], "
                f"got {initial_online}"
            )
        #: Parked nodes, highest ids first off the free list.
        self._offline: list[int] = sorted(self._free[initial_online:])
        del self._free[initial_online:]
        self._warming: set[int] = set()

    # -- capacity ----------------------------------------------------------
    @property
    def potential_capacity(self) -> int:
        """Free + held + parked + warming (everything not retired)."""
        return self.capacity + len(self._offline) + len(self._warming)

    @property
    def offline_count(self) -> int:
        return len(self._offline)

    @property
    def warming_count(self) -> int:
        return len(self._warming)

    # -- autoscaler transitions --------------------------------------------
    def begin_warmup(self, count: int) -> tuple[int, ...]:
        """Pull up to ``count`` parked nodes into the warming state.

        Returns the node ids actually taken (lowest parked ids first;
        possibly fewer than requested, possibly empty).
        """
        count = min(count, len(self._offline))
        taken = tuple(self._offline[:count])
        del self._offline[:count]
        self._warming.update(taken)
        return taken

    def complete_warmup(self, node_ids) -> None:
        """Warm-up finished: the nodes join the free list."""
        for node_id in node_ids:
            if node_id not in self._warming:
                raise PartitionError(f"node {node_id} is not warming")
            self._warming.discard(node_id)
            if node_id in self._retired:
                continue  # retired while booting: never joins
            self._free.append(node_id)
        self._free.sort()

    def take_offline(self, count: int) -> tuple[int, ...]:
        """Park up to ``count`` *free* nodes (highest ids first).

        Held nodes are never touched; returns the ids actually parked.
        """
        count = min(count, len(self._free))
        if count <= 0:
            return ()
        taken = tuple(self._free[-count:])
        del self._free[-count:]
        self._offline.extend(taken)
        self._offline.sort()
        return taken

    def retire(self, node_id: int) -> None:
        super().retire(node_id)
        if node_id in self._offline:
            self._offline.remove(node_id)
        # A warming node is dropped when its warm-up completes.
