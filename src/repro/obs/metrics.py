"""Metrics registry: counters and piecewise-constant time-series gauges.

All values are recorded against *simulated* time.  A :class:`Gauge` is
sampled at its change points (event-driven sampling — between samples
the value is constant, so the step function is exact, not an
approximation).  The registry powers the utilization report
(:mod:`repro.obs.report`): per-link busy fractions, per-node core
occupancy, head-node in-flight slot usage, and event-queue depths are
all time-averages or threshold fractions of gauges collected here.
"""

from __future__ import annotations

from collections.abc import Iterator


class Counter:
    """A monotonically increasing scalar (bytes, messages, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """An exact step function of simulated time.

    ``samples`` holds ``(t, value)`` change points in non-decreasing
    ``t`` order (simulated time never goes backwards).  Before the first
    sample the value is 0.  Several samples at the same instant are
    allowed; the last one wins (the earlier ones span zero time).

    ``node`` attributes the gauge to a cluster node so exporters can
    place its counter track under the right process lane.
    """

    __slots__ = ("name", "node", "samples")

    def __init__(self, name: str, node: int = 0):
        self.name = name
        self.node = node
        self.samples: list[tuple[float, float]] = []

    @property
    def value(self) -> float:
        """The current (most recently set) value."""
        return self.samples[-1][1] if self.samples else 0.0

    def set(self, t: float, value: float) -> None:
        """Record that the gauge changed to ``value`` at time ``t``."""
        self.samples.append((t, float(value)))

    def add(self, t: float, delta: float) -> None:
        """Record a relative change at time ``t``."""
        self.set(t, self.value + delta)

    def maximum(self) -> float:
        """Largest value ever recorded (0 for an empty gauge)."""
        return max((v for _t, v in self.samples), default=0.0)

    def _segments(self, t0: float, t1: float) -> Iterator[tuple[float, float, float]]:
        """Constant-value segments ``(start, end, value)`` clipped to
        ``[t0, t1]``, including the implicit leading 0 segment."""
        if t1 <= t0:
            return
        value = 0.0
        cursor = t0
        for t, v in self.samples:
            if t >= t1:
                break
            if t > cursor:
                yield cursor, t, value
                cursor = t
            value = v
        if cursor < t1:
            yield cursor, t1, value

    def time_average(self, t0: float, t1: float) -> float:
        """Time-weighted mean value over ``[t0, t1]``."""
        if t1 <= t0:
            return 0.0
        total = sum((end - start) * value for start, end, value in self._segments(t0, t1))
        return total / (t1 - t0)

    def busy_fraction(self, t0: float, t1: float, threshold: float = 0.0) -> float:
        """Fraction of ``[t0, t1]`` during which the value exceeds
        ``threshold`` (e.g. "a flow was active on this link")."""
        if t1 <= t0:
            return 0.0
        busy = sum(
            end - start
            for start, end, value in self._segments(t0, t1)
            if value > threshold
        )
        return busy / (t1 - t0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name} value={self.value} samples={len(self.samples)}>"


class MetricsRegistry:
    """Name-indexed counters and gauges, created on first use."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, node: int = 0) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name, node)
        return gauge
