"""Tests for the compute-node model."""

import pytest

from repro.cluster import Node, NodeSpec
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestNodeSpec:
    def test_defaults_match_paper_cluster(self):
        spec = NodeSpec()
        # 2x Cascade Lake 6252: 24 cores / 48 threads each.
        assert spec.cores == 48
        assert spec.threads == 96
        assert spec.speed == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"cores": 4, "threads": 2},
            {"speed": 0.0},
            {"speed": -1.0},
            {"memory_bytes": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NodeSpec(**kwargs)


class TestNode:
    def test_compute_time_scales_with_speed(self, sim):
        fast = Node(sim, 0, NodeSpec(cores=1, threads=1, speed=2.0))
        slow = Node(sim, 1, NodeSpec(cores=1, threads=1, speed=0.5))
        assert fast.compute_time(10.0) == 5.0
        assert slow.compute_time(10.0) == 20.0

    def test_negative_compute_rejected(self, sim):
        node = Node(sim, 0, NodeSpec())
        with pytest.raises(ValueError):
            node.compute_time(-1.0)

    def test_compute_occupies_one_thread(self, sim):
        node = Node(sim, 0, NodeSpec(cores=1, threads=2))
        finished = []

        def job(jid):
            yield from node.compute(1.0)
            finished.append((jid, sim.now))

        for jid in range(3):
            sim.process(job(jid))
        sim.run()
        # 2 hardware threads: jobs 0 and 1 finish at t=1, job 2 at t=2.
        assert finished == [(0, 1.0), (1, 1.0), (2, 2.0)]

    def test_core_released_after_compute(self, sim):
        node = Node(sim, 0, NodeSpec(cores=1, threads=1))

        def job():
            yield from node.compute(1.0)

        sim.process(job())
        sim.run()
        assert node.cpu.in_use == 0
