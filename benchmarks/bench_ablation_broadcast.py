"""Ablation E: the one-to-many broadcast event (§7 future work).

"There are currently no optimizations regarding one-to-many data
transfers ... We are currently working to automatically detect such
communication cases using the task graph itself, implementing a
broadcast event that can distribute the data to many nodes without any
intervention from the head node at each communication."

We implemented that extension (:meth:`EventSystem.broadcast`).  This
bench compares distributing one buffer from a worker to N workers via
N point-to-point exchange events (the paper's current state) against a
single binomial-tree broadcast event.
"""

from __future__ import annotations

from figutil import BANDWIDTH  # noqa: F401
from repro.bench.report import format_table
from repro.cluster.machine import Cluster, ClusterSpec, NetworkSpec
from repro.core.config import OMPCConfig
from repro.core.events import EventSystem
from repro.mpi.comm import MpiWorld
from repro.util.units import MB


def distribute(nodes: int, nbytes: float, use_broadcast: bool) -> float:
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes + 2, network=NetworkSpec(vcis=4))
    )
    mpi = MpiWorld(cluster)
    events = EventSystem(cluster, mpi, OMPCConfig(broadcast_events=use_broadcast))
    events.start()
    src = 1
    dsts = list(range(2, nodes + 2))

    def main_proc():
        yield from events.submit(src, 0, None, nbytes)
        if use_broadcast:
            yield from events.broadcast(src, dsts, 0, nbytes)
        else:
            for dst in dsts:
                yield from events.exchange(src, dst, 0, nbytes)
        yield from events.shutdown()

    proc = cluster.sim.process(main_proc(), name="driver")
    cluster.sim.run(until=proc)
    return cluster.sim.now


class TestAblationBroadcast:
    def test_bench_broadcast_beats_serial_exchanges(self, benchmark):
        def sweep():
            return {
                "p2p": distribute(8, 64 * MB, use_broadcast=False),
                "broadcast": distribute(8, 64 * MB, use_broadcast=True),
            }

        times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # The binomial tree parallelizes the fan-out (log2 depth) and
        # removes per-destination head orchestration.
        assert times["broadcast"] < times["p2p"] * 0.7


def main() -> None:
    rows = []
    for n in (2, 4, 8, 16):
        rows.append(
            [
                n,
                distribute(n, 64 * MB, use_broadcast=False),
                distribute(n, 64 * MB, use_broadcast=True),
            ]
        )
    print(
        format_table(
            ["destinations", "p2p exchanges (s)", "broadcast event (s)"],
            rows,
            title="Ablation E — one-to-many distribution of a 64 MB buffer",
        )
    )


if __name__ == "__main__":
    main()
