"""ASCII Gantt rendering of task schedules.

Turns the ``task_intervals`` + assignment of a run into a per-node
timeline, the text equivalent of the schedule plots used to debug task
runtimes.  Deterministic and dependency-free, so tests can assert on
the rendering.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

#: Glyphs cycled across tasks so adjacent bars are distinguishable.
_GLYPHS = "█▓▒░#%@*+="


def render_gantt(
    intervals: Mapping[int, tuple[float, float]],
    assignment: Mapping[int, int],
    names: Mapping[int, str] | None = None,
    width: int = 80,
    title: str = "",
) -> str:
    """Render one row per node, one glyph-run per task.

    ``intervals`` maps task id to (start, end) in simulated seconds;
    ``assignment`` maps task id to node.  Tasks shorter than one column
    still get one glyph.  Overlapping tasks on a node (concurrent
    execution) merge visually; the summary line counts them.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if not intervals:
        return (title + "\n" if title else "") + "(no tasks)"

    t_end = max(end for _s, end in intervals.values())
    t_end = t_end or 1.0
    scale = (width - 1) / t_end

    rows: dict[int, list[str]] = defaultdict(lambda: [" "] * width)
    counts: dict[int, int] = defaultdict(int)
    for i, (task_id, (start, end)) in enumerate(sorted(intervals.items())):
        node = assignment[task_id]
        counts[node] += 1
        a = int(start * scale)
        b = max(int(end * scale), a + 1)
        glyph = _GLYPHS[i % len(_GLYPHS)]
        row = rows[node]
        for col in range(a, min(b, width)):
            row[col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"time: 0 .. {t_end:.4f}s  ({len(intervals)} tasks)")
    for node in sorted(rows):
        lines.append(f"node {node:3d} |{''.join(rows[node])}| {counts[node]} tasks")
    return "\n".join(lines)


def utilization(
    intervals: Mapping[int, tuple[float, float]],
    assignment: Mapping[int, int],
    makespan: float,
) -> dict[int, float]:
    """Busy-time fraction per node (overlaps merged)."""
    if makespan <= 0:
        raise ValueError("makespan must be > 0")
    per_node: dict[int, list[tuple[float, float]]] = defaultdict(list)
    for task_id, span in intervals.items():
        per_node[assignment[task_id]].append(span)
    result = {}
    for node, spans in per_node.items():
        spans.sort()
        busy = 0.0
        cur_start, cur_end = spans[0]
        for start, end in spans[1:]:
            if start > cur_end:
                busy += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        busy += cur_end - cur_start
        result[node] = busy / makespan
    return result
