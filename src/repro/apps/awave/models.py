"""Synthetic 2-D velocity models with Sigsbee/Marmousi-like structure.

The published datasets are licensed; these generators produce models
with the same *qualitative* features the paper's experiment depends on:

* ``sigsbee_like`` — a water layer over a sediment gradient with an
  embedded high-velocity salt body of irregular outline (Sigsbee's
  defining feature is the 4480 m/s constant-velocity salt intrusion in
  slow sediments);
* ``marmousi_like`` — many thin, dipping, folded layers with strong
  lateral and vertical velocity variation, cut by steep faults
  (Marmousi's defining feature).

Velocities are in m/s on regular grids with equal spacing in x and z.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_rng


@dataclass(frozen=True)
class VelocityModel:
    """A 2-D P-wave velocity model."""

    name: str
    vp: np.ndarray  # shape (nz, nx), m/s
    dx: float  # grid spacing in meters

    def __post_init__(self) -> None:
        if self.vp.ndim != 2:
            raise ValueError("vp must be 2-D (nz, nx)")
        if self.dx <= 0:
            raise ValueError("dx must be > 0")
        if float(self.vp.min()) <= 0:
            raise ValueError("velocities must be positive")

    @property
    def nz(self) -> int:
        return self.vp.shape[0]

    @property
    def nx(self) -> int:
        return self.vp.shape[1]

    @property
    def vmax(self) -> float:
        return float(self.vp.max())

    @property
    def vmin(self) -> float:
        return float(self.vp.min())

    def smoothed(self, sigma_cells: int = 8) -> "VelocityModel":
        """A migration-velocity version: reflectivity smoothed away.

        RTM migrates with a smooth background model so the imaging
        condition recovers the discontinuities.  Box-blur applied
        ``sigma_cells`` times along each axis (no scipy dependency in
        the core path).
        """
        if sigma_cells < 0:
            raise ValueError("sigma_cells must be >= 0")
        v = self.vp.astype(np.float64, copy=True)
        for _ in range(sigma_cells):
            padded = np.pad(v, 1, mode="edge")
            v = (
                padded[:-2, 1:-1] + padded[2:, 1:-1]
                + padded[1:-1, :-2] + padded[1:-1, 2:]
                + padded[1:-1, 1:-1]
            ) / 5.0
        return VelocityModel(f"{self.name}-smooth", v, self.dx)


def sigsbee_like(
    nx: int = 200, nz: int = 120, dx: float = 15.0, seed: int = 0
) -> VelocityModel:
    """Water + sediment gradient + irregular 4480 m/s salt body."""
    rng = derive_rng(seed, "sigsbee")
    z = np.arange(nz)[:, None]
    x = np.arange(nx)[None, :]

    water_depth = max(2, nz // 8)
    vp = np.where(
        z < water_depth,
        1492.0,  # water
        1500.0 + (z - water_depth) * (3000.0 / nz),  # sediment gradient
    ).astype(np.float64)
    vp = np.broadcast_to(vp, (nz, nx)).copy()

    # Salt body: a lumpy blob described by a wandering top and bottom.
    cx = nx // 2
    half_width = nx // 4
    top_base = nz // 3
    bottom_base = 2 * nz // 3
    wobble_top = rng.normal(0.0, nz * 0.02, size=nx).cumsum()
    wobble_top -= wobble_top.mean()
    wobble_bot = rng.normal(0.0, nz * 0.02, size=nx).cumsum()
    wobble_bot -= wobble_bot.mean()
    top = np.clip(top_base + wobble_top, water_depth + 2, nz - 4)
    bottom = np.clip(bottom_base + wobble_bot, top + 2, nz - 2)
    inside_x = np.abs(np.arange(nx) - cx) <= half_width
    salt_mask = inside_x[None, :] & (z >= top[None, :]) & (z <= bottom[None, :])
    vp[salt_mask] = 4480.0  # Sigsbee's constant salt velocity
    return VelocityModel("sigsbee-like", vp, dx)


def marmousi_like(
    nx: int = 200, nz: int = 120, dx: float = 12.5, seed: int = 0
) -> VelocityModel:
    """Thin dipping folded layers with faults, 1500–4700 m/s."""
    rng = derive_rng(seed, "marmousi")
    x = np.arange(nx)[None, :]
    z = np.arange(nz)[:, None]

    # Folded, dipping stratigraphy: depth coordinate warped by dip and
    # a couple of sinusoidal folds.
    dip = rng.uniform(0.1, 0.25)
    fold1 = nz * 0.06 * np.sin(2 * np.pi * x / (nx * rng.uniform(0.5, 0.9)))
    fold2 = nz * 0.03 * np.sin(2 * np.pi * x / (nx * rng.uniform(0.2, 0.4)))
    horizon = z - dip * x - fold1 - fold2

    # Steep normal faults shift the horizon field blockwise.
    num_faults = 3
    fault_positions = np.sort(rng.integers(nx // 5, 4 * nx // 5, num_faults))
    for fx in fault_positions:
        throw = rng.uniform(0.03, 0.08) * nz
        horizon = horizon + np.where(x >= fx, throw, 0.0)

    # Many thin layers: velocity increases with (warped) depth, with
    # per-layer jitter for strong vertical contrast.
    num_layers = 25
    layer_of = np.clip(
        (horizon / nz * num_layers).astype(int), 0, num_layers - 1
    )
    base = np.linspace(1500.0, 4700.0, num_layers)
    jitter = rng.normal(0.0, 120.0, num_layers)
    layer_vel = np.clip(base + jitter, 1450.0, 4800.0)
    vp = layer_vel[layer_of]

    # Water layer on top.
    water_depth = max(2, nz // 12)
    vp[:water_depth, :] = 1500.0
    return VelocityModel("marmousi-like", vp.astype(np.float64), dx)
