"""Overload ablation: a million-user day against the elastic manager.

The :class:`~repro.jobs.OverloadTrace` replays a bursty multi-tenant
day — quiet, ramp, spike, decay — through the
:class:`~repro.jobs.ElasticJobManager` at 1x/3x/10x the baseline load.
At 1x the cluster absorbs everything; at 3x and 10x the protection
machinery must degrade *gracefully*: per-tenant token buckets and the
bounded queue shed the excess (every shed job gets a reason, none
vanish), the autoscaler onlines parked nodes through a warm-up cost,
high-priority interactive jobs preempt preemptible batch work, and the
fixed handful of poison jobs lands in the dead-letter queue instead of
crash-looping.  The SLO claim: p99 bounded slowdown of *admitted* jobs
stays within the configured bound at every load level — overload costs
admission, not latency.

Determinism: the trace, the buckets, the autoscaler, and victim
selection are all seeded/pure, so a run replays bit-identical from its
seed — asserted here and pinned exactly by the CI overload-smoke job.
"""

from __future__ import annotations

from repro.bench.jobscmd import (
    OVERLOAD_NODES,
    OVERLOAD_SEED,
    overload_counts,
    overload_trace,
    run_overload,
)
from repro.bench.report import format_table

LOADS = (1.0, 3.0, 10.0)


def schedule_of(report):
    """The comparable essence of a run: every job's exact outcome."""
    return [
        (r.name, r.state, r.start_time, r.finish_time, r.requeues, r.error)
        for r in report.records
    ]


class TestAblationOverload:
    def test_bench_overload_degrades_gracefully(self, benchmark):
        def sweep():
            return {
                load: run_overload("backfill", load=load, quick=True)
                for load in LOADS
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        for load, (_mgr, report) in results.items():
            # No job silently lost: every submission is accounted for.
            assert report.accounted == report.total_jobs, (
                f"load {load}: accounting identity broken"
            )
            assert report.running == 0  # run() drains fully
            # Admitted jobs met the latency SLO even under overload.
            assert report.p99_bounded_slowdown <= report.slo_bounded_slowdown
            assert report.slo_attainment == 1.0
        r1, r10 = results[1.0][1], results[10.0][1]
        # The 1x day is business as usual: nothing shed.
        assert r1.shed == 0
        # 10x overload sheds most of the flood but still completes real
        # work, and the poison jobs are quarantined, not crash-looped.
        assert r10.shed_fraction > 0.5
        assert r10.completed >= r1.completed * 0.5
        assert results[1.0][0].dead_letters.by_kind().get("failures", 0) >= 1

    def test_bench_preemption_and_autoscaling_engage(self, benchmark):
        def run():
            return run_overload("backfill", load=3.0, quick=True)

        manager, report = benchmark.pedantic(run, rounds=1, iterations=1)
        # The spike forced scale-ups; the decay allowed scale-downs.
        assert manager.autoscaler.scale_ups >= 1
        assert manager.autoscaler.scale_downs >= 1
        # Interactive jobs evicted batch work at least once.
        assert report.preempted >= 1

    def test_bench_seeded_replay_is_identical(self, benchmark):
        def twice():
            return (run_overload("backfill", load=3.0, quick=True),
                    run_overload("backfill", load=3.0, quick=True))

        (m1, r1), (m2, r2) = benchmark.pedantic(twice, rounds=1, iterations=1)
        assert schedule_of(r1) == schedule_of(r2)
        assert overload_counts(m1, r1) == overload_counts(m2, r2)
        assert m1.dead_letters.records == m2.dead_letters.records


def lint_scenarios(quick: bool = True) -> int:
    """Lint every distinct program shape in the overload trace through
    the PR 5 analysis subsystem (the ``bench check`` machinery)."""
    from repro.analysis import lint_program

    findings = 0
    seen: set[str] = set()
    for _arrival, spec in overload_trace(quick=quick):
        # One lint per job class (batch/interactive/poison share shapes).
        key = spec.name[0]
        if key in seen:
            continue
        seen.add(key)
        program = spec.program()
        issues = lint_program(program)
        errors = [f for f in issues if f.severity.name == "ERROR"]
        findings += len(errors)
        status = f"{len(errors)} error(s)" if errors else "clean"
        print(f"  lint {spec.name} ({program.name}): {status}")
    return findings


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json as jsonlib

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=OVERLOAD_SEED)
    parser.add_argument("--loads", type=float, nargs="+",
                        default=list(LOADS))
    parser.add_argument("--policy", default="backfill")
    parser.add_argument("--quick", action="store_true",
                        help="half-length trace for smoke tests")
    parser.add_argument("--json", default=None,
                        help="write exact per-load counts to this file")
    parser.add_argument("--check", action="store_true",
                        help="lint the trace's program shapes through "
                        "the analysis subsystem and exit")
    args = parser.parse_args(argv)

    if args.check:
        errors = lint_scenarios(quick=args.quick)
        print(f"scenario lint: {errors} error-level finding(s)")
        return 1 if errors else 0

    rows = []
    payload = {}
    for load in args.loads:
        manager, report = run_overload(
            args.policy, seed=args.seed, load=load, quick=args.quick
        )
        counts = overload_counts(manager, report)
        payload[f"{load:g}x"] = counts
        rows.append([
            f"{load:g}x",
            counts["submitted"],
            counts["completed"],
            f"{report.shed_fraction * 100:.1f}",
            counts["dead_lettered"],
            counts["preempted"],
            counts["scale_ups"],
            f"{counts['p99_bounded_slowdown']:.2f}",
            f"{counts['slo_attainment'] * 100:.0f}",
        ])
        assert report.accounted == report.total_jobs
    print(format_table(
        ["load", "jobs", "done", "shed %", "DLQ", "preempt",
         "scale-ups", "p99 b.slow", "SLO %"],
        rows,
        title=(
            f"Ablation E — overload protection on a "
            f"{OVERLOAD_NODES - 1}-node elastic pool "
            f"(seed {args.seed}, policy {args.policy}"
            f"{', quick' if args.quick else ''})"
        ),
    ))
    if args.json:
        with open(args.json, "w") as fh:
            jsonlib.dump(payload, fh, indent=2, sort_keys=True)
        print(f"exact counts -> {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
