"""Interconnect model: full-duplex NICs, VCI channel pools, and
fair-share bandwidth.

The paper's cluster uses 100 Gb/s InfiniBand with MPICH compiled for up
to 64 Virtual Communication Interfaces (VCIs), letting multi-threaded
ranks drive several hardware contexts concurrently (§6.1, [37]).

Model
-----
* Each node owns a :class:`Nic` with independent **TX** and **RX**
  sides (InfiniBand is full duplex).  Each side has ``vcis`` channels:
  a transfer must hold one TX channel at the sender and one RX channel
  at the receiver for its whole serialization.  With more concurrent
  flows than channels, later flows queue behind earlier ones —
  head-of-line blocking, exactly the contention VCIs remove.
* Admitted flows progress under a **fluid fair-share** discipline: at
  any instant a flow's rate is ``min(B/tx_active(src), B/rx_active(dst))``
  where ``B`` is the line rate and the counts are the flows currently
  admitted on each side.  Rates are recomputed whenever a flow starts
  or finishes, so a NIC's aggregate never exceeds the line rate.
* Propagation ``latency`` is charged after serialization without
  occupying channels.  Same-node transfers use a separate memcpy path.

Transfers acquire TX before RX and never wait on TX while holding RX,
so hold-and-wait cycles are impossible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.observer import NULL_OBSERVER
from repro.sim.core import Event, Simulator
from repro.sim.resources import Resource
from repro.util.units import Gbps, MICROSECOND


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect parameters.

    Defaults model the paper's fabric: 100 Gb/s links, ~1.5 µs port-to-port
    latency (typical EDR InfiniBand), 64 VCIs per direction, and a
    20 GB/s intra-node memcpy path for same-node "transfers".
    """

    latency: float = 1.5 * MICROSECOND
    bandwidth: float = Gbps(100.0)
    vcis: int = 64
    local_bandwidth: float = 20e9
    local_latency: float = 0.5 * MICROSECOND

    def __post_init__(self) -> None:
        if self.latency < 0 or self.local_latency < 0:
            raise ValueError("latencies must be >= 0")
        if self.bandwidth <= 0 or self.local_bandwidth <= 0:
            raise ValueError("bandwidths must be > 0")
        if self.vcis < 1:
            raise ValueError("vcis must be >= 1")

    def wire_time(self, nbytes: float) -> float:
        """Uncontended wire time for a message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.latency + nbytes / self.bandwidth


class Nic:
    """Per-node full-duplex network interface."""

    def __init__(self, sim: Simulator, node_id: int, spec: NetworkSpec):
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        self.tx_channels = Resource(sim, capacity=spec.vcis, name=f"nic{node_id}.tx")
        self.rx_channels = Resource(sim, capacity=spec.vcis, name=f"nic{node_id}.rx")
        #: Flows currently serializing in each direction.
        self.tx_active = 0
        self.rx_active = 0
        #: Cumulative bytes through this NIC (diagnostics / tests).
        self.bytes_sent = 0
        self.bytes_received = 0


class _Flow:
    """One in-progress transfer under the fluid model."""

    __slots__ = ("src", "dst", "remaining", "rate", "done", "tx_nic", "rx_nic")

    def __init__(self, src: int, dst: int, nbytes: float, done: Event,
                 tx_nic: Nic, rx_nic: Nic):
        self.src = src
        self.dst = dst
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.done = done
        # Endpoint NICs, resolved once: the rebalance loop reads their
        # active counters for every flow on every epoch.
        self.tx_nic = tx_nic
        self.rx_nic = rx_nic


class Network:
    """The cluster fabric: one NIC per node plus the fluid flow engine."""

    def __init__(self, sim: Simulator, num_nodes: int, spec: NetworkSpec | None = None):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.sim = sim
        self.spec = spec or NetworkSpec()
        self.nics = [Nic(sim, i, self.spec) for i in range(num_nodes)]
        #: Observability sink; ``Cluster.install_observer`` swaps in a
        #: recording observer, which then sees per-link flow-count
        #: gauges and byte counters (the utilization report's input).
        self.obs = NULL_OBSERVER
        #: Installed transient-fault state (see :mod:`repro.core.faultmodel`);
        #: ``None`` models the paper's clean fabric.  When set, transfers
        #: honour link-degradation windows and node-hang holds, and the
        #: MPI layer consults it for message-drop decisions.
        self.faults = None
        #: Total bytes moved across the fabric (excludes same-node copies).
        self.total_bytes = 0
        #: Total number of inter-node messages.
        self.total_messages = 0
        self._flows: dict[_Flow, None] = {}
        self._last_update = 0.0
        self._epoch = 0
        #: Cached per-pair event names ("flow:s->d"); bounded by n².
        self._flow_names: dict[tuple[int, int], str] = {}

    @property
    def num_nodes(self) -> int:
        return len(self.nics)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self.nics):
            raise ValueError(f"node {node} out of range [0, {len(self.nics)})")

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Uncontended end-to-end time for a transfer (for cost models)."""
        self._check_node(src)
        self._check_node(dst)
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if src == dst:
            return self.spec.local_latency + nbytes / self.spec.local_bandwidth
        return self.spec.latency + nbytes / self.spec.bandwidth

    # ------------------------------------------------------------------
    # fluid flow engine
    # ------------------------------------------------------------------
    def _advance_flows(self) -> None:
        """Account progress of every active flow up to the present."""
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                left = flow.remaining - flow.rate * elapsed
                flow.remaining = left if left > 0.0 else 0.0
        self._last_update = now

    def _rebalance(self) -> None:
        """Recompute fair-share rates and schedule the next completion.

        Rates are piecewise constant between rebalances, so only the
        *earliest* completion in the current epoch can actually happen —
        one authoritative timer per epoch suffices.  (The first version
        scheduled a timer per flow per epoch; with F concurrent flows
        that is O(F²) heap events, almost all of them stale no-ops, and
        it dominated the fig5 profile.)  The ETA arithmetic and the
        first-minimal tie-break below reproduce the per-flow-timer
        behavior exactly: completions happen at bit-identical times in
        the identical order.
        """
        self._epoch += 1
        now = self.sim.now
        # Fused progress accounting (one pass over the flows instead of
        # an ``_advance_flows`` pass followed by a rate pass): a flow's
        # new rate depends only on the NIC counters, which progress
        # accounting never touches, so advancing and re-rating in the
        # same iteration computes the exact same values.
        elapsed = now - self._last_update
        self._last_update = now
        advance = elapsed > 0
        bw = self.spec.bandwidth
        faults = self.faults
        next_flow: _Flow | None = None
        next_eta = 0.0
        next_when = 0.0
        for flow in self._flows:
            if advance:
                left = flow.remaining - flow.rate * elapsed
                flow.remaining = left if left > 0.0 else 0.0
            tx_n = flow.tx_nic.tx_active
            rx_n = flow.rx_nic.rx_active
            rate = bw / tx_n if tx_n > rx_n else bw / rx_n
            if faults is not None:
                # Degradation windows scale a flow's share; installed
                # fault plans schedule a rebalance at each window edge,
                # so the piecewise-constant rate stays exact.
                rate *= faults.bandwidth_factor(flow.src, flow.dst, now)
            flow.rate = rate
            eta = flow.remaining / rate if rate > 0 else 0.0
            # Compare rounded *fire times*, not raw ETAs: the per-flow
            # timers sat on the heap keyed by ``now + eta``, so two
            # distinct ETAs whose sums round to the same float were a
            # tie, resolved by insertion (= iteration) order.  Strict
            # ``<`` on the same sum reproduces that winner exactly.
            when = now + eta
            if next_flow is None or when < next_when:
                next_flow = flow
                next_eta = eta
                next_when = when
        if next_flow is not None:
            timer = self.sim.timeout(next_eta)
            timer.add_callback(
                lambda ev, f=next_flow, e=self._epoch: self._on_timer(f, e)
            )

    def _on_timer(self, flow: _Flow, epoch: int) -> None:
        # A stale timer (another rebalance happened since scheduling) is
        # ignored; that rebalance scheduled the authoritative successor.
        if epoch != self._epoch or flow not in self._flows:
            return
        self._advance_flows()
        flow.remaining = 0.0
        self._flows.pop(flow, None)
        flow.tx_nic.tx_active -= 1
        flow.rx_nic.rx_active -= 1
        flow.done.succeed()
        self._rebalance()

    def _start_flow(self, src: int, dst: int, nbytes: float) -> Event:
        name = self._flow_names.get((src, dst))
        if name is None:
            name = f"flow:{src}->{dst}"
            self._flow_names[(src, dst)] = name
        done = self.sim.event(name)
        if nbytes <= 0:
            done.succeed()
            return done
        tx_nic = self.nics[src]
        rx_nic = self.nics[dst]
        flow = _Flow(src, dst, nbytes, done, tx_nic, rx_nic)
        self._flows[flow] = None
        tx_nic.tx_active += 1
        rx_nic.rx_active += 1
        self._rebalance()
        return done

    # ------------------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: float):
        """Process generator performing a timed transfer.

        Use as ``yield from net.transfer(src, dst, nbytes)``.  Holds one
        TX channel at the source and one RX channel at the destination
        for the (contended) serialization time; the propagation latency
        is charged after the channels are released.
        """
        self._check_node(src)
        self._check_node(dst)
        if not 0.0 <= nbytes < float("inf"):
            # Also rejects NaN/inf: a non-finite size would poison the
            # fluid-rate arithmetic and hang the flow engine.
            raise ValueError(f"nbytes must be finite and >= 0, got {nbytes!r}")

        if src == dst:
            yield self.sim.timeout(
                self.spec.local_latency + nbytes / self.spec.local_bandwidth
            )
            return

        if self.faults is not None:
            # A hung endpoint's NIC is silent: hold the transfer (without
            # occupying channels) until the hang window closes.  Flows
            # already serializing are not paused — the hold models
            # admission at the NIC, which keeps the fluid model simple.
            release = self.faults.hold_until(src, dst, self.sim.now)
            if release > self.sim.now:
                yield self.sim.timeout(release - self.sim.now)

        yield self.nics[src].tx_channels.request()
        yield self.nics[dst].rx_channels.request()
        obs = self.obs
        if obs.enabled:
            obs.gauge_add(f"link.{src}->{dst}", 1, node=src)
        try:
            yield self._start_flow(src, dst, nbytes)
        finally:
            if obs.enabled:
                obs.gauge_add(f"link.{src}->{dst}", -1, node=src)
                obs.count(f"link.{src}->{dst}.bytes", nbytes)
            self.nics[dst].rx_channels.release()
            self.nics[src].tx_channels.release()
        latency = self.spec.latency
        if self.faults is not None:
            latency *= self.faults.latency_factor(src, dst, self.sim.now)
        yield self.sim.timeout(latency)

        self.nics[src].bytes_sent += int(nbytes)
        self.nics[dst].bytes_received += int(nbytes)
        self.total_bytes += int(nbytes)
        self.total_messages += 1
