"""Observer unit tests plus end-to-end tracing through the OMPC stack."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import OMPCConfig, OMPCRuntime
from repro.obs import NULL_OBSERVER, Observer
from repro.omp import OmpProgram
from repro.omp.task import depend_inout


class FakeSim:
    def __init__(self):
        self.now = 0.0


class TestObserver:
    def test_begin_end_records_span_at_sim_times(self):
        sim = FakeSim()
        obs = Observer(sim)
        open_span = obs.begin("task", "t", 1, task_id=7)
        sim.now = 2.5
        span = obs.end(open_span, extra=1)
        assert (span.start, span.end, span.node) == (0.0, 2.5, 1)
        assert dict(span.args) == {"task_id": 7, "extra": 1}

    def test_end_of_none_is_noop(self):
        obs = Observer(FakeSim())
        assert obs.end(None) is None
        assert obs.spans == []

    def test_instant_has_zero_duration(self):
        sim = FakeSim()
        sim.now = 3.0
        obs = Observer(sim)
        span = obs.instant("mpi", "recv", 2)
        assert span.start == span.end == 3.0

    def test_flow_ids_are_unique_and_positive(self):
        obs = Observer(FakeSim())
        ids = {obs.new_flow() for _ in range(10)}
        assert len(ids) == 10
        assert all(i > 0 for i in ids)

    def test_find_filters(self):
        obs = Observer(FakeSim())
        obs.span("task", "a", 0, 0.0, 1.0)
        obs.span("mpi", "a", 1, 0.0, 1.0)
        assert len(list(obs.find(cat="task"))) == 1
        assert len(list(obs.find(node=1))) == 1
        assert len(list(obs.find(name="a"))) == 2

    def test_null_observer_is_inert(self):
        assert NULL_OBSERVER.enabled is False
        assert NULL_OBSERVER.begin("task", "t", 0) is None
        assert NULL_OBSERVER.end(None) is None
        assert NULL_OBSERVER.new_flow() == 0
        assert list(NULL_OBSERVER.find()) == []
        assert NULL_OBSERVER.categories() == set()


def two_task_program():
    prog = OmpProgram("traced")
    data = np.zeros(64)
    buf = prog.buffer(nbytes=data.nbytes, data=data, name="A")
    prog.target_enter_data(buf)
    prog.target(fn=None, depend=[depend_inout(buf)], cost=0.01, name="foo")
    prog.target(fn=None, depend=[depend_inout(buf)], cost=0.01, name="bar")
    prog.target_exit_data(buf)
    return prog


class TestTracedRun:
    def run_traced(self, **cfg_kwargs):
        cfg = OMPCConfig(trace=True, **cfg_kwargs)
        runtime = OMPCRuntime(ClusterSpec(num_nodes=3), cfg)
        result = runtime.run(two_task_program())
        return runtime, result

    def test_untraced_run_has_no_observer(self):
        runtime = OMPCRuntime(ClusterSpec(num_nodes=3))
        result = runtime.run(two_task_program())
        assert result.obs is None
        assert runtime.last_cluster.obs is NULL_OBSERVER

    def test_traced_run_exposes_observer_with_all_categories(self):
        _runtime, result = self.run_traced()
        assert result.obs is not None
        assert {"task", "sched", "data", "mpi", "ompc"} <= result.obs.categories()

    def test_task_lifecycle_spans_present(self):
        _runtime, result = self.run_traced()
        for phase in ("wait-slot", "fetch", "execute", "commit"):
            assert any(result.obs.find("task", f"foo:{phase}")), phase
        # The worker-side kernel span lives on the assigned node.
        kernels = list(result.obs.find("task", "foo:kernel"))
        assert kernels and all(s.node != 0 for s in kernels)

    def test_sched_phase_spans_match_config(self):
        _runtime, result = self.run_traced()
        (startup,) = result.obs.find("sched", "startup")
        assert startup.duration == pytest.approx(OMPCConfig().startup_time)
        assert any(result.obs.find("sched", "heft"))
        assert any(result.obs.find("sched", "shutdown"))

    def test_message_flows_pair_up(self):
        _runtime, result = self.run_traced()
        sends = {
            s.flow_id for s in result.obs.find("mpi")
            if s.flow_phase == "s"
        }
        recvs = {
            s.flow_id for s in result.obs.find("mpi")
            if s.flow_phase == "f"
        }
        assert sends and sends == recvs

    def test_tracing_does_not_change_simulated_time(self):
        runtime = OMPCRuntime(ClusterSpec(num_nodes=3))
        baseline = runtime.run(two_task_program())
        _runtime, traced = self.run_traced()
        assert traced.makespan == pytest.approx(baseline.makespan)

    def test_gauges_cover_links_cpu_queues_and_head_slots(self):
        _runtime, result = self.run_traced()
        gauges = result.obs.metrics.gauges
        assert "head.inflight" in gauges
        assert any(name.startswith("link.") for name in gauges)
        assert any(name.endswith(".cpu_busy") for name in gauges)
        assert any(name.endswith(".evq") for name in gauges)
        assert gauges["head.inflight"].maximum() >= 1

    def test_transport_counters_copied_into_observer(self):
        _runtime, result = self.run_traced()
        counters = result.obs.metrics.counters
        assert "mpi.transport.drops" in counters
        assert any(name.startswith("ompc.events.") for name in counters)
