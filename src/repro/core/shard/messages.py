"""Wire protocol of the sharded control plane.

All manager-to-manager traffic rides one dedicated MPI *service*
communicator (excluded from the MPI checker, like the replication and
membership streams), with two tags:

``LEASE_TAG``
    consumer-shard → producer-shard subscription: "notify me when task
    ``producer_id`` completes".  Sent once per (consumer shard,
    producer task) at plane start-up — and re-sent idempotently after a
    manager failover, which closes the lost-notification window.
``NOTIFY_TAG``
    producer-shard → consumer-shard completion notification.  The
    consumer dedups by task id exactly like the PR 3 worker-side
    dispatch dedup, so a failover's replayed notifications are no-ops.

Payloads are plain tuples (cheap to simulate); the dataclasses below
are the typed views used for book-keeping and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Tags on the shard-plane service communicator.
LEASE_TAG = 1
NOTIFY_TAG = 2


@dataclass(frozen=True)
class Lease:
    """A subscription: ``subscriber_shard`` wants ``producer_id``'s
    completion."""

    producer_id: int
    subscriber_shard: int

    def wire(self) -> tuple:
        return ("lease", self.producer_id, self.subscriber_shard)


@dataclass(frozen=True)
class Notify:
    """A completion notification for ``producer_id``."""

    producer_id: int
    producer_shard: int

    def wire(self) -> tuple:
        return ("notify", self.producer_id, self.producer_shard)


def parse_lease(payload: tuple) -> Lease:
    kind, producer_id, subscriber_shard = payload
    if kind != "lease":
        raise ValueError(f"not a lease payload: {payload!r}")
    return Lease(producer_id, subscriber_shard)


def parse_notify(payload: tuple) -> Notify:
    kind, producer_id, producer_shard = payload
    if kind != "notify":
        raise ValueError(f"not a notify payload: {payload!r}")
    return Notify(producer_id, producer_shard)
