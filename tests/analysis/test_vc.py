"""Unit tests for the sparse vector clocks."""

from repro.analysis.vc import VectorClock, ordered


class TestVectorClock:
    def test_starts_empty(self):
        vc = VectorClock()
        assert len(vc) == 0
        assert vc.get(1) == 0

    def test_tick_increments_one_component(self):
        vc = VectorClock()
        vc.tick(3)
        vc.tick(3)
        assert vc.get(3) == 2
        assert vc.get(4) == 0

    def test_join_takes_componentwise_max(self):
        a = VectorClock()
        a.tick(1)
        a.tick(1)
        b = VectorClock()
        b.tick(2)
        a.join(b)
        assert a.get(1) == 2
        assert a.get(2) == 1

    def test_copy_is_independent(self):
        a = VectorClock()
        a.tick(1)
        b = a.copy()
        b.tick(1)
        assert a.get(1) == 1
        assert b.get(1) == 2

    def test_leq(self):
        a = VectorClock()
        a.tick(1)
        b = a.copy()
        b.tick(2)
        assert a.leq(b)
        assert not b.leq(a)

    def test_eq(self):
        a = VectorClock()
        a.tick(1)
        b = VectorClock()
        b.tick(1)
        assert a == b


class TestOrdered:
    def make(self):
        # ctx 1 happens before ctx 2: ctx 2's clock joins ctx 1's.
        a = VectorClock()
        a.tick(1)
        b = a.copy()
        b.tick(2)
        return a, b

    def test_happens_before_is_ordered(self):
        a, b = self.make()
        assert ordered(a, 1, b, 2)
        assert ordered(b, 2, a, 1)  # symmetric: either direction counts

    def test_concurrent_is_unordered(self):
        a = VectorClock()
        a.tick(1)
        b = VectorClock()
        b.tick(2)
        assert not ordered(a, 1, b, 2)
