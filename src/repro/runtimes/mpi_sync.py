"""The hand-written bulk-synchronous MPI Task Bench implementation.

This is the paper's strongest baseline: "the application can greatly
tailor its communication patterns and better distribute the program
execution" (§8).  One rank per node owns a contiguous block of points.
Each timestep is a classic BSP superstep:

1. compute every owned point of the step (in parallel on the node's
   cores);
2. exchange halo data — post all nonblocking receives and sends for the
   next step's remote inputs, then wait for all of them.

There is no runtime layer at all: no scheduler, no data manager, no
per-task bookkeeping — just the per-message MPI software overhead.
"""

from __future__ import annotations

from repro.cluster.machine import Cluster, ClusterSpec
from repro.mpi.comm import MpiWorld
from repro.mpi.request import Request
from repro.runtimes.base import TaskBenchRuntime, TBRunResult, block_owner, points_of
from repro.runtimes.calibration import MPI_SYNC, RuntimeCosts
from repro.sim.primitives import AllOf
from repro.taskbench.graph import TaskBenchSpec
from repro.taskbench.patterns import dependents


class MpiSyncRuntime(TaskBenchRuntime):
    """Rank-per-node BSP execution of Task Bench."""

    name = "MPI"

    def __init__(self, costs: RuntimeCosts = MPI_SYNC):
        self.costs = costs

    def run(self, spec: TaskBenchSpec, cluster_spec: ClusterSpec) -> TBRunResult:
        cluster = Cluster(cluster_spec)
        sim = cluster.sim
        mpi = MpiWorld(cluster, overhead=self.costs.per_message_overhead)
        n = cluster.num_nodes
        width = spec.width

        def msg_tag(step: int, producer_point: int) -> int:
            return step * width + producer_point + 1

        def node_proc(node_id: int):
            rank = mpi.world.rank(node_id)
            node = cluster.node(node_id)
            mine = points_of(node_id, width, n)
            if not mine:
                return

            def compute_point():
                yield node.cpu.request()
                try:
                    yield sim.timeout(node.compute_time(spec.kernel.duration))
                finally:
                    node.cpu.release()

            for step in range(spec.steps):
                # -- superstep phase 1: compute owned points --------------
                procs = [
                    sim.process(compute_point(), name=f"mpi-k{node_id}")
                    for _ in mine
                ]
                yield AllOf(sim, procs)

                # -- superstep phase 2: halo exchange for step+1 -----------
                if step + 1 >= spec.steps:
                    continue
                reqs: list[Request] = []
                # Sends: one message per (owned producer, remote consumer
                # rank) — consumers on the same rank share one copy.
                for p in mine:
                    consumer_ranks = {
                        block_owner(c, width, n)
                        for c in dependents(spec.pattern, width, step, p)
                    } - {node_id}
                    for dst in sorted(consumer_ranks):
                        reqs.append(
                            rank.isend(
                                dst, None, spec.output_bytes, msg_tag(step, p)
                            )
                        )
                # Receives: one message per distinct remote producer point.
                remote_producers = {
                    q
                    for p in mine
                    for q in spec.deps(step + 1, p)
                    if block_owner(q, width, n) != node_id
                }
                for q in sorted(remote_producers):
                    reqs.append(
                        rank.irecv(src=block_owner(q, width, n), tag=msg_tag(step, q))
                    )
                yield from Request.wait_all(reqs)

        for node_id in range(n):
            sim.process(node_proc(node_id), name=f"mpi-rank{node_id}")
        sim.run(check_deadlock=True)
        return TBRunResult(
            runtime=self.name,
            makespan=sim.now,
            network_bytes=cluster.network.total_bytes,
            network_messages=cluster.network.total_messages,
        )
