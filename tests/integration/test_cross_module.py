"""Cross-module integration tests.

These validate the reproduction's central semantic claim: the *same*
OpenMP program produces the *same numerical results* regardless of
which runtime executes it or how many nodes it runs on — only the
timing changes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core import FaultTolerantRuntime, OMPCConfig, OMPCRuntime
from repro.core.scheduler import MinLoadScheduler, RandomScheduler, RoundRobinScheduler
from repro.omp import OmpProgram
from repro.omp.host import HostRuntime
from repro.omp.task import Dep, DepType

FAST = OMPCConfig(
    startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
    event_origin_overhead=0.0, event_handler_overhead=0.0,
    task_creation_overhead=0.0, schedule_unit_cost=0.0,
)

clause = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.sampled_from([DepType.IN, DepType.OUT, DepType.INOUT]),
)
program_strategy = st.lists(
    st.lists(clause, min_size=1, max_size=3, unique_by=lambda c: c[0]),
    min_size=1,
    max_size=12,
)


def build_numeric_program(spec):
    """Each task mixes its read buffers into its written buffers with a
    task-unique, order-sensitive update, so any reordering of
    *dependent* tasks changes the result."""
    prog = OmpProgram()
    arrays = [np.ones(4) * (i + 1) for i in range(4)]
    buffers = [
        prog.buffer(arr.nbytes, data=arr, name=f"b{i}")
        for i, arr in enumerate(arrays)
    ]
    for task_id, clauses in enumerate(spec):
        deps = [Dep(buffers[bi], dt) for bi, dt in clauses]

        def body(*args, _clauses=tuple(clauses), _tid=task_id):
            reads = [
                a for a, (_bi, dt) in zip(args, _clauses) if dt.reads
            ]
            acc = sum(float(r.sum()) for r in reads) + _tid + 1.0
            for a, (_bi, dt) in zip(args, _clauses):
                if dt.writes:
                    a *= 0.5
                    a += acc * 1e-3

        prog.target(fn=body, depend=deps, cost=0.001)
    return prog, arrays


def snapshot(arrays):
    return [a.copy() for a in arrays]


class TestHostClusterEquivalence:
    @given(program_strategy)
    @settings(deadline=None, max_examples=25)
    def test_host_and_ompc_agree(self, spec):
        prog1, arrays1 = build_numeric_program(spec)
        HostRuntime(num_threads=4).run(prog1)
        host_result = snapshot(arrays1)

        prog2, arrays2 = build_numeric_program(spec)
        OMPCRuntime(ClusterSpec(num_nodes=4), FAST).run(prog2)
        for h, c in zip(host_result, arrays2):
            np.testing.assert_allclose(c, h)

    @given(program_strategy, st.integers(min_value=2, max_value=6))
    @settings(deadline=None, max_examples=20)
    def test_node_count_does_not_change_results(self, spec, nodes):
        prog1, arrays1 = build_numeric_program(spec)
        OMPCRuntime(ClusterSpec(num_nodes=2), FAST).run(prog1)
        baseline = snapshot(arrays1)

        prog2, arrays2 = build_numeric_program(spec)
        OMPCRuntime(ClusterSpec(num_nodes=nodes), FAST).run(prog2)
        for b, c in zip(baseline, arrays2):
            np.testing.assert_allclose(c, b)

    @given(program_strategy)
    @settings(deadline=None, max_examples=15)
    def test_scheduler_choice_does_not_change_results(self, spec):
        prog1, arrays1 = build_numeric_program(spec)
        OMPCRuntime(ClusterSpec(num_nodes=4), FAST).run(prog1)
        baseline = snapshot(arrays1)
        for scheduler in (
            RoundRobinScheduler(), RandomScheduler(seed=3), MinLoadScheduler()
        ):
            prog2, arrays2 = build_numeric_program(spec)
            OMPCRuntime(
                ClusterSpec(num_nodes=4), FAST, scheduler=scheduler
            ).run(prog2)
            for b, c in zip(baseline, arrays2):
                np.testing.assert_allclose(c, b)

    @given(program_strategy)
    @settings(deadline=None, max_examples=10)
    def test_fault_tolerant_runtime_without_failures_agrees(self, spec):
        prog1, arrays1 = build_numeric_program(spec)
        HostRuntime(num_threads=4).run(prog1)
        baseline = snapshot(arrays1)

        prog2, arrays2 = build_numeric_program(spec)
        FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST).run(prog2)
        for b, c in zip(baseline, arrays2):
            np.testing.assert_allclose(c, b)


class TestAwaveDecompositionInvariance:
    def test_image_independent_of_worker_count(self):
        """The stacked RTM image must not depend on how many workers the
        shots were spread over (shot decomposition is pure)."""
        from repro.apps.awave import RtmConfig, run_awave, sigsbee_like

        config = RtmConfig(nt=120, snapshot_every=5)
        images = []
        for workers in (1, 2, 4):
            model = sigsbee_like(nx=50, nz=36)
            res = run_awave(
                model, num_workers=workers, shots_per_worker=4 // workers,
                config=config, ompc_config=FAST,
            )
            assert res.num_shots == 4
            images.append(res.image)
        np.testing.assert_allclose(images[0], images[1])
        np.testing.assert_allclose(images[0], images[2])


class TestTaskBenchAcrossRuntimesTiming:
    def test_all_runtimes_agree_on_total_work(self):
        """Every runtime executes exactly width x steps kernel
        invocations' worth of compute (trivial pattern, so makespan equals
        total work / chains exactly for the BSP baseline)."""
        from repro.runtimes import all_runtimes
        from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec

        spec = TaskBenchSpec(4, 5, Pattern.NO_COMM, KernelSpec.from_duration(0.01))
        for rt in all_runtimes():
            res = rt.run(spec, ClusterSpec(num_nodes=4))
            # Chain-limited lower bound: 5 steps x 10 ms.
            assert res.makespan >= 0.05 - 1e-9
