"""Property tests for the tiered data plane.

Three invariants from the tiering design:

1. **Capacity**: a worker's physical device table never exceeds its
   configured capacity at any point in the run — the head plans
   evictions before allocations, so ``peak_bytes <= capacity_bytes``
   on every :class:`DeviceMemory` instance (peak is the running max
   over every table change, so this covers every event).
2. **Byte conservation**: values written in place survive spill to the
   host and read-through re-fetch — an oversubscribed run produces the
   same output arrays as an unlimited one.
3. **Digest stability**: with capacity that never pressures, enabling
   tiering leaves the event stream *bit identical* — same events, same
   times, same priorities, same total order.
"""

from __future__ import annotations

import hashlib
import struct
from contextlib import contextmanager

import numpy as np
import pytest

from repro.cluster.machine import ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.memory import DeviceMemory
from repro.core.runtime import OMPCRuntime
from repro.omp.api import OmpProgram
from repro.omp.task import Dep, DepType, depend_in, depend_out
from repro.sim.core import Simulator
from repro.util.units import MILLISECOND

KB = 1024.0


@contextmanager
def _tap_all_sims(digest):
    """Hash every processed event's (time, priority, name)."""
    orig = Simulator.__init__

    def tapped(self, *args, **kwargs):
        orig(self, *args, **kwargs)

        def tap(t, priority, event, _d=digest, _p=struct.pack):
            _d.update(_p("<dI", t, priority))
            _d.update(event.name.encode())

        self._event_tap = tap

    Simulator.__init__ = tapped
    try:
        yield
    finally:
        Simulator.__init__ = orig


@contextmanager
def _track_device_memories(instances):
    orig = DeviceMemory.__init__

    def tracked(self, *args, **kwargs):
        orig(self, *args, **kwargs)
        instances.append(self)

    DeviceMemory.__init__ = tracked
    try:
        yield
    finally:
        DeviceMemory.__init__ = orig


def pipeline_program(n=8, nbytes=2 * KB):
    """Stage → in-place increment (dirty sole copies) → reduce-out.

    The INOUT middle stage makes every staged buffer a *dirty* sole
    copy on its node, so capacity pressure exercises write-behind spill
    and read-through re-fetch, not just clean drops.
    """
    prog = OmpProgram("mem-prop")
    bufs = [prog.buffer(nbytes, data=np.zeros(4), name=f"b{i}")
            for i in range(n)]
    outs = [prog.buffer(nbytes, data=np.zeros(4), name=f"o{i}")
            for i in range(n)]
    prog.target_enter_data(*bufs)
    for i, b in enumerate(bufs):
        def bump(x, i=i):
            x += i + 1
        prog.target(bump, depend=[Dep(b, DepType.INOUT)],
                    cost=0.2 * MILLISECOND, name=f"bump{i}")
    for i, (b, o) in enumerate(zip(bufs, outs)):
        def copy(x, y):
            y[:] = 2 * x
        prog.target(copy, depend=[depend_in(b), depend_out(o)],
                    cost=0.2 * MILLISECOND, name=f"copy{i}")
    prog.target_exit_data(*outs)
    return prog, outs


class TestCapacityInvariant:
    @pytest.mark.parametrize("frac", [1.0, 0.5, 0.25])
    def test_physical_tables_never_exceed_capacity(self, frac):
        cap = max(2 * KB, frac * 8 * 2 * KB)
        cfg = OMPCConfig(device_memory_bytes=cap, eviction_policy="lru")
        instances: list[DeviceMemory] = []
        with _track_device_memories(instances):
            rt = OMPCRuntime(ClusterSpec(num_nodes=3), cfg)
            prog, outs = pipeline_program()
            rt.run(prog)
        assert instances, "no DeviceMemory was built"
        for mem in instances:
            if mem.capacity_bytes is not None and mem.node_id != 0:
                assert mem.peak_bytes <= mem.capacity_bytes, (
                    f"node {mem.node_id} peaked at {mem.peak_bytes} B "
                    f"over the {mem.capacity_bytes} B budget"
                )


class TestByteConservation:
    @pytest.mark.parametrize("policy", ["lru", "cost"])
    def test_spill_and_refetch_preserve_values(self, policy):
        # Unlimited reference.
        prog_ref, outs_ref = pipeline_program()
        OMPCRuntime(ClusterSpec(num_nodes=3), OMPCConfig()).run(prog_ref)
        reference = [o.data.copy() for o in outs_ref]
        assert any(r.any() for r in reference)

        # Half-capacity tiered run: dirty spills + re-fetches happen.
        cfg = OMPCConfig(device_memory_bytes=4 * 2 * KB,
                         eviction_policy=policy, trace=True)
        rt = OMPCRuntime(ClusterSpec(num_nodes=3), cfg)
        prog, outs = pipeline_program()
        rt.run(prog)
        counters = rt.last_cluster.trace.counters
        assert counters.get("mem.spill_bytes", 0) > 0, (
            "scenario no longer exercises write-behind spill"
        )
        for got, ref in zip((o.data for o in outs), reference):
            assert (got == ref).all()


class TestDigestStability:
    def _digest(self, cfg):
        digest = hashlib.sha256()
        with _tap_all_sims(digest):
            rt = OMPCRuntime(ClusterSpec(num_nodes=3), cfg)
            prog, outs = pipeline_program()
            res = rt.run(prog)
        return digest.hexdigest(), res.makespan, [o.data.copy() for o in outs]

    def test_unpressured_tiering_is_bit_identical(self):
        base_d, base_mk, base_out = self._digest(OMPCConfig())
        for policy in ("lru", "cost"):
            tier_d, tier_mk, tier_out = self._digest(OMPCConfig(
                device_memory_bytes=1e12, eviction_policy=policy,
            ))
            assert tier_d == base_d, (
                f"{policy}: tiering with unlimited capacity "
                "perturbed the event stream"
            )
            assert tier_mk == base_mk
            for got, ref in zip(tier_out, base_out):
                assert (got == ref).all()

    def test_tiered_runs_are_deterministic(self):
        cfg = OMPCConfig(device_memory_bytes=4 * 2 * KB,
                         eviction_policy="lru")
        d1, mk1, out1 = self._digest(cfg)
        d2, mk2, out2 = self._digest(cfg)
        assert d1 == d2
        assert mk1 == mk2
