"""repro.obs — the unified observability layer.

One :class:`Observer` threads through the simulator, the MPI transport,
the network fabric, the event system, and the OMPC runtime, collecting
structured lifecycle spans (task / mpi / sched / data / ompc
categories), message flow arrows, and time-series utilization metrics —
all in simulated time at zero simulated cost.  Enable it with
``OMPCConfig(trace=True)`` and export via
:func:`~repro.obs.exporter.to_chrome_trace` or summarize with
:func:`~repro.obs.report.utilization_summary`; or drive everything from
the CLI: ``python -m repro.bench trace <scenario> --out trace.json``.
"""

from repro.obs.exporter import pack_lanes, to_chrome_trace, validate_chrome_trace
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.observer import (
    CATEGORIES,
    NULL_OBSERVER,
    NullObserver,
    Observer,
    ObsSpan,
)
from repro.obs.report import (
    LinkUsage,
    NodeUsage,
    UtilizationReport,
    format_utilization,
    utilization_summary,
)

__all__ = [
    "CATEGORIES",
    "Counter",
    "Gauge",
    "LinkUsage",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NodeUsage",
    "NullObserver",
    "ObsSpan",
    "Observer",
    "UtilizationReport",
    "format_utilization",
    "pack_lanes",
    "to_chrome_trace",
    "utilization_summary",
    "validate_chrome_trace",
]
