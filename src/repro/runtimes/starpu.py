"""StarPU-like runtime: distributed owner-computes dataflow.

StarPU-MPI executes a task graph where each node owns a partition of
the data; tasks run on the owner of their output data, and the runtime
automatically issues the isend/irecv pairs implied by the graph,
overlapping them with computation.  Transfers are zero-copy; the cost
StarPU adds over raw MPI is per-task runtime management — submission,
dependency tracking, scheduling (dmda et al.), and data-handle state
machines.
"""

from __future__ import annotations

from repro.runtimes.calibration import STARPU, RuntimeCosts
from repro.runtimes.dataflow import DataflowRuntime


class StarPULikeRuntime(DataflowRuntime):
    """Owner-computes dataflow with StarPU's cost profile."""

    name = "StarPU"

    def __init__(self, costs: RuntimeCosts = STARPU):
        super().__init__(costs)
