"""Calibrated per-runtime software costs.

Every constant that differentiates the comparator runtimes is here,
with the mechanism it models.  These are *structural* costs — the
comparison's shape comes from how each runtime schedules and
communicates, and these constants set the magnitudes.

Mechanisms
----------
MPI (Task Bench's hand-tuned implementation)
    Thin: a small per-message software overhead.  Data moves zero-copy
    (rendezvous/RDMA on InfiniBand).

StarPU-MPI
    Data moves zero-copy like MPI, but every task passes through the
    runtime: submission, dependency tracking, scheduling, and data-
    handle management, a few hundred microseconds per task
    (documented StarPU overhead range for distributed task graphs).

Charm++
    Message-driven execution is pipelined, but every inter-node message
    is packed/unpacked (PUP framework) through intermediate buffers:
    one memory copy on each side at memcpy-like bandwidth, plus a
    per-message envelope/scheduler overhead.  For the multi-hundred-MB
    messages Task Bench generates at CCR ≤ 1, those copies land on the
    critical path — which is exactly why the paper sees Charm++
    "dramatically decreased [performance] when the communication took
    most of the execution time" (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MICROSECOND


@dataclass(frozen=True)
class RuntimeCosts:
    """Software costs of one comparator runtime."""

    #: Per-message software overhead (matching, progress engine).
    per_message_overhead: float = 0.0
    #: Per-task runtime overhead (submission, scheduling, handles).
    per_task_overhead: float = 0.0
    #: Pack/unpack copy bandwidth for inter-node messages; ``None``
    #: means zero-copy transfers.
    copy_bandwidth: float | None = None

    def __post_init__(self) -> None:
        if self.per_message_overhead < 0 or self.per_task_overhead < 0:
            raise ValueError("overheads must be >= 0")
        if self.copy_bandwidth is not None and self.copy_bandwidth <= 0:
            raise ValueError("copy_bandwidth must be > 0 or None")

    def copy_time(self, nbytes: float) -> float:
        """One-sided pack (or unpack) time for an inter-node message."""
        if self.copy_bandwidth is None:
            return 0.0
        return nbytes / self.copy_bandwidth


#: The hand-written bulk-synchronous MPI implementation.
MPI_SYNC = RuntimeCosts(per_message_overhead=2.0 * MICROSECOND)

#: StarPU-MPI: zero-copy, but per-task runtime management.
STARPU = RuntimeCosts(
    per_message_overhead=5.0 * MICROSECOND,
    per_task_overhead=400.0 * MICROSECOND,
)

#: Charm++: per-message envelope plus PUP copies on both sides.
#: 8 GB/s per copy models a single-threaded pack/unpack of unpinned,
#: cache-cold buffers (well below the ~12 GB/s hot-memcpy peak of a
#: Cascade Lake core); two copies per inter-node message put a
#: wire-time-scale cost on the chare critical path at 100 Gb/s.
CHARM = RuntimeCosts(
    per_message_overhead=30.0 * MICROSECOND,
    per_task_overhead=20.0 * MICROSECOND,
    copy_bandwidth=8e9,
)
