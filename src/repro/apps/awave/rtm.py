"""Reverse Time Migration: per-shot imaging and cost model.

RTM images one shot in three passes (§6.2): forward-propagate the
source wavelet through the migration (smoothed) model saving the
down-going wavefield; back-propagate the recorded data giving the
up-going wavefield; cross-correlate the two at matching times and sum —
reflectors appear where the fields coincide.

``migrate_shot`` does the real NumPy computation; ``rtm_cost_seconds``
is the *simulated* cost of the same shot on a paper-scale grid, used to
charge task time in the cluster simulation (the wall-clock of our small
demonstration grids would undersell the granularity the paper relies
on: "Awave tasks have a much higher granularity than Task Bench ones").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.awave.models import VelocityModel
from repro.apps.awave.solver import AcousticSolver2D, ricker_wavelet

#: Simulated seconds per (grid cell x timestep x propagation pass) on
#: one core; three passes per shot.  Calibrated so a production-size
#: shot (~8M cells x 10k steps) takes minutes on a 48-core node.
SECONDS_PER_CELL_STEP = 1.2e-9


@dataclass(frozen=True)
class RtmConfig:
    """Acquisition and numerics for one Awave run."""

    nt: int = 600
    f0: float = 12.0  # Hz, Ricker peak frequency
    snapshot_every: int = 4
    receiver_spacing: int = 2
    source_depth: int = 2
    smoothing_cells: int = 8

    def __post_init__(self) -> None:
        if self.nt < 1 or self.snapshot_every < 1:
            raise ValueError("nt and snapshot_every must be >= 1")
        if self.receiver_spacing < 1:
            raise ValueError("receiver_spacing must be >= 1")


def shot_positions(model: VelocityModel, num_shots: int) -> list[int]:
    """Evenly spaced surface source x-positions for ``num_shots``."""
    if num_shots < 1:
        raise ValueError("num_shots must be >= 1")
    margin = max(4, model.nx // 10)
    return [
        int(x)
        for x in np.linspace(margin, model.nx - 1 - margin, num_shots)
    ]


def migrate_shot(
    true_model: VelocityModel,
    migration_model: VelocityModel,
    source_ix: int,
    config: RtmConfig,
) -> np.ndarray:
    """Produce one shot's RTM image (real computation).

    The "observed" data is synthesized by forward modeling in the true
    model; migration then uses only the smooth model, as in a real
    acquisition-plus-processing workflow.
    """
    receivers = np.arange(2, true_model.nx - 2, config.receiver_spacing)
    dt = min(
        AcousticSolver2D(true_model).dt, AcousticSolver2D(migration_model).dt
    )
    wavelet = ricker_wavelet(config.f0, dt, config.nt)

    # 1. Synthesize observed data in the true model.
    true_solver = AcousticSolver2D(true_model, dt=dt)
    record, _ = true_solver.propagate(
        config.source_depth, source_ix, wavelet, receiver_ix=receivers
    )
    assert record is not None

    # 2. Source wavefield in the migration model (down-going).
    mig_solver = AcousticSolver2D(migration_model, dt=dt)
    _, src_snaps = mig_solver.propagate(
        config.source_depth,
        source_ix,
        wavelet,
        snapshot_every=config.snapshot_every,
    )

    # 3. Receiver wavefield back-propagated (up-going), then correlate.
    rcv_snaps = mig_solver.propagate_adjoint(
        record, snapshot_every=config.snapshot_every
    )
    image = np.zeros_like(true_model.vp)
    for s, r in zip(src_snaps, rcv_snaps):
        image += s * r
    return image


def stack_images(images: list[np.ndarray]) -> np.ndarray:
    """Combine per-shot images into the final section."""
    if not images:
        raise ValueError("no images to stack")
    return np.sum(images, axis=0)


def rtm_cost_seconds(
    nx: int,
    nz: int,
    nt: int,
    passes: int = 3,
    seconds_per_cell_step: float = SECONDS_PER_CELL_STEP,
) -> float:
    """Simulated single-core compute cost of one shot."""
    if min(nx, nz, nt, passes) < 1:
        raise ValueError("all dimensions must be >= 1")
    return nx * nz * nt * passes * seconds_per_cell_step
