"""Message envelope carried through the simulated fabric."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Message:
    """One point-to-point MPI message.

    ``payload`` may be any Python object (including a NumPy array) and
    travels by reference — the simulation charges transfer time from
    ``nbytes``, which the sender states explicitly, mirroring how MPI
    programs pass a buffer plus a count rather than letting the library
    guess.
    """

    comm_id: int
    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: float
    #: Monotone per-(comm, src) sequence number; preserves the MPI
    #: non-overtaking guarantee under filtered matching.
    seq: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.nbytes < float("inf"):
            # The chained comparison also rejects NaN and +inf, which
            # would otherwise poison transfer-time arithmetic downstream.
            if self.nbytes < 0:
                raise ValueError("nbytes must be >= 0")
            raise ValueError(f"nbytes must be finite, got {self.nbytes!r}")
        if self.tag < 0:
            raise ValueError("tag must be >= 0")
