"""Tests for fault tolerance: heartbeats, failure injection, recovery."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.datamanager import HOST, DataManager
from repro.core.events import EventSystem
from repro.core.faults import (
    FailureInjector,
    FaultTolerantRuntime,
    HeartbeatRing,
    NodeFailure,
    RecoveryError,
)
from repro.mpi import MpiWorld
from repro.omp import OmpProgram
from repro.omp.task import Buffer, Task, TaskKind, depend_in, depend_inout, depend_out

FAST = OMPCConfig(
    startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
    event_origin_overhead=0.0, event_handler_overhead=0.0,
    task_creation_overhead=0.0, schedule_unit_cost=0.0,
)


def target(task_id, *deps):
    return Task(task_id=task_id, kind=TaskKind.TARGET, deps=tuple(deps))


class TestNodeFailureValidation:
    def test_head_cannot_fail(self):
        with pytest.raises(ValueError):
            NodeFailure(time=1.0, node=0)
        with pytest.raises(ValueError):
            NodeFailure(time=-1.0, node=1)


class TestDataManagerFailure:
    def test_replicated_buffer_survives(self):
        dm = DataManager()
        buf = Buffer(100)
        reader = target(0, depend_in(buf))
        for m in dm.plan_for_task(reader, 1)[0]:
            dm.commit_move(m)
        dm.commit_task_done(reader, 1)
        lost = dm.on_node_failure(1)
        assert lost == []
        assert dm.locations(buf) == {HOST}

    def test_sole_copy_reported_lost(self):
        dm = DataManager()
        buf = Buffer(100)
        writer = target(0, depend_inout(buf))
        for m in dm.plan_for_task(writer, 2)[0]:
            dm.commit_move(m)
        dm.commit_task_done(writer, 2)
        assert dm.locations(buf) == {2}
        lost = dm.on_node_failure(2)
        assert lost == [buf]
        assert dm.locations(buf) == set()

    def test_latest_redirected_to_survivor(self):
        dm = DataManager()
        buf = Buffer(100)
        dm.commit_enter_data(buf, 3)
        assert dm.latest(buf) == 3
        lost = dm.on_node_failure(3)
        assert lost == []
        assert dm.latest(buf) == HOST

    def test_host_failure_rejected(self):
        with pytest.raises(ValueError):
            DataManager().on_node_failure(HOST)


class TestEventSystemFailure:
    def make(self, n=4):
        cluster = Cluster(ClusterSpec(num_nodes=n))
        events = EventSystem(cluster, MpiWorld(cluster), FAST)
        events.start()
        return cluster, events

    def test_fail_node_wipes_memory(self):
        cluster, events = self.make()

        def main():
            yield from events.submit(2, 7, "payload", 100)
            events.fail_node(2)

        p = cluster.sim.process(main())
        cluster.sim.run(until=p)
        assert events.node_failed(2)
        assert 7 not in events.memories[2]

    def test_failure_event_fires(self):
        cluster, events = self.make()
        fired = []
        events.failure_event(1).add_callback(lambda ev: fired.append(ev.value))

        def main():
            yield cluster.sim.timeout(1.0)
            events.fail_node(1)

        cluster.sim.process(main())
        cluster.sim.run()
        assert fired == [1]

    def test_fail_node_idempotent(self):
        cluster, events = self.make()

        def main():
            yield cluster.sim.timeout(0.1)
            events.fail_node(1)
            events.fail_node(1)

        cluster.sim.process(main())
        cluster.sim.run()
        assert cluster.trace.counters["ompc.node_failures"] == 1

    def test_head_failure_rejected(self):
        cluster, events = self.make()
        with pytest.raises(ValueError):
            events.fail_node(0)

    def test_shutdown_skips_failed_nodes(self):
        cluster, events = self.make()

        def main():
            yield cluster.sim.timeout(0.1)
            events.fail_node(2)
            yield from events.shutdown()

        p = cluster.sim.process(main())
        cluster.sim.run(until=p)  # must terminate without deadlock


class TestHeartbeatRing:
    def make_ring(self, n=4, **kwargs):
        cluster = Cluster(ClusterSpec(num_nodes=n))
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, FAST)
        events.start()
        ring = HeartbeatRing(cluster, mpi, events, **kwargs)
        return cluster, events, ring

    def test_no_false_positives_without_failure(self):
        cluster, events, ring = self.make_ring()
        ring.start()

        def stopper():
            yield cluster.sim.timeout(0.05)
            ring.stop()

        cluster.sim.process(stopper())
        cluster.sim.run(until=0.2)
        assert ring.detections == []

    def test_failure_detected_by_successor(self):
        cluster, events, ring = self.make_ring()
        ring.start()

        def fail_later():
            yield cluster.sim.timeout(0.02)
            events.fail_node(2)
            yield cluster.sim.timeout(0.05)
            ring.stop()

        cluster.sim.process(fail_later())
        cluster.sim.run(until=0.2)
        assert len(ring.detections) == 1
        dead, by, at = ring.detections[0]
        assert dead == 2
        assert by == 3  # the ring successor monitors node 2
        # Detection latency is bounded by the heartbeat timeout window.
        assert 0.02 < at < 0.02 + 3 * ring.timeout

    def test_on_detect_callback(self):
        cluster, events, ring = self.make_ring()
        seen = []
        ring.on_detect = lambda dead, by: seen.append((dead, by))
        ring.start()

        def fail_later():
            yield cluster.sim.timeout(0.01)
            events.fail_node(1)
            yield cluster.sim.timeout(0.05)
            ring.stop()

        cluster.sim.process(fail_later())
        cluster.sim.run(until=0.2)
        assert seen == [(1, 2)]

    def test_invalid_intervals(self):
        cluster = Cluster(ClusterSpec(num_nodes=3))
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, FAST)
        with pytest.raises(ValueError):
            HeartbeatRing(cluster, mpi, events, interval=0.0)
        with pytest.raises(ValueError):
            HeartbeatRing(cluster, mpi, events, interval=1.0, timeout=0.5)


def shots_program(num_shots=4, cost=0.05):
    """Awave-shaped program: read-only model, independent shot outputs."""
    prog = OmpProgram("shots")
    model = np.arange(16.0)
    model_buf = prog.buffer(model.nbytes, data=model, name="model")
    prog.target_enter_data(model_buf)
    outputs = []
    out_bufs = []
    for i in range(num_shots):
        out = np.zeros(16)
        outputs.append(out)
        buf = prog.buffer(out.nbytes, data=out, name=f"out{i}")
        out_bufs.append(buf)
        prog.target(
            fn=lambda m, o: np.copyto(o, m * 2.0),
            depend=[depend_in(model_buf), depend_out(buf)],
            cost=cost,
            name=f"shot{i}",
        )
    prog.target_exit_data(*out_bufs)
    return prog, model, outputs


class TestFaultTolerantRuntime:
    def test_no_failures_matches_plain_semantics(self):
        prog, model, outputs = shots_program()
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST)
        res = rt.run(prog)
        assert res.failures == []
        assert res.reexecuted_tasks == 0
        for out in outputs:
            np.testing.assert_allclose(out, model * 2.0)

    def test_failure_during_execution_recovers(self):
        prog, model, outputs = shots_program(cost=0.1)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST)
        # Kill a worker while shots are in flight (startup is 0, tasks
        # start ~immediately and run 100 ms).
        res = rt.run(prog, failures=[NodeFailure(time=0.05, node=1)])
        assert res.failures == [1]
        # Every shot still produced the right answer.
        for out in outputs:
            np.testing.assert_allclose(out, model * 2.0)
        # At least one task needed a second attempt.
        assert max(res.task_attempts.values()) >= 2

    def test_failure_detected_by_heartbeat(self):
        prog, _, _ = shots_program(cost=0.1)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST)
        res = rt.run(prog, failures=[NodeFailure(time=0.03, node=2)])
        assert any(dead == 2 for dead, _by, _t in res.detections)

    def test_two_failures_survived(self):
        prog, model, outputs = shots_program(num_shots=6, cost=0.08)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=6), FAST)
        res = rt.run(
            prog,
            failures=[
                NodeFailure(time=0.02, node=1),
                NodeFailure(time=0.05, node=3),
            ],
        )
        assert sorted(res.failures) == [1, 3]
        for out in outputs:
            np.testing.assert_allclose(out, model * 2.0)

    def test_lost_sole_copy_triggers_lineage_reexecution(self):
        # Producer writes on a worker; the consumer is gated behind a
        # long host task; the producer's node dies in between, so the
        # consumer must re-run the (idempotent) producer elsewhere.
        prog = OmpProgram()
        a = prog.buffer(64, data=np.zeros(8), name="a")
        b = prog.buffer(64, data=np.zeros(8), name="b")
        gate = prog.buffer(8, name="gate")

        def produce(x):
            x[:] = 1.0  # overwrites fully: safe to re-execute

        producer = prog.target(
            fn=produce, depend=[depend_out(a)], cost=0.02, name="producer",
        )
        prog.task(depend=[depend_out(gate)], cost=0.2, name="delay")
        prog.target(
            fn=lambda x, _g, y: np.copyto(y, x * 10.0),
            depend=[depend_in(a), depend_in(gate), depend_out(b)],
            cost=0.02, name="consumer",
        )
        prog.target_exit_data(a, b)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST)
        res = rt.run(prog)
        producer_node = res.schedule.assignment[producer.task_id]

        # Re-run with a failure of the producer's node after it finished
        # but before the consumer starts.
        prog2 = OmpProgram()
        a2 = prog2.buffer(64, data=np.zeros(8), name="a")
        b2 = prog2.buffer(64, data=np.zeros(8), name="b")
        gate2 = prog2.buffer(8, name="gate")
        prog2.target(fn=produce, depend=[depend_out(a2)], cost=0.02, name="producer")
        prog2.task(depend=[depend_out(gate2)], cost=0.2, name="delay")
        prog2.target(
            fn=lambda x, _g, y: np.copyto(y, x * 10.0),
            depend=[depend_in(a2), depend_in(gate2), depend_out(b2)],
            cost=0.02, name="consumer",
        )
        prog2.target_exit_data(a2, b2)
        res2 = FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST).run(
            prog2, failures=[NodeFailure(time=0.1, node=producer_node)]
        )
        assert res2.reexecuted_tasks >= 1
        np.testing.assert_allclose(b2.data, np.full(8, 10.0))

    def test_inplace_producer_loss_is_unrecoverable(self):
        # An INOUT producer rebuilds its output from its own previous
        # value; losing the sole copy is unrecoverable and must raise.
        prog = OmpProgram()
        a = prog.buffer(64, data=np.zeros(8), name="a")
        gate = prog.buffer(8, name="gate")
        prog.target(
            fn=lambda x: np.add(x, 1.0, out=x),
            depend=[depend_inout(a)], cost=0.02, name="producer",
        )
        prog.task(depend=[depend_out(gate)], cost=0.2, name="delay")
        prog.target(
            depend=[depend_in(a), depend_in(gate)], cost=0.02, name="consumer",
        )
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST)
        res = rt.run(prog)
        node = next(
            res.schedule.assignment[t.task_id]
            for t in prog.graph.tasks()
            if t.name == "producer"
        )
        prog2 = OmpProgram()
        a2 = prog2.buffer(64, data=np.zeros(8), name="a")
        gate2 = prog2.buffer(8, name="gate")
        prog2.target(
            fn=lambda x: np.add(x, 1.0, out=x),
            depend=[depend_inout(a2)], cost=0.02, name="producer",
        )
        prog2.task(depend=[depend_out(gate2)], cost=0.2, name="delay")
        prog2.target(
            depend=[depend_in(a2), depend_in(gate2)], cost=0.02, name="consumer",
        )
        with pytest.raises(RecoveryError, match="in-place producer"):
            FaultTolerantRuntime(ClusterSpec(num_nodes=4), FAST).run(
                prog2, failures=[NodeFailure(time=0.1, node=node)]
            )

    def test_makespan_overhead_of_recovery(self):
        prog, _, _ = shots_program(num_shots=4, cost=0.1)
        clean = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST).run(prog)
        prog2, _, _ = shots_program(num_shots=4, cost=0.1)
        failed = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST).run(
            prog2, failures=[NodeFailure(time=0.05, node=1)]
        )
        # Recovery re-runs work, so it costs time — but bounded (not a
        # full serial re-execution of everything).
        assert failed.makespan > clean.makespan
        assert failed.makespan < clean.makespan + 0.3

    def test_requires_two_workers(self):
        with pytest.raises(ValueError):
            FaultTolerantRuntime(ClusterSpec(num_nodes=2))
