"""Figure 5: execution-time scalability (weak scaling).

Setup (§6.2): 10M iterations (50 ms) per task, CCR 1.0, task graph
``2n x 32`` for ``n`` nodes, n from 2 to 64, four dependency patterns,
four runtimes, average of repeated runs (our simulation is
deterministic, so one run per cell).

Expected shapes (paper): MPI and StarPU lowest and flat; OMPC between,
with weak scaling degrading for tree/fft/stencil and a knee at 32-64
nodes (head-node in-flight limit); Charm++ highest on average, with
OMPC's advantage holding up to 32 nodes.
"""

from __future__ import annotations

from figutil import RUNTIME_ORDER, fig5_spec, run_cell
from repro.bench.report import format_series
from repro.taskbench import Pattern

FULL_NODES = (2, 4, 8, 16, 32, 64)
#: Subset used under pytest-benchmark (wall-time bounded).
BENCH_NODES = (2, 8, 16)


class TestFig5:
    def test_bench_stencil_all_runtimes(self, benchmark):
        spec = fig5_spec(Pattern.STENCIL_1D, 8)

        def cell():
            return {
                name: run_cell(name, spec, 8) for name in RUNTIME_ORDER
            }

        times = benchmark.pedantic(cell, rounds=1, iterations=1)
        # Paper shape: MPI/StarPU < OMPC < Charm++.
        assert times["MPI"] <= times["StarPU"] * 1.05
        assert times["StarPU"] < times["OMPC"]
        assert times["OMPC"] < times["Charm++"]

    def test_bench_ompc_weak_scaling_knee(self, benchmark):
        """OMPC's weak scaling breaks when width exceeds head threads."""

        def sweep():
            return [
                run_cell("OMPC", fig5_spec(Pattern.STENCIL_1D, n), n)
                for n in BENCH_NODES
            ] + [run_cell("OMPC", fig5_spec(Pattern.STENCIL_1D, 64), 64)]

        t2, t8, t16, t64 = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # Weak scaling roughly holds through 16 nodes...
        assert t16 < t2 * 3.0
        # ...but breaks at 64 (width 128 > 48 head threads).
        assert t64 > t16 * 1.4

    def test_bench_trivial_scales(self, benchmark):
        """The trivial pattern 'somehow preserves' scalability to 32 nodes."""

        def sweep():
            return [
                run_cell("OMPC", fig5_spec(Pattern.TRIVIAL, n), n)
                for n in (2, 16, 32)
            ]

        t2, t16, t32 = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # Clean up to 16 nodes; only mild degradation at 32 (width 64
        # just exceeds the 48 head threads).
        assert t16 < t2 * 1.15
        assert t32 < t2 * 1.5

    def test_bench_mpi_baseline_advantage(self, benchmark):
        """MPI is 1.4x-2.9x faster than OMPC (paper's conclusion)."""
        spec = fig5_spec(Pattern.TREE, 16)

        def cell():
            return run_cell("OMPC", spec, 16), run_cell("MPI", spec, 16)

        ompc, mpi = benchmark.pedantic(cell, rounds=1, iterations=1)
        assert 1.1 < ompc / mpi < 3.5


def main() -> None:
    for pattern in Pattern.paper_patterns():
        series = {name: [] for name in RUNTIME_ORDER}
        for n in FULL_NODES:
            spec = fig5_spec(pattern, n)
            for name in RUNTIME_ORDER:
                series[name].append(run_cell(name, spec, n))
        print(
            format_series(
                "nodes",
                FULL_NODES,
                series,
                title=f"Figure 5 — {pattern.value} (exec time, weak scaling)",
            )
        )
        print()


if __name__ == "__main__":
    main()
