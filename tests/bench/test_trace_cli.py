"""Tests for the ``python -m repro.bench trace`` subcommand."""

import json

import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.tracecmd import main as trace_main
from repro.obs import validate_chrome_trace


@pytest.fixture(scope="module")
def traced_output(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace") / "trace.json"
    code = trace_main(
        [
            "stencil_1d",
            "--nodes", "3",
            "--steps", "2",
            "--iterations", "100000",
            "--out", str(out),
        ]
    )
    assert code == 0
    return json.loads(out.read_text())


class TestTraceCli:
    def test_dispatch_through_bench_main(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        code = bench_main(
            ["trace", "trivial", "--nodes", "2", "--steps", "1",
             "--iterations", "1000", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "== utilization" in capsys.readouterr().out

    def test_rejects_single_node_cluster(self):
        with pytest.raises(SystemExit):
            trace_main(["trivial", "--nodes", "1"])

    def test_trace_json_validates(self, traced_output):
        events = traced_output["traceEvents"]
        assert validate_chrome_trace(events) == []

    def test_trace_has_per_node_processes_and_lanes(self, traced_output):
        events = traced_output["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        pids = {e["pid"] for e in spans}
        assert pids >= {0, 1, 2}  # head + both workers
        # The head's concurrent orchestration uses more than one lane.
        head_tids = {e["tid"] for e in spans if e["pid"] == 0}
        assert len(head_tids) > 1

    def test_trace_covers_at_least_four_categories(self, traced_output):
        events = traced_output["traceEvents"]
        cats = {e["cat"] for e in events if e["ph"] == "X"}
        assert len(cats & {"task", "sched", "data", "mpi", "ompc"}) >= 4

    def test_trace_contains_flow_arrows(self, traced_output):
        events = traced_output["traceEvents"]
        starts = {e["id"] for e in events if e["ph"] == "s"}
        finishes = {e["id"] for e in events if e["ph"] == "f"}
        assert starts
        assert starts == finishes

    def test_utilization_table_printed(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        assert trace_main(
            ["stencil_1d", "--nodes", "3", "--steps", "2",
             "--iterations", "100000", "--out", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "== utilization" in text
        assert "link" in text and "occupancy %" in text
        assert "node1" in text
        assert "head in-flight slots" in text
