"""Property-based tests for the data manager and schedulers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterSpec
from repro.core.datamanager import HOST, DataManager
from repro.core.scheduler import (
    HeftScheduler,
    MinLoadScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.omp import Buffer, OmpProgram
from repro.omp.task import Dep, DepType, Task, TaskKind

dep_types = st.sampled_from([DepType.IN, DepType.OUT, DepType.INOUT])
clause = st.tuples(st.integers(min_value=0, max_value=3), dep_types)

# A DM scenario: a sequence of (task clauses, executing node).
dm_ops = st.lists(
    st.tuples(
        st.lists(clause, min_size=1, max_size=3),
        st.integers(min_value=1, max_value=4),
    ),
    min_size=1,
    max_size=25,
)


class TestDataManagerInvariants:
    @given(dm_ops)
    @settings(deadline=None, max_examples=80)
    def test_coherency_invariants_hold(self, ops):
        """After any task sequence: latest is always a valid location,
        location sets are never empty, and a written buffer's
        authoritative copy is where it was last written (replicas may
        be added by subsequent readers)."""
        buffers = [Buffer(100, name=f"b{i}") for i in range(4)]
        dm = DataManager()
        last_written_at: dict[int, int] = {}
        for task_id, (clauses, node) in enumerate(ops):
            deps = tuple(Dep(buffers[bi], dt) for bi, dt in clauses)
            task = Task(task_id=task_id, kind=TaskKind.TARGET, deps=deps)
            moves, allocs = dm.plan_for_task(task, node)
            for buf in allocs:
                dm.commit_alloc(buf, node)
            for move in moves:
                assert move.dst == node
                dm.commit_move(move)
            # After planning+commit, every read buffer is resident.
            for dep in task.deps:
                assert dm.is_resident(dep.buffer, node)
            dm.commit_task_done(task, node)
            for buf in task.writes:
                last_written_at[buf.buffer_id] = node

        for buf in buffers:
            locations = dm.locations(buf)
            assert locations, f"{buf.name} has no valid copy anywhere"
            assert dm.latest(buf) in locations
            if buf.buffer_id in last_written_at:
                node = last_written_at[buf.buffer_id]
                assert node in locations
                assert dm.latest(buf) == node

    @given(dm_ops)
    @settings(deadline=None, max_examples=50)
    def test_exit_data_always_recovers_to_host(self, ops):
        buffers = [Buffer(100, name=f"b{i}") for i in range(4)]
        dm = DataManager()
        for task_id, (clauses, node) in enumerate(ops):
            deps = tuple(Dep(buffers[bi], dt) for bi, dt in clauses)
            task = Task(task_id=task_id, kind=TaskKind.TARGET, deps=deps)
            moves, allocs = dm.plan_for_task(task, node)
            for buf in allocs:
                dm.commit_alloc(buf, node)
            for move in moves:
                dm.commit_move(move)
            dm.commit_task_done(task, node)
        for buf in buffers:
            for move in dm.plan_exit_data(buf):
                dm.commit_move(move)
            dm.commit_exit_data(buf)
            assert dm.locations(buf) == {HOST}
            assert dm.latest(buf) == HOST

    @given(
        dm_ops,
        st.integers(min_value=1, max_value=4),
    )
    @settings(deadline=None, max_examples=50)
    def test_failure_never_leaves_dangling_latest(self, ops, dead_node):
        buffers = [Buffer(100, name=f"b{i}") for i in range(4)]
        dm = DataManager()
        for task_id, (clauses, node) in enumerate(ops):
            deps = tuple(Dep(buffers[bi], dt) for bi, dt in clauses)
            task = Task(task_id=task_id, kind=TaskKind.TARGET, deps=deps)
            moves, allocs = dm.plan_for_task(task, node)
            for buf in allocs:
                dm.commit_alloc(buf, node)
            for move in moves:
                dm.commit_move(move)
            dm.commit_task_done(task, node)
        lost = dm.on_node_failure(dead_node)
        for buf in buffers:
            locations = dm.locations(buf)
            assert dead_node not in locations
            if locations:
                assert dm.latest(buf) in locations
            else:
                assert buf in lost


# Random programs for scheduler properties.
program_strategy = st.lists(
    st.tuples(
        st.lists(clause, min_size=1, max_size=3),
        st.floats(min_value=0.0, max_value=2.0),
        st.sampled_from(["target", "classical"]),
    ),
    min_size=1,
    max_size=20,
)


def build_program(spec):
    prog = OmpProgram()
    buffers = [prog.buffer(100, name=f"b{i}") for i in range(4)]
    for clauses, cost, kind in spec:
        deps = [Dep(buffers[bi], dt) for bi, dt in clauses]
        if kind == "classical":
            prog.task(depend=deps, cost=cost)
        else:
            prog.target(depend=deps, cost=cost)
    return prog


SCHEDULERS = [
    HeftScheduler(),
    HeftScheduler(exec_slots_per_node=1),
    RoundRobinScheduler(),
    RandomScheduler(seed=1),
    MinLoadScheduler(),
]


class TestSchedulerInvariants:
    @given(program_strategy, st.integers(min_value=2, max_value=6))
    @settings(deadline=None, max_examples=40)
    def test_every_scheduler_assigns_every_task_validly(self, spec, nodes):
        prog = build_program(spec)
        cluster = Cluster(ClusterSpec(num_nodes=nodes))
        for scheduler in SCHEDULERS:
            sched = scheduler.schedule(prog.graph, cluster)
            for task in prog.graph.tasks():
                node = sched.assignment[task.task_id]
                assert 0 <= node < nodes
                if task.kind == TaskKind.CLASSICAL:
                    assert node == HOST
                elif task.kind == TaskKind.TARGET and nodes > 1:
                    assert node != HOST

    @given(program_strategy)
    @settings(deadline=None, max_examples=30)
    def test_heft_planned_intervals_consistent_with_edges(self, spec):
        prog = build_program(spec)
        cluster = Cluster(ClusterSpec(num_nodes=4))
        sched = HeftScheduler().schedule(prog.graph, cluster)
        for pred, succ in prog.graph.edges():
            if (
                pred.task_id in sched.planned
                and succ.task_id in sched.planned
            ):
                # A successor never *starts* before its predecessor
                # finishes (communication may add more on top).
                assert (
                    sched.planned[succ.task_id][0]
                    >= sched.planned[pred.task_id][1] - 1e-9
                )
