"""Regression tests: device memory is fully released across job turnover.

Each launch builds a fresh :class:`EventSystem` (and with it fresh
``DeviceMemory`` tables), so a job that completes, is preempted, or is
killed by a crash must leave *nothing* resident for the next tenant.
These tests run successive jobs on the **same physical nodes** with a
device capacity tight enough that any leaked allocation from the
previous occupant would push the newcomer over budget.
"""

import numpy as np

from repro.cluster.machine import Cluster, ClusterSpec
from repro.core import NodeFailure
from repro.core.config import OMPCConfig
from repro.core.memory import DeviceMemory
from repro.jobs import ElasticConfig, ElasticJobManager, JobManager, JobState
from repro.omp.api import OmpProgram
from repro.omp.task import depend_in, depend_out
from repro.util.units import MILLISECOND

KB = 1024.0


def mem_program(name, n=6, nbytes=2 * KB):
    """Working set of ``n`` staged buffers plus ``n`` outputs."""
    prog = OmpProgram(name)
    bufs = [prog.buffer(nbytes, data=np.zeros(4), name=f"{name}-b{i}")
            for i in range(n)]
    outs = [prog.buffer(nbytes, data=np.zeros(4), name=f"{name}-o{i}")
            for i in range(n)]
    prog.target_enter_data(*bufs)
    for i, (b, o) in enumerate(zip(bufs, outs)):
        def kern(x, y, i=i):
            y[:] = x + i + 1
        prog.target(kern, depend=[depend_in(b), depend_out(o)],
                    cost=0.3 * MILLISECOND, name=f"{name}-k{i}")
    prog.target_exit_data(*outs)
    return prog


def tight_config(**kw):
    # 3 slots for a 6-buffer working set: every job *must* evict, and
    # any residue from a prior tenant would make admission impossible.
    return OMPCConfig(device_memory_bytes=3 * 2 * KB,
                      eviction_policy="lru", **kw)


def mem_job(name, nodes, preemptible=False, priority=0,
            fault_tolerant=False, failures=(), task_factory=mem_program):
    from repro.jobs import JobSpec

    return JobSpec(
        name=name,
        program=lambda: task_factory(name),
        nodes=nodes,
        priority=priority,
        preemptible=preemptible,
        fault_tolerant=fault_tolerant,
        failures=tuple(failures),
        config=tight_config(),
        est_runtime=0.05,
    )


class _TrackMemories:
    """Record every DeviceMemory built during the with-block."""

    def __enter__(self):
        self.instances: list[DeviceMemory] = []
        self._orig = DeviceMemory.__init__
        orig = self._orig
        instances = self.instances

        def tracked(mem, *args, **kwargs):
            orig(mem, *args, **kwargs)
            instances.append(mem)

        DeviceMemory.__init__ = tracked
        return self.instances

    def __exit__(self, *exc):
        DeviceMemory.__init__ = self._orig
        return False


class TestSequentialTenants:
    def test_back_to_back_jobs_reuse_nodes_cleanly(self):
        # A 4-node cluster has a 3-node pool, so both 3-node jobs land
        # on the identical partition, one after the other.
        mgr = JobManager(Cluster(ClusterSpec(num_nodes=4)))
        report = mgr.run([
            (0.0, mem_job("first", 3)),
            (0.0, mem_job("second", 3)),
        ])
        assert report.completed == 2
        first, second = mgr.jobs
        assert first.partition == second.partition
        assert second.start_time >= first.finish_time

    def test_capacity_respected_across_tenancies(self):
        mgr = JobManager(Cluster(ClusterSpec(num_nodes=4)))
        with _TrackMemories() as memories:
            report = mgr.run([
                (0.0, mem_job("a", 3)),
                (0.0, mem_job("b", 3)),
            ])
        assert report.completed == 2
        capped = [m for m in memories if m.capacity_bytes is not None]
        assert capped, "no capped DeviceMemory was built"
        for mem in capped:
            if mem.node_id == 0:
                continue  # the head's table is host-side, uncapped use
            assert mem.peak_bytes <= mem.capacity_bytes
        # Isolation is structural: each launch builds a *fresh* set of
        # device tables (one per cluster node), so a predecessor's
        # leftovers cannot be charged to a successor.  Two 3-node jobs
        # => two disjoint sets of 3 tables.
        assert len(memories) == 2 * 3
        first_set, second_set = memories[:3], memories[3:]
        assert not set(map(id, first_set)) & set(map(id, second_set))


class TestAbortedTenants:
    def test_preempted_job_leaves_no_residue(self):
        # The preemptible batch job is mid-run (buffers resident) when
        # the urgent job evicts it and takes over the same nodes with
        # the same tight budget.
        mgr = ElasticJobManager(
            Cluster(ClusterSpec(num_nodes=4)),
            elastic=ElasticConfig(autoscale=False, max_preemptions=5),
        )
        report = mgr.run([
            (0.0, mem_job("batch", 3, preemptible=True)),
            (0.001, mem_job("urgent", 3, priority=10)),
        ])
        assert report.completed == 2
        batch, urgent = mgr.jobs
        assert batch.preemptions == 1
        assert batch.state is JobState.COMPLETED
        assert urgent.state is JobState.COMPLETED

    def test_worker_crash_then_fresh_tenant(self):
        # An FT job loses a worker mid-run; the follow-up job must get
        # clean tables on the surviving nodes of the shrunken pool.
        mgr = JobManager(Cluster(ClusterSpec(num_nodes=6)))
        report = mgr.run([
            (0.0, mem_job("victim", 4, fault_tolerant=True,
                          failures=(NodeFailure(time=0.5 * MILLISECOND,
                                                node=2),))),
            (0.0, mem_job("after", 3)),
        ])
        assert report.completed == 2
        victim, after = mgr.jobs
        assert victim.result.failures == [2]
        assert after.state is JobState.COMPLETED
