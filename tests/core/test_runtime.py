"""Integration tests for the full OMPC runtime."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, NetworkSpec, NodeSpec
from repro.core import OMPCConfig, OMPCRuntime
from repro.core.datamanager import HOST
from repro.core.scheduler import RoundRobinScheduler
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_inout, depend_out

FAST_CFG = OMPCConfig(
    startup_time=0.0,
    shutdown_time=0.0,
    first_event_interval=0.0,
    event_origin_overhead=0.0,
    event_handler_overhead=0.0,
    task_creation_overhead=0.0,
    schedule_unit_cost=0.0,
)


def listing1_program(n=1000, cost=0.05):
    prog = OmpProgram("listing1")
    data = np.zeros(n)
    A = prog.buffer(nbytes=data.nbytes, data=data, name="A")
    prog.target_enter_data(A)
    prog.target(
        fn=lambda a: np.add(a, 1.0, out=a),
        depend=[depend_inout(A)], cost=cost, name="foo",
    )
    prog.target(
        fn=lambda a: np.multiply(a, 3.0, out=a),
        depend=[depend_inout(A)], cost=cost, name="bar",
    )
    prog.target_exit_data(A)
    return prog, data


class TestEndToEnd:
    def test_listing1_computes_correct_result(self):
        prog, data = listing1_program()
        OMPCRuntime(ClusterSpec(num_nodes=3), FAST_CFG).run(prog)
        np.testing.assert_allclose(data, np.full(1000, 3.0))

    def test_serial_chain_makespan_dominated_by_compute(self):
        prog, _ = listing1_program(cost=0.5)
        res = OMPCRuntime(ClusterSpec(num_nodes=3), FAST_CFG).run(prog)
        assert res.makespan == pytest.approx(1.0, rel=0.02)

    def test_overheads_reported(self):
        prog, _ = listing1_program()
        res = OMPCRuntime(ClusterSpec(num_nodes=3)).run(prog)
        cfg = OMPCConfig()
        assert res.startup_time == cfg.startup_time
        assert res.shutdown_time == cfg.shutdown_time
        assert res.scheduling_time > 0
        assert res.constant_overhead == pytest.approx(
            res.startup_time + res.shutdown_time + res.scheduling_time
        )

    def test_parallel_width_uses_workers(self):
        prog = OmpProgram()
        arrays = []
        for i in range(4):
            arr = np.zeros(10)
            arrays.append(arr)
            b = prog.buffer(arr.nbytes, data=arr, name=f"b{i}")
            prog.target_enter_data(b)
            prog.target(
                fn=lambda a, i=i: np.add(a, i + 1, out=a),
                depend=[depend_inout(b)], cost=1.0, name=f"t{i}",
            )
            prog.target_exit_data(b)
        res = OMPCRuntime(ClusterSpec(num_nodes=5), FAST_CFG).run(prog)
        # 4 independent 1s tasks on 4 workers: wall ~1s, not ~4s.
        assert res.makespan == pytest.approx(1.0, rel=0.05)
        for i, arr in enumerate(arrays):
            np.testing.assert_allclose(arr, np.full(10, i + 1.0))

    def test_empty_program(self):
        res = OMPCRuntime(ClusterSpec(num_nodes=2), FAST_CFG).run(OmpProgram())
        assert res.makespan >= 0.0
        assert res.task_intervals == {}

    def test_requires_worker_node(self):
        with pytest.raises(ValueError):
            OMPCRuntime(ClusterSpec(num_nodes=1))


class TestDataMovement:
    def test_worker_to_worker_forwarding_bypasses_head(self):
        # foo on node 1, bar on node 2 (forced): A must flow 1 -> 2.
        prog = OmpProgram()
        A = prog.buffer(nbytes=1_000_000, name="A")
        prog.target_enter_data(A)
        prog.target(depend=[depend_inout(A)], cost=0.01, name="foo")
        prog.target(depend=[depend_inout(A)], cost=0.01, name="bar")
        # No exit data: the final value stays on the last worker, so any
        # head-NIC payload traffic would come from the forwarding path.
        rt = OMPCRuntime(
            ClusterSpec(num_nodes=3), FAST_CFG, scheduler=RoundRobinScheduler()
        )
        res = rt.run(prog)
        assert res.counters.get("ompc.events.exchange_dst", 0) == 1
        # The payload never transits the head NIC.
        head_nic = rt.last_cluster.network.nics[0]
        assert head_nic.bytes_received < 1_000_000

    def test_forwarding_disabled_routes_via_head(self):
        prog = OmpProgram()
        A = prog.buffer(nbytes=1_000_000, name="A")
        prog.target_enter_data(A)
        prog.target(depend=[depend_inout(A)], cost=0.01, name="foo")
        prog.target(depend=[depend_inout(A)], cost=0.01, name="bar")
        prog.target_exit_data(A)
        cfg = OMPCConfig(
            startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
            event_origin_overhead=0.0, event_handler_overhead=0.0,
            task_creation_overhead=0.0, schedule_unit_cost=0.0,
            forwarding_enabled=False,
        )
        rt = OMPCRuntime(
            ClusterSpec(num_nodes=3), cfg, scheduler=RoundRobinScheduler()
        )
        res = rt.run(prog)
        head_nic = rt.last_cluster.network.nics[0]
        # Staged via head: the payload crosses the head NIC.
        assert head_nic.bytes_received >= 1_000_000

    def test_readonly_input_replicated_not_invalidated(self):
        prog = OmpProgram()
        model = np.arange(8.0)
        M = prog.buffer(model.nbytes, data=model, name="model")
        outs = []
        prog.target_enter_data(M)
        for i in range(3):
            arr = np.zeros(8)
            outs.append(arr)
            O = prog.buffer(arr.nbytes, data=arr, name=f"out{i}")
            prog.target(
                fn=lambda m, o: np.copyto(o, m),
                depend=[depend_in(M), depend_out(O)],
                cost=0.01, name=f"shot{i}",
            )
            prog.target_exit_data(O)
        prog.target_exit_data(M)
        rt = OMPCRuntime(
            ClusterSpec(num_nodes=4), FAST_CFG, scheduler=RoundRobinScheduler()
        )
        rt.run(prog)
        for arr in outs:
            np.testing.assert_allclose(arr, model)

    def test_exit_data_brings_result_home_and_cleans_cluster(self):
        prog, data = listing1_program()
        rt = OMPCRuntime(ClusterSpec(num_nodes=3), FAST_CFG)
        res = rt.run(prog)
        assert res.counters.get("ompc.events.retrieve", 0) >= 1
        assert res.counters.get("ompc.events.delete", 0) >= 1


class TestInFlightLimit:
    def make_wide(self, width, cost=1.0):
        prog = OmpProgram()
        for i in range(width):
            b = prog.buffer(8, name=f"b{i}")
            prog.target(depend=[depend_out(b)], cost=cost, name=f"t{i}")
        return prog

    def test_limit_throttles_concurrency(self):
        # 8 independent tasks, 8 workers, but only 2 head threads: at
        # most 2 tasks in flight, so wall ~= 4 * cost.
        cfg = OMPCConfig(
            head_threads=2,
            startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
            event_origin_overhead=0.0, event_handler_overhead=0.0,
            task_creation_overhead=0.0, schedule_unit_cost=0.0,
        )
        prog = self.make_wide(8)
        res = OMPCRuntime(ClusterSpec(num_nodes=9), cfg).run(prog)
        assert res.makespan == pytest.approx(4.0, rel=0.05)

    def test_ample_threads_full_concurrency(self):
        cfg = OMPCConfig(
            head_threads=64,
            startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
            event_origin_overhead=0.0, event_handler_overhead=0.0,
            task_creation_overhead=0.0, schedule_unit_cost=0.0,
        )
        prog = self.make_wide(8)
        res = OMPCRuntime(ClusterSpec(num_nodes=9), cfg).run(prog)
        assert res.makespan == pytest.approx(1.0, rel=0.05)


class TestClassicalTasks:
    def test_classical_runs_on_head_against_host_memory(self):
        prog = OmpProgram()
        data = np.zeros(4)
        A = prog.buffer(data.nbytes, data=data, name="A")
        prog.task(
            fn=lambda a: np.add(a, 5.0, out=a),
            depend=[depend_inout(A)], cost=0.1, name="host-task",
        )
        res = OMPCRuntime(ClusterSpec(num_nodes=2), FAST_CFG).run(prog)
        np.testing.assert_allclose(data, np.full(4, 5.0))
        classical = next(
            tid for tid, n in res.schedule.assignment.items() if n == HOST
        )
        assert classical is not None


class TestDeterminism:
    def test_identical_runs_identical_makespan(self):
        results = []
        for _ in range(2):
            prog, _ = listing1_program()
            res = OMPCRuntime(ClusterSpec(num_nodes=4)).run(prog)
            results.append(res.makespan)
        assert results[0] == results[1]
