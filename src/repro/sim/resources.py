"""Shared-resource primitives: counted resources, stores, containers.

These model the contended entities of the cluster: CPU cores
(:class:`Resource`), message/work queues (:class:`Store`), and bulk
quantities such as memory (:class:`Container`).  All queues are FIFO,
which keeps the simulation deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.sim.core import Event, Simulator
from repro.sim.errors import SimulationError


class Resource:
    """A counted resource with FIFO request queue (like a semaphore).

    ``request()`` returns an event that fires when a slot is granted;
    the holder must later call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self._req_name = "request:" + self.name
        self._in_use = 0
        self._queue: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> Event:
        ev = self.sim.event(self._req_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            # Inlined ev.succeed(self): the event is fresh, so the
            # already-triggered guard cannot fire — this is one of the
            # kernel's hottest grant paths.
            ev._value = self
            self.sim._schedule(ev)
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        if self._queue:
            # Hand the slot directly to the next waiter; in_use unchanged.
            nxt = self._queue.popleft()
            nxt._value = self
            self.sim._schedule(nxt)
        else:
            self._in_use -= 1

    def cancel(self, request_event: Event) -> bool:
        """Withdraw a queued ``request()``; True if it was still queued.

        A request that was already granted cannot be withdrawn — the
        caller owns the slot and must ``release()`` it.  Needed by
        callers whose waiting frame can be interrupted (e.g. head
        failover teardown): an abandoned queued request would otherwise
        swallow the next freed slot forever.
        """
        for i, ev in enumerate(self._queue):
            if ev is request_event:
                del self._queue[i]
                return True
        return False

    def acquire(self):
        """Generator helper: ``yield from res.acquire()`` inside a process."""
        yield self.request()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity}"
            f" queued={len(self._queue)}>"
        )


class Store:
    """An unbounded (or bounded) FIFO item store.

    ``put(item)`` returns an event that fires once the item is accepted;
    ``get()`` returns an event that fires with the next item.  Getters
    may pass a ``filter`` predicate; filtered getters scan the buffered
    items in FIFO order, so matching is deterministic.  This is the
    mechanism behind MPI message matching.
    """

    def __init__(self, sim: Simulator, capacity: int | None = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "store"
        self._put_name = "put:" + self.name
        self._get_name = "get:" + self.name
        self._items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Callable[[Any], bool] | None]] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (read-only view for inspection)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        ev = self.sim.event(self._put_name)
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((ev, item))
        else:
            self._items.append(item)
            ev._value = item  # inlined succeed() on a fresh event
            self.sim._schedule(ev)
            self._dispatch()
        return ev

    def get(self, filter: Callable[[Any], bool] | None = None) -> Event:
        ev = self.sim.event(self._get_name)
        self._getters.append((ev, filter))
        self._dispatch()
        return ev

    def cancel(self, get_event: Event) -> bool:
        """Withdraw a pending ``get()``; True if it was still queued.

        A cancelled get event never fires, so callers must stop waiting
        on it.  Items are unaffected — a message that would have matched
        the withdrawn getter stays buffered for future getters.
        """
        for i, (ev, _pred) in enumerate(self._getters):
            if ev is get_event:
                del self._getters[i]
                return True
        return False

    def peek(self, filter: Callable[[Any], bool] | None = None) -> Any | None:
        """Return (without removing) the first matching item, or None."""
        for item in self._items:
            if filter is None or filter(item):
                return item
        return None

    def _dispatch(self) -> None:
        # Match waiting getters against buffered items (FIFO both ways).
        progressed = True
        while progressed:
            progressed = False
            for gi, (gev, pred) in enumerate(self._getters):
                for ii, item in enumerate(self._items):
                    if pred is None or pred(item):
                        del self._items[ii]
                        del self._getters[gi]
                        gev._value = item  # inlined succeed()
                        self.sim._schedule(gev)
                        progressed = True
                        break
                if progressed:
                    break
            # Admit blocked putters into freed capacity.
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                pev, item = self._putters.popleft()
                self._items.append(item)
                pev.succeed(item)
                progressed = True


class Container:
    """A continuous-quantity resource (e.g. node memory in bytes)."""

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "",
    ):
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "container"
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = self.sim.event(f"put:{self.name}")
        self._putters.append((ev, amount))
        self._dispatch()
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        if amount > self.capacity:
            raise ValueError("requested more than capacity; would never succeed")
        ev = self.sim.event(f"get:{self.name}")
        self._getters.append((ev, amount))
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    ev.succeed(amount)
                    progressed = True
            if self._getters:
                ev, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    ev.succeed(amount)
                    progressed = True
