"""Tests for composite waiting primitives (AllOf/AnyOf/Condition)."""

import pytest

from repro.sim import AllOf, AnyOf, Condition, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestAllOf:
    def test_fires_at_latest_child(self, sim):
        evs = [sim.timeout(t, value=t) for t in (1.0, 3.0, 2.0)]

        def waiter():
            results = yield AllOf(sim, evs)
            return sorted(results.values())

        p = sim.process(waiter())
        assert sim.run(until=p) == [1.0, 2.0, 3.0]
        assert sim.now == 3.0

    def test_empty_all_fires_immediately(self, sim):
        def waiter():
            results = yield AllOf(sim, [])
            return results

        p = sim.process(waiter())
        assert sim.run(until=p) == {}
        assert sim.now == 0.0

    def test_child_failure_fails_condition(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()

        def failer():
            yield sim.timeout(0.5)
            bad.fail(RuntimeError("child broke"))

        def waiter():
            try:
                yield AllOf(sim, [good, bad])
            except RuntimeError:
                return "failed"

        sim.process(failer())
        p = sim.process(waiter())
        assert sim.run(until=p) == "failed"


class TestAnyOf:
    def test_fires_at_earliest_child(self, sim):
        evs = [sim.timeout(t, value=t) for t in (5.0, 1.0, 3.0)]

        def waiter():
            results = yield AnyOf(sim, evs)
            return list(results.values())

        p = sim.process(waiter())
        assert sim.run(until=p) == [1.0]
        assert sim.now == 1.0

    def test_empty_any_fires_immediately(self, sim):
        def waiter():
            results = yield AnyOf(sim, [])
            return results

        p = sim.process(waiter())
        assert sim.run(until=p) == {}


class TestCondition:
    def test_need_k_of_n(self, sim):
        evs = [sim.timeout(t) for t in (1.0, 2.0, 3.0, 4.0)]

        def waiter():
            yield Condition(sim, evs, need=2)
            return sim.now

        p = sim.process(waiter())
        assert sim.run(until=p) == 2.0

    def test_need_out_of_range(self, sim):
        with pytest.raises(ValueError):
            Condition(sim, [sim.event()], need=2)
        with pytest.raises(ValueError):
            Condition(sim, [sim.event()], need=-1)

    def test_late_children_do_not_retrigger(self, sim):
        evs = [sim.timeout(1.0), sim.timeout(2.0)]
        cond = Condition(sim, evs, need=1)
        sim.run()
        assert cond.ok
        assert len(cond.value) == 1
