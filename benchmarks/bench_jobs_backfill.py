"""Backfill ablation: admission policy x cluster outcome.

The job manager multiplexes one simulated cluster across a seeded
Poisson stream of mixed-size Task Bench jobs; this ablation prices the
admission policy.  Strict FIFO head-of-line blocking leaves nodes idle
whenever the queue head is wide; EASY backfill slides small jobs into
those holes without delaying the head's reservation, which must show up
as strictly higher space-shared utilization AND lower mean bounded
slowdown on the same workload.  Fair-share is the contrast policy:
it reorders for tenant equity, not packing.

Determinism: the workload, the policies, and the simulator are all
seeded/pure, so two runs of the same configuration must produce
bit-identical schedules — asserted here and relied on everywhere else.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.cluster.machine import Cluster, ClusterSpec
from repro.jobs import JobManager, PoissonWorkload

#: 16-node worker pool (+ manager node), ~24 jobs arriving ~10 ms apart
#: with 35% of them wanting half the machine — enough contention that
#: the queue head actually blocks.
NODES = 17
WORKLOAD = dict(
    jobs=24,
    mean_interarrival=0.01,
    large=(8, 12),
    large_fraction=0.35,
    steps=(3, 6),
    task_seconds=(0.02, 0.08),
)
QUICK_WORKLOAD = dict(WORKLOAD, jobs=8)


def run_policy(policy: str, seed: int = 7, quick: bool = False):
    params = QUICK_WORKLOAD if quick else WORKLOAD
    workload = PoissonWorkload(seed=seed, **params).generate()
    manager = JobManager(
        Cluster(ClusterSpec(num_nodes=NODES)), policy=policy
    )
    return manager.run(workload)


def schedule_of(report):
    """The comparable essence of a run: who started/finished when."""
    return [
        (r.name, r.start_time, r.finish_time, r.backfilled, r.state)
        for r in report.records
    ]


class TestAblationBackfill:
    def test_bench_backfill_beats_fifo(self, benchmark):
        def sweep():
            return {p: run_policy(p) for p in ("fifo", "fair", "backfill")}

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        fifo, backfill = results["fifo"], results["backfill"]
        assert fifo.total_jobs >= 20
        assert all(r.completed == r.total_jobs for r in results.values())
        # The tentpole claim: backfill packs the holes FIFO leaves.
        assert backfill.utilization > fifo.utilization
        assert backfill.mean_bounded_slowdown < fifo.mean_bounded_slowdown
        assert backfill.backfilled >= 1

    def test_bench_seeded_replay_is_identical(self, benchmark):
        def twice():
            return run_policy("backfill"), run_policy("backfill")

        first, second = benchmark.pedantic(twice, rounds=1, iterations=1)
        assert schedule_of(first) == schedule_of(second)
        assert first.utilization == second.utilization
        assert first.mean_bounded_slowdown == second.mean_bounded_slowdown


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--quick", action="store_true",
                        help="8-job workload for smoke tests")
    args = parser.parse_args(argv)

    rows = []
    for policy in ("fifo", "fair", "backfill"):
        rep = run_policy(policy, seed=args.seed, quick=args.quick)
        rows.append([
            policy,
            f"{rep.utilization * 100:.1f}",
            f"{rep.mean_wait * 1e3:.1f}",
            f"{rep.mean_bounded_slowdown:.2f}",
            rep.backfilled,
            f"{rep.completed}/{rep.total_jobs}",
        ])
    print(format_table(
        ["policy", "util %", "mean wait (ms)", "mean b.slowdown",
         "backfills", "done"],
        rows,
        title=(
            f"Ablation J — admission policy on a {NODES - 1}-node pool "
            f"(seed {args.seed}, "
            f"{(QUICK_WORKLOAD if args.quick else WORKLOAD)['jobs']} jobs)"
        ),
    ))


if __name__ == "__main__":
    main()
