"""Property-based tests for dependence analysis and task graphs."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.omp import Buffer, DependenceAnalyzer, OmpProgram, TaskGraph
from repro.omp.task import Dep, DepType, Task, TaskKind

# A program is a list of tasks; each task is a list of (buffer_index,
# dep_type) clause items over a small pool of buffers.
dep_types = st.sampled_from([DepType.IN, DepType.OUT, DepType.INOUT])
clause = st.tuples(st.integers(min_value=0, max_value=4), dep_types)
program_strategy = st.lists(
    st.lists(clause, min_size=1, max_size=4), min_size=1, max_size=25
)


def build(program_clauses):
    buffers = [Buffer(100, name=f"b{i}") for i in range(5)]
    analyzer = DependenceAnalyzer()
    graph = TaskGraph()
    tasks = []
    for task_id, clauses in enumerate(program_clauses):
        deps = tuple(Dep(buffers[bi], dt) for bi, dt in clauses)
        task = Task(task_id=task_id, kind=TaskKind.TARGET, deps=deps)
        tasks.append(task)
        graph.add_task(task)
        for pred, succ in analyzer.edges_for(task):
            graph.add_edge(pred, succ)
    return buffers, tasks, graph


@given(program_strategy)
@settings(deadline=None, max_examples=60)
def test_dependence_graph_is_acyclic(program_clauses):
    _, _, graph = build(program_clauses)
    graph.validate()  # raises on a cycle


@given(program_strategy)
@settings(deadline=None, max_examples=60)
def test_edges_point_forward_in_program_order(program_clauses):
    _, _, graph = build(program_clauses)
    for pred, succ in graph.edges():
        assert pred.task_id < succ.task_id


@given(program_strategy)
@settings(deadline=None, max_examples=60)
def test_conflicting_accesses_are_ordered(program_clauses):
    """Any two tasks where at least one writes a shared buffer must be
    connected by a directed path (the fundamental OpenMP guarantee)."""
    _, tasks, graph = build(program_clauses)
    g = graph.nx_graph()
    closure = nx.transitive_closure_dag(g)
    for i, earlier in enumerate(tasks):
        for later in tasks[i + 1:]:
            conflict = False
            for b in earlier.touched:
                t1 = earlier.dep_type_for(b)
                t2 = later.dep_type_for(b)
                if t1 is None or t2 is None:
                    continue
                if t1.writes or t2.writes:
                    conflict = True
                    break
            if conflict:
                assert closure.has_edge(earlier.task_id, later.task_id), (
                    f"{earlier.name} and {later.name} conflict but are "
                    "unordered"
                )


@given(program_strategy)
@settings(deadline=None, max_examples=60)
def test_readers_between_writes_not_serialized(program_clauses):
    """Two pure readers of the same buffer (with no write in between)
    must NOT have a direct edge (reads may run concurrently)."""
    _, tasks, graph = build(program_clauses)
    g = graph.nx_graph()
    # Track, per buffer, groups of consecutive readers.
    last_writer: dict[int, int] = {}
    readers_since: dict[int, list[int]] = {}
    for task in tasks:
        for dep in task.deps:
            bid = dep.buffer.buffer_id
            if dep.type == DepType.IN and task.dep_type_for(dep.buffer) == DepType.IN:
                for other in readers_since.get(bid, []):
                    # No direct edge caused *by this buffer alone* —
                    # there may still be an edge via a different buffer,
                    # so only assert when the tasks share just this one.
                    shared = {
                        b.buffer_id for b in task.touched
                    } & {
                        b.buffer_id
                        for b in tasks[other].touched
                    }
                    if shared == {bid}:
                        assert not g.has_edge(other, task.task_id)
                readers_since.setdefault(bid, []).append(task.task_id)
        for dep in task.deps:
            if dep.type.writes:
                readers_since[dep.buffer.buffer_id] = []


@given(program_strategy)
@settings(deadline=None, max_examples=40)
def test_topological_order_respects_edges(program_clauses):
    _, _, graph = build(program_clauses)
    order = {t.task_id: i for i, t in enumerate(graph.topological_order())}
    for pred, succ in graph.edges():
        assert order[pred.task_id] < order[succ.task_id]


@given(program_strategy)
@settings(deadline=None, max_examples=30)
def test_host_runtime_executes_every_task_once(program_clauses):
    from repro.omp.host import HostRuntime

    prog = OmpProgram()
    buffers = [prog.buffer(8, name=f"b{i}") for i in range(5)]
    counts = {}
    for task_id, clauses in enumerate(program_clauses):
        # validate() rejects in+out on one buffer (the legal spelling is
        # inout), so coalesce the random clauses per buffer first.
        per_buf: dict[int, DepType] = {}
        for bi, dt in clauses:
            prev = per_buf.get(bi)
            per_buf[bi] = dt if prev is None or prev == dt else DepType.INOUT
        deps = [Dep(buffers[bi], dt) for bi, dt in per_buf.items()]

        def body(*args, tid=task_id):
            counts[tid] = counts.get(tid, 0) + 1

        prog.target(fn=body, depend=deps, cost=0.001)
    result = HostRuntime(num_threads=3).run(prog)
    assert result.num_tasks == len(program_clauses)
    assert all(counts.get(tid, 0) == 1 for tid in range(len(program_clauses)))
