"""Sparse vector clocks for happens-before tracking.

Adapted from the dynamic-vector-clock design (clocks grow as new
processes appear) rather than fixed-width MPI-rank clocks: the race
detector assigns one component per *task instance*, so the clock
dictionary only holds components the task has actually heard about —
O(ancestors), not O(tasks).
"""

from __future__ import annotations


class VectorClock:
    """A grow-on-demand vector clock keyed by context id."""

    __slots__ = ("_c",)

    def __init__(self, components: dict[int, int] | None = None):
        self._c: dict[int, int] = dict(components) if components else {}

    def get(self, ctx: int) -> int:
        return self._c.get(ctx, 0)

    def tick(self, ctx: int) -> None:
        self._c[ctx] = self._c.get(ctx, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Component-wise maximum (receive/merge rule)."""
        for ctx, count in other._c.items():
            if count > self._c.get(ctx, 0):
                self._c[ctx] = count

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def leq(self, other: "VectorClock") -> bool:
        """True when self ≤ other in every component (happens-before or
        equal)."""
        return all(count <= other._c.get(ctx, 0)
                   for ctx, count in self._c.items())

    def __len__(self) -> int:
        return len(self._c)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return {k: v for k, v in self._c.items() if v} == {
            k: v for k, v in other._c.items() if v
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._c.items()))
        return f"<VC {{{inner}}}>"


def ordered(a_clock: VectorClock, a_ctx: int, b_clock: VectorClock,
            b_ctx: int) -> bool:
    """True when the access stamped ``(a_clock, a_ctx)`` and the access
    stamped ``(b_clock, b_ctx)`` are happens-before ordered either way.

    An access in context A happened-before one in context B iff B's
    clock has caught up with A's own component (B transitively joined
    A's finish clock).
    """
    return (
        b_clock.get(a_ctx) >= a_clock.get(a_ctx)
        or a_clock.get(b_ctx) >= b_clock.get(b_ctx)
    )
