"""Simulated HPC cluster: nodes, network, and machine assembly.

This models the evaluation platform of the paper (§6.1): up to 64 nodes,
each with 2× Intel Cascade Lake 6252 (48 cores / 96 threads per node in
total; the paper reports 24 cores/48 threads per CPU), 384 GB RAM, and a
100 Gb/s InfiniBand interconnect driven through up to 64 MPICH Virtual
Communication Interfaces (VCIs).
"""

from repro.cluster.machine import Cluster, ClusterSpec
from repro.cluster.network import Network, NetworkSpec, Nic
from repro.cluster.node import Node, NodeSpec
from repro.cluster.partition import (
    ClusterView,
    NodePool,
    PartitionError,
    shard_reserved,
)
from repro.cluster.trace import Span, TraceRecorder

__all__ = [
    "Cluster",
    "ClusterSpec",
    "ClusterView",
    "Network",
    "NetworkSpec",
    "Nic",
    "Node",
    "NodePool",
    "NodeSpec",
    "PartitionError",
    "Span",
    "TraceRecorder",
    "shard_reserved",
]
