"""End-to-end head-node failover tests.

The head crashes mid-run; the ring confirms its death via a quorum of
both ring neighbors, the most-caught-up standby is elected, adopts its
log replica, rebuilds the directory and in-flight set, re-issues
unacknowledged dispatches idempotently, and the run completes with the
exact bytes a fault-free run produces.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.faults import (
    FailoverEvent,
    FaultTolerantRuntime,
    NodeFailure,
    RecoveryError,
)
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_inout, depend_out

FAST = OMPCConfig(
    startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
    event_origin_overhead=0.0, event_handler_overhead=0.0,
    task_creation_overhead=0.0, schedule_unit_cost=0.0,
)
HA = dataclasses.replace(FAST, head_standbys=2)


def shots_program(num_shots=4, cost=0.05):
    prog = OmpProgram("shots")
    model = np.arange(16.0)
    model_buf = prog.buffer(model.nbytes, data=model, name="model")
    prog.target_enter_data(model_buf)
    outputs = []
    out_bufs = []
    for i in range(num_shots):
        out = np.zeros(16)
        outputs.append(out)
        buf = prog.buffer(out.nbytes, data=out, name=f"out{i}")
        out_bufs.append(buf)
        prog.target(
            fn=lambda m, o: np.copyto(o, m * 2.0),
            depend=[depend_in(model_buf), depend_out(buf)],
            cost=cost,
            name=f"shot{i}",
        )
    prog.target_exit_data(*out_bufs)
    return prog, model, outputs


def chain_program(steps=4, cost=0.05):
    """A serial INOUT chain: x += 1, `steps` times — order-sensitive."""
    prog = OmpProgram("chain")
    x = np.zeros(8)
    buf = prog.buffer(x.nbytes, data=x, name="x")
    prog.target_enter_data(buf)
    for i in range(steps):
        prog.target(
            fn=lambda v: np.add(v, 1.0, out=v),
            depend=[depend_inout(buf)],
            cost=cost,
            name=f"step{i}",
        )
    prog.target_exit_data(buf)
    return prog, x


class TestHeadFailover:
    def test_bit_identical_to_fault_free(self):
        prog, model, clean_out = shots_program()
        clean = FaultTolerantRuntime(ClusterSpec(num_nodes=5), HA).run(prog)

        prog2, _, out = shots_program()
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=5), HA).run(
            prog2, failures=[NodeFailure(time=0.02, node=0)]
        )
        assert res.head_failovers == 1
        assert res.final_head != 0
        assert res.failures == [0]
        for a, b in zip(clean_out, out):
            assert np.array_equal(a, b)  # bit-identical numerics
            np.testing.assert_allclose(b, model * 2.0)
        assert clean.head_failovers == 0 and clean.final_head == 0

    def test_no_standbys_is_a_clean_error_not_a_hang(self):
        prog, _, _ = shots_program(cost=0.1)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST)
        with pytest.raises(RecoveryError, match="no standbys"):
            rt.run(prog, failures=[NodeFailure(time=0.02, node=0)])

    def test_failover_telemetry(self):
        prog, _, _ = shots_program(cost=0.1)
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=5), HA).run(
            prog, failures=[NodeFailure(time=0.03, node=0)]
        )
        assert len(res.failovers) == 1
        fo = res.failovers[0]
        assert isinstance(fo, FailoverEvent)
        assert (fo.old_head, fo.new_head) == (0, res.final_head)
        assert fo.epoch == 1
        assert fo.failed_at == 0.03
        # Detection needs missed heartbeat windows plus the two-neighbor
        # quorum round trip; election and replay add more.
        assert fo.detection_time > 0
        assert fo.election_time > 0
        assert fo.recovery_time >= fo.election_time
        assert fo.resumed_at >= fo.elected_at >= fo.declared_at
        assert fo.replayed_records > 0
        assert res.log_records_appended >= fo.replayed_records
        assert res.replication_bytes > 0
        assert res.log_flushes >= 1  # the bootstrap fence at minimum
        assert res.replication["records_sent"] > 0

    def test_standby_replication_costs_nothing_when_off(self):
        prog, _, _ = shots_program()
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=5), FAST).run(prog)
        assert res.log_records_appended == 0
        assert res.replication_bytes == 0.0
        assert res.replication == {}

    def test_inout_chain_survives_head_crash(self):
        prog, x_clean = chain_program()
        FaultTolerantRuntime(ClusterSpec(num_nodes=5), HA).run(prog)

        prog2, x = chain_program()
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=5), HA).run(
            prog2, failures=[NodeFailure(time=0.07, node=0)]
        )
        assert res.head_failovers == 1
        assert np.array_equal(x, x_clean)
        np.testing.assert_allclose(x, np.full(8, 4.0))

    def test_failover_with_checkpointing(self):
        cfg = dataclasses.replace(HA, checkpoint_interval=0.02)
        prog, x_clean = chain_program(steps=5)
        FaultTolerantRuntime(ClusterSpec(num_nodes=5), cfg).run(prog)

        prog2, x = chain_program(steps=5)
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=5), cfg).run(
            prog2, failures=[NodeFailure(time=0.11, node=0)]
        )
        assert res.head_failovers == 1
        assert np.array_equal(x, x_clean)

    def test_double_failover(self):
        # The first elected head dies too; a second election follows.
        cfg = dataclasses.replace(FAST, head_standbys=3)
        prog, model, out = shots_program(num_shots=6, cost=0.08)
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=6), cfg).run(
            prog,
            failures=[
                NodeFailure(time=0.03, node=0),
                NodeFailure(time=0.06, node=1),
            ],
        )
        assert res.head_failovers == 2
        assert [fo.epoch for fo in res.failovers] == [1, 2]
        assert res.failovers[0].new_head == res.failovers[1].old_head
        assert res.final_head not in (0, 1)
        for o in out:
            np.testing.assert_allclose(o, model * 2.0)

    def test_head_and_worker_crash_together(self):
        prog, model, out = shots_program(num_shots=6, cost=0.1)
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=6), HA).run(
            prog,
            failures=[
                NodeFailure(time=0.03, node=0),
                NodeFailure(time=0.05, node=4),
            ],
        )
        assert res.head_failovers == 1
        assert sorted(res.failures) == [0, 4]
        for o in out:
            np.testing.assert_allclose(o, model * 2.0)

    def test_all_standbys_dead_raises(self):
        prog, _, _ = shots_program(num_shots=4, cost=0.2)
        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), HA)
        with pytest.raises(RecoveryError):
            rt.run(prog, failures=[
                NodeFailure(time=0.02, node=1),
                NodeFailure(time=0.03, node=2),
                NodeFailure(time=0.08, node=0),
            ])

    def test_standbys_clamped_to_worker_count(self):
        cfg = dataclasses.replace(FAST, head_standbys=99)
        prog, model, out = shots_program()
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=4), cfg).run(
            prog, failures=[NodeFailure(time=0.02, node=0)]
        )
        assert res.head_failovers == 1
        for o in out:
            np.testing.assert_allclose(o, model * 2.0)

    def test_late_head_crash_after_all_work_done(self):
        # Head dies while shot completions / exit-data drains are in
        # flight; the elected head must still retrieve every output to
        # the (rehomed) host image.
        prog, model, out = shots_program(num_shots=4, cost=0.05)
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=5), HA).run(
            prog, failures=[NodeFailure(time=0.049, node=0)]
        )
        assert res.head_failovers == 1
        for o in out:
            np.testing.assert_allclose(o, model * 2.0)

    def test_heartbeat_health_counters_surface(self):
        prog, _, _ = shots_program(cost=0.1)
        res = FaultTolerantRuntime(ClusterSpec(num_nodes=5), HA).run(
            prog, failures=[NodeFailure(time=0.03, node=0)]
        )
        # Death detection requires missed heartbeat windows first.
        assert res.missed_heartbeat_windows > 0

    def test_makespan_overhead_is_bounded(self):
        prog, _, _ = shots_program(num_shots=4, cost=0.1)
        clean = FaultTolerantRuntime(ClusterSpec(num_nodes=5), HA).run(prog)
        prog2, _, _ = shots_program(num_shots=4, cost=0.1)
        failed = FaultTolerantRuntime(ClusterSpec(num_nodes=5), HA).run(
            prog2, failures=[NodeFailure(time=0.05, node=0)]
        )
        assert failed.head_failovers == 1
        # Worker-side dedup makes re-issued dispatches nearly free, so
        # the overhead is small — but it must stay bounded (no serial
        # re-execution of completed work).
        assert failed.makespan < clean.makespan + 0.5
        assert failed.failovers[0].recovery_time > 0
