"""Tests for workload generation: Poisson streams and JSON traces."""

import json

import pytest

from repro.jobs import PoissonWorkload, jobs_from_json


class TestPoissonWorkload:
    def test_same_seed_same_stream(self):
        a = PoissonWorkload(seed=3, jobs=12).generate()
        b = PoissonWorkload(seed=3, jobs=12).generate()
        assert [(t, s.name, s.nodes, s.tenant, s.est_runtime)
                for t, s in a] == \
               [(t, s.name, s.nodes, s.tenant, s.est_runtime)
                for t, s in b]

    def test_different_seed_different_stream(self):
        a = PoissonWorkload(seed=3, jobs=12).generate()
        b = PoissonWorkload(seed=4, jobs=12).generate()
        assert [t for t, _ in a] != [t for t, _ in b]

    def test_shapes_respect_bounds(self):
        wl = PoissonWorkload(seed=1, jobs=50, small=(2, 3), large=(6, 9))
        stream = wl.generate()
        assert len(stream) == 50
        times = [t for t, _ in stream]
        assert times == sorted(times)
        assert all(t > 0 for t in times)
        sizes = {s.nodes for _, s in stream}
        assert sizes <= set(range(2, 4)) | set(range(6, 10))
        assert {s.tenant for _, s in stream} == {"alice", "bob", "carol"}
        # Estimates exist: EASY backfill depends on them.
        assert all(s.est_runtime > 0 for _, s in stream)

    def test_programs_are_buildable(self):
        _, spec = PoissonWorkload(seed=2, jobs=1).generate()[0]
        program = spec.program()
        assert program is not None
        # A fresh instance per call: jobs can be retried safely.
        assert spec.program() is not program


class TestJsonTrace:
    def test_replay_round_trip(self):
        text = json.dumps([
            {"name": "a", "arrival": 0.5, "nodes": 4, "tenant": "x",
             "steps": 3, "task_ms": 10.0},
            {"name": "b", "arrival": 0.1, "nodes": 2},
        ])
        stream = jobs_from_json(text)
        # Sorted by arrival regardless of listing order.
        assert [s.name for _, s in stream] == ["b", "a"]
        assert stream[1][0] == 0.5
        a = stream[1][1]
        assert a.nodes == 4 and a.tenant == "x"

    def test_explicit_estimate_override(self):
        stream = jobs_from_json(json.dumps(
            [{"nodes": 3, "est_runtime": 42.0}]
        ))
        assert stream[0][1].est_runtime == 42.0

    def test_missing_nodes_rejected(self):
        with pytest.raises(ValueError, match="'nodes' is required"):
            jobs_from_json(json.dumps([{"name": "x"}]))

    def test_non_list_rejected(self):
        with pytest.raises(ValueError, match="JSON list"):
            jobs_from_json(json.dumps({"nodes": 3}))
