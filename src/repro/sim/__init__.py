"""Deterministic discrete-event simulation kernel.

This subpackage is the substrate for the whole reproduction: every
"thread" the OMPC paper describes (control thread, OpenMP workers, the
gate thread, event handlers, chare schedulers, MPI ranks) runs as a
:class:`~repro.sim.core.Process` — a Python generator driven by a
single-threaded, deterministic event loop.

The design follows the classic process-interaction style (as popularized
by SimPy): processes ``yield`` events and are resumed when those events
fire.  Determinism is guaranteed by a strict (time, priority, sequence)
ordering of the event heap; no wall-clock time or unseeded randomness is
ever consulted.
"""

from repro.sim.core import Event, Process, Simulator
from repro.sim.errors import Interrupt, SimulationError, DeadlockError
from repro.sim.primitives import AllOf, AnyOf, Condition, Timeout
from repro.sim.resources import Container, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "DeadlockError",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
