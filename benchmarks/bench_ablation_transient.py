"""Transient-fault ablation: loss rate x checkpoint interval.

The fail-stop ablation (``bench_ablation_faults``) prices crashes; this
one prices the faults a runtime must *ride out*: how much simulated time
does message loss cost once the reliable transport retransmits through
it, and what does periodic checkpointing add on top?  A stencil-shaped
graph keeps inter-node traffic high so the lossy fabric actually hurts.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import format_table
from repro.cluster.machine import ClusterSpec
from repro.core import FaultPlan, FaultTolerantRuntime, LinkLoss, OMPCConfig
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_out


def stencil_program(width: int = 4, steps: int = 3, cost: float = 0.02):
    prog = OmpProgram("stencil")
    cells = [np.full(64, float(i)) for i in range(width)]
    bufs = [
        prog.buffer(c.nbytes, data=c, name=f"c{i}")
        for i, c in enumerate(cells)
    ]
    for buf in bufs:
        prog.target_enter_data(buf)
    cur = bufs
    for step in range(steps):
        nxt = []
        for i in range(width):
            out = prog.buffer(512, name=f"s{step}c{i}")
            halo = sorted({max(i - 1, 0), i, min(i + 1, width - 1)})
            prog.target(
                depend=[depend_in(cur[j]) for j in halo] + [depend_out(out)],
                cost=cost, name=f"s{step}t{i}",
            )
            nxt.append(out)
        cur = nxt
    prog.target_exit_data(*cur)
    return prog


def run_once(loss: float, checkpoint_interval: float, seed: int = 11):
    cfg = OMPCConfig(checkpoint_interval=checkpoint_interval)
    plan = (
        FaultPlan(seed=seed, losses=[LinkLoss(probability=loss)])
        if loss > 0 else None
    )
    rt = FaultTolerantRuntime(ClusterSpec(num_nodes=5), cfg)
    return rt.run(stencil_program(), fault_plan=plan)


class TestAblationTransient:
    def test_bench_loss_costs_time_not_answers(self, benchmark):
        def sweep():
            out = {}
            for loss in (0.0, 0.01, 0.05):
                out[loss] = run_once(loss, 0.0)
            return out

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        clean = results[0.0]
        for loss in (0.01, 0.05):
            res = results[loss]
            # Loss is paid in retransmissions and makespan, never in
            # failures or wrong detections.
            assert res.makespan >= clean.makespan
            assert res.failures == []
            assert res.false_positive_detections == 0
        assert results[0.05].transport["retransmissions"] >= 1

    def test_bench_checkpoint_overhead_bounded(self, benchmark):
        def sweep():
            return {
                interval: run_once(0.01, interval)
                for interval in (0.0, 0.05, 0.02)
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        base = results[0.0]
        for interval in (0.05, 0.02):
            res = results[interval]
            assert res.checkpoints_taken >= 1
            # Checkpoint traffic is charged but must stay a modest tax.
            assert res.makespan < base.makespan * 1.5


def main() -> None:
    rows = []
    clean = run_once(0.0, 0.0)
    for loss in (0.0, 0.001, 0.01, 0.05):
        for interval in (0.0, 0.05, 0.02):
            res = run_once(loss, interval)
            overhead = (res.makespan / clean.makespan - 1.0) * 100.0
            rows.append([
                f"{loss * 100:g}%",
                "off" if interval == 0 else f"{interval * 1e3:.0f}ms",
                res.makespan,
                f"{overhead:+.1f}%",
                res.transport.get("retransmissions", 0),
                res.checkpoints_taken,
            ])
    print(
        format_table(
            ["loss", "ckpt", "makespan (s)", "overhead", "retx", "ckpts"],
            rows,
            title=(
                "Ablation T — transient faults: loss rate x checkpoint "
                "interval (4x3 stencil, 4 workers)"
            ),
        )
    )


if __name__ == "__main__":
    main()
