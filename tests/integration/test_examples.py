"""Smoke tests: every example script must run to completion.

Examples are part of the public API surface (the README points users at
them), so they are executed here — with their own ``main()`` — and
their internal assertions double as correctness checks.  The seismic
example is exercised at reduced size by the Awave tests instead (full
size is benchmark-scale).
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def run_example(module_name: str) -> None:
    module = importlib.import_module(module_name)
    try:
        module.main()
    finally:
        # Keep one test's module state from leaking into the next.
        sys.modules.pop(module_name, None)


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart")
        out = capsys.readouterr().out
        assert "OMPC cluster" in out
        assert "task placement" in out

    def test_data_pipeline(self, capsys):
        run_example("data_pipeline")
        out = capsys.readouterr().out
        assert "matches expected mean" in out

    def test_fault_tolerance(self, capsys):
        run_example("fault_tolerance")
        out = capsys.readouterr().out
        assert "all shot outputs correct: True" in out
        assert "declared dead" in out

    def test_gpu_offloading(self, capsys):
        run_example("gpu_offloading")
        out = capsys.readouterr().out
        assert "gpu executions: 4" in out

    def test_taskbench_comparison(self, capsys):
        run_example("taskbench_comparison")
        out = capsys.readouterr().out
        assert "OMPC" in out and "Charm++" in out
