"""Tests for the replicated head commit log (repro.core.headlog)."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.events import EventSystem
from repro.core.headlog import HeadLog, LogRecord, Replicator
from repro.mpi import MpiWorld

FAST = OMPCConfig(
    startup_time=0.0, shutdown_time=0.0, first_event_interval=0.0,
    event_origin_overhead=0.0, event_handler_overhead=0.0,
    task_creation_overhead=0.0, schedule_unit_cost=0.0,
)


class TestHeadLog:
    def test_append_assigns_index_and_epoch(self):
        log = HeadLog(record_bytes=32.0)
        a = log.append("dispatch", task_id=7, node=2)
        b = log.append("task_done", nbytes=128.0, task_id=7, node=2)
        assert (a.index, a.epoch, a.kind) == (0, 0, "dispatch")
        assert a.data == {"task_id": 7, "node": 2}
        assert a.nbytes == 32.0  # default record size
        assert (b.index, b.nbytes) == (1, 128.0)  # explicit override
        assert len(log) == 2 and log.appended == 2

    def test_adopt_replaces_log_and_bumps_epoch(self):
        log = HeadLog()
        for i in range(5):
            log.append("dispatch", task_id=i)
        replica = log.records[:3]  # a standby that lagged by two records
        log.adopt(list(replica), epoch=1)
        assert len(log) == 3 and log.epoch == 1
        assert log.appended == 5  # telemetry counter survives adoption
        rec = log.append("node_dead", node=0)
        assert (rec.index, rec.epoch) == (3, 1)

    def test_records_are_immutable(self):
        rec = HeadLog().append("checkpoint", buffer_id=1)
        with pytest.raises(AttributeError):
            rec.epoch = 9


def make(n=4, standbys=(1, 2), **kw):
    cluster = Cluster(ClusterSpec(num_nodes=n))
    mpi = MpiWorld(cluster)
    events = EventSystem(cluster, mpi, FAST)
    events.start()
    log = HeadLog()
    repl = Replicator(
        cluster.sim, mpi, events, log, list(standbys), head=0, **kw
    )
    repl.start()
    return cluster, events, log, repl


class TestConflictHandling:
    def test_duplicate_record_dropped(self):
        _, _, _, repl = make()
        replica = []
        rec = LogRecord(0, 0, "dispatch", 64.0)
        repl._apply(replica, rec)
        repl._apply(replica, rec)  # retransmission
        assert len(replica) == 1
        assert repl.stats["duplicates"] == 1

    def test_stale_tail_truncated_by_newer_epoch(self):
        _, _, _, repl = make()
        replica = []
        repl._apply(replica, LogRecord(0, 0, "dispatch", 64.0))
        repl._apply(replica, LogRecord(1, 0, "dispatch", 64.0))
        repl._apply(replica, LogRecord(2, 0, "dispatch", 64.0))
        # A new head (epoch 1) overwrites index 1: the old epoch-0 tail
        # from the deposed head must be truncated, Raft-style.
        repl._apply(replica, LogRecord(1, 1, "node_dead", 64.0))
        assert [(r.index, r.epoch) for r in replica] == [(0, 0), (1, 1)]
        assert repl.stats["truncations"] == 1

    def test_gap_dropped_for_resend(self):
        _, _, _, repl = make()
        replica = [LogRecord(0, 0, "dispatch", 64.0)]
        repl._apply(replica, LogRecord(4, 0, "dispatch", 64.0))
        assert len(replica) == 1  # out-of-order record ignored


class TestReplication:
    def run_flush(self, cluster, repl, log):
        for s in repl.live_standbys():
            cluster.sim.process(repl.pump(s), name=f"pump{s}")

        def main():
            yield from repl.flush()

        p = cluster.sim.process(main())
        cluster.sim.run(until=p)

    def test_replicas_become_full_prefix_copies(self):
        cluster, _, log, repl = make()
        for i in range(6):
            log.append("dispatch", task_id=i, node=1 + i % 2)
        repl.notify()
        self.run_flush(cluster, repl, log)
        for s in (1, 2):
            assert [r.index for r in repl.replicas[s]] == list(range(6))
            assert repl.acked[s] == 6
        assert repl.stats["records_sent"] == 12
        assert repl.stats["bytes_sent"] == 12 * log.record_bytes
        assert repl.committed() == 6

    def test_flush_ignores_dead_standby(self):
        cluster, events, log, repl = make()
        for i in range(3):
            log.append("dispatch", task_id=i)

        def main():
            events.fail_node(2)
            yield from repl.flush()

        cluster.sim.process(repl.pump(1), name="pump1")
        repl.notify()
        p = cluster.sim.process(main())
        cluster.sim.run(until=p)
        assert repl.acked[1] == 3
        assert repl.replicas[2] == []  # dead standby never caught up
        assert repl.committed() == 3

    def test_committed_with_no_live_standby_is_whole_log(self):
        _, events, log, repl = make()
        log.append("dispatch", task_id=0)
        events.fail_node(1)
        events.fail_node(2)
        assert repl.live_standbys() == []
        assert repl.committed() == 1


class TestElection:
    def prime(self, repl, lengths, epochs=None):
        """Hand-build replicas of the given lengths (and last epochs)."""
        for s, n in lengths.items():
            ep = (epochs or {}).get(s, 0)
            repl.replicas[s] = [
                LogRecord(i, ep, "dispatch", 64.0) for i in range(n)
            ]

    def run_elect(self, cluster, repl, coordinator, exclude=frozenset()):
        out = []

        def main():
            res = yield from repl.elect(coordinator, exclude=exclude)
            out.append(res)

        p = cluster.sim.process(main())
        cluster.sim.run(until=p)
        return out[0]

    def test_most_caught_up_standby_wins(self):
        cluster, _, _, repl = make(n=5, standbys=(1, 2, 3))
        self.prime(repl, {1: 3, 2: 5, 3: 4})
        winner, votes = self.run_elect(cluster, repl, coordinator=1)
        assert winner == 2
        assert votes == {1: (0, 3), 2: (0, 5), 3: (0, 4)}

    def test_epoch_beats_length(self):
        # A shorter replica whose last record carries a newer epoch has
        # seen a later head incarnation — it must win (Raft §5.4.1).
        cluster, _, _, repl = make(n=5, standbys=(1, 2, 3))
        self.prime(repl, {1: 2, 2: 6, 3: 1}, epochs={1: 1})
        winner, _ = self.run_elect(cluster, repl, coordinator=2)
        assert winner == 1

    def test_tie_broken_toward_lowest_id(self):
        cluster, _, _, repl = make(n=5, standbys=(1, 2, 3))
        self.prime(repl, {1: 4, 2: 4, 3: 4})
        winner, _ = self.run_elect(cluster, repl, coordinator=3)
        assert winner == 1

    def test_excluded_and_dead_candidates_skipped(self):
        cluster, events, _, repl = make(n=5, standbys=(1, 2, 3))
        self.prime(repl, {1: 9, 2: 2, 3: 5})
        events.fail_node(3)
        winner, votes = self.run_elect(
            cluster, repl, coordinator=2, exclude=frozenset({1})
        )
        assert winner == 2
        assert set(votes) == {2}

    def test_no_candidates_returns_none(self):
        cluster, _, _, repl = make(n=4, standbys=(1, 2))
        res = self.run_elect(
            cluster, repl, coordinator=1, exclude=frozenset({1, 2})
        )
        assert res is None

    def test_set_head_reroots_and_clamps_acks(self):
        cluster, _, log, repl = make(n=5, standbys=(1, 2, 3))
        self.prime(repl, {1: 3, 2: 5, 3: 4})
        winner, votes = self.run_elect(cluster, repl, coordinator=1)
        log.adopt(list(repl.replicas[winner]), log.epoch + 1)
        repl.set_head(winner, votes)
        assert repl.head == 2
        assert repl.standbys == [1, 3]
        # Survivors resume from their reported positions, clamped.
        assert repl.acked == {1: 3, 3: 4}
