"""Property tests for the elastic overload layer (ISSUE 6 acceptance).

Three properties:

1. A seeded overload trace replays *bit-identical* — every job's exact
   outcome, every counter, every dead-letter record.
2. A preempted-and-migrated job produces the same output buffers as an
   unpreempted run — eviction restarts the program from its factory on
   fresh nodes, so partial work never leaks into the results.
3. Conservation: completed + failed + shed + dead-lettered + running
   always sums to submitted, at every load level and seed — overload
   protection sheds jobs, it never *loses* them.
"""

import numpy as np
import pytest

from repro.apps.awave import RtmConfig, VelocityModel
from repro.apps.awave.ompc_app import build_awave_program
from repro.bench.jobscmd import overload_counts, run_overload
from repro.cluster.machine import Cluster, ClusterSpec
from repro.jobs import ElasticConfig, ElasticJobManager, JobSpec, JobState
from repro.jobs.workload import _taskbench_job


def schedule_of(report):
    return [
        (r.name, r.state, r.start_time, r.finish_time, r.requeues, r.error)
        for r in report.records
    ]


class TestBitIdenticalReplay:
    @pytest.mark.parametrize("load", (1.0, 3.0))
    def test_same_seed_same_everything(self, load):
        m1, r1 = run_overload("backfill", load=load, quick=True)
        m2, r2 = run_overload("backfill", load=load, quick=True)
        assert schedule_of(r1) == schedule_of(r2)
        assert overload_counts(m1, r1) == overload_counts(m2, r2)
        assert m1.dead_letters.records == m2.dead_letters.records
        assert sorted(r1.counters.items()) == sorted(r2.counters.items())

    def test_different_seeds_differ(self):
        _, r1 = run_overload("backfill", seed=7, load=3.0, quick=True)
        _, r2 = run_overload("backfill", seed=8, load=3.0, quick=True)
        assert schedule_of(r1) != schedule_of(r2)


class TestConservation:
    @pytest.mark.parametrize("seed", (7, 11))
    @pytest.mark.parametrize("load", (1.0, 3.0, 10.0))
    def test_no_job_silently_lost(self, seed, load):
        _, report = run_overload("backfill", seed=seed, load=load,
                                 quick=True)
        assert report.accounted == report.total_jobs
        assert report.running == 0  # run() drains fully
        # Every non-completed job carries a reason.
        for r in report.records:
            if r.state != JobState.COMPLETED.value:
                assert r.error


def awave_spec(name, priority=0):
    """A preemptible Awave RTM job whose program factory records the
    output-image arrays of every build (i.e. of every attempt)."""
    vp = np.full((48, 48), 2000.0)
    vp[24:, :] = 2600.0  # one reflector so images are non-trivial
    model = VelocityModel("toy", vp, dx=10.0)
    config = RtmConfig(nt=120, smoothing_cells=2)
    built = []

    def factory():
        prog, images = build_awave_program(
            model, num_shots=2, config=config, simulated_scale=50.0
        )
        built.append(images)
        return prog

    spec = JobSpec(
        name=name, program=factory, nodes=3, tenant="geo",
        priority=priority, est_runtime=0.12, preemptible=True,
    )
    return spec, built


class TestPreemptionPreservesOutputs:
    def test_preempted_job_same_output_buffers(self):
        # Reference: the job runs alone, never preempted.
        spec_a, built_a = awave_spec("rtm-quiet")
        quiet = ElasticJobManager(
            Cluster(ClusterSpec(num_nodes=4)),
            elastic=ElasticConfig(autoscale=False, preemption=False),
        )
        quiet.run([(0.0, spec_a)])
        assert quiet.jobs[0].state is JobState.COMPLETED
        assert quiet.jobs[0].preemptions == 0
        assert len(built_a) == 1

        # Contended: an urgent job lands mid-run on a pool with no
        # spare nodes, evicting the RTM job, which migrates and reruns.
        spec_b, built_b = awave_spec("rtm-evicted")
        urgent = _taskbench_job("urgent", "ops", 3, width=2, steps=2,
                                task_seconds=0.01, priority=10)
        busy = ElasticJobManager(
            Cluster(ClusterSpec(num_nodes=4)),
            elastic=ElasticConfig(autoscale=False, max_preemptions=5),
        )
        report = busy.run([(0.0, spec_b), (0.02, urgent)])
        rtm = busy.jobs[0]
        assert rtm.state is JobState.COMPLETED
        assert rtm.preemptions >= 1
        assert len(built_b) == rtm.preemptions + 1  # one build per attempt
        assert report.completed == 2

        # The property: the migrated rerun produced exactly the images
        # the unpreempted run did.
        final = built_b[-1]
        assert len(final) == len(built_a[0]) == 2
        assert all(np.abs(img).max() > 0 for img in final)  # not vacuous
        for img_evicted, img_quiet in zip(final, built_a[0]):
            assert np.array_equal(img_evicted, img_quiet)
        # And the abandoned first attempt's buffers were discarded, not
        # merged: they are a different set of arrays entirely.
        assert built_b[0][0] is not final[0]
