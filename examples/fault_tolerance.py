"""Surviving node failures: the §3.1 heartbeat ring in action.

The paper sketches OMPC's fault-tolerance design: every node heartbeats
its ring successor; a missed deadline flags the predecessor dead, and
the runtime restarts the failed tasks.  This example runs an
Awave-style workload (read-only model, independent shot tasks) on 6
workers, kills two of them mid-run, and shows the system detect the
failures, re-dispatch the lost shots, and still produce correct output.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.core import FaultTolerantRuntime, NodeFailure
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_out


def build_workload(num_shots: int = 12):
    prog = OmpProgram("resilient-shots")
    model = np.linspace(1.0, 2.0, 256)
    model_buf = prog.buffer(model.nbytes, data=model, name="model")
    prog.target_enter_data(model_buf)
    outputs, out_bufs = [], []
    for i in range(num_shots):
        out = np.zeros_like(model)
        outputs.append(out)
        buf = prog.buffer(out.nbytes, data=out, name=f"shot{i}")
        out_bufs.append(buf)
        prog.target(
            fn=lambda m, o, k=i: np.copyto(o, np.sqrt(m) * (k + 1)),
            depend=[depend_in(model_buf), depend_out(buf)],
            cost=0.25,  # 250 ms shots: plenty of time to die mid-flight
            name=f"shot{i}",
        )
    prog.target_exit_data(*out_bufs)
    return prog, model, outputs


def main() -> None:
    prog, model, outputs = build_workload()
    runtime = FaultTolerantRuntime(ClusterSpec(num_nodes=7))
    failures = [
        NodeFailure(time=0.100, node=2),
        NodeFailure(time=0.180, node=5),
    ]
    print("running 12 shots on 6 workers; nodes 2 and 5 will crash at "
          "t=100ms and t=180ms...")
    result = runtime.run(prog, failures=failures)

    print(f"\nmakespan           : {result.makespan * 1e3:.1f} ms")
    print(f"failures injected  : nodes {sorted(result.failures)}")
    for dead, by, at in result.detections:
        print(f"heartbeat detection: node {dead} declared dead by node "
              f"{by} at t={at * 1e3:.1f} ms")
    retried = {tid: n for tid, n in result.task_attempts.items() if n > 1}
    print(f"tasks re-dispatched: {len(retried)} "
          f"(attempt counts {sorted(retried.values(), reverse=True)})")

    # Verify every shot's output despite the crashes.
    ok = all(
        np.allclose(out, np.sqrt(model) * (i + 1))
        for i, out in enumerate(outputs)
    )
    print(f"all shot outputs correct: {ok}")
    assert ok


if __name__ == "__main__":
    main()
