"""Surviving the death of the head node itself: replicated-log failover.

The head node is OMPC's single point of control — scheduler, data
directory, checkpoint store, in-flight task set.  With
``OMPCConfig.head_standbys > 0`` the head streams an ordered commit log
of every control-plane transition to standby workers; when the
heartbeat ring confirms the head dead (a quorum of both ring
neighbors, no self-confirmation through the dead head), the
most-caught-up standby is elected, adopts its log replica, rebuilds
the directory and in-flight set, re-issues unacknowledged dispatches
idempotently (workers dedup by task id and fence stale epochs), and
the run finishes bit-identical to a fault-free one.

The second scenario shows what the replication tax buys: the same
crash with 0 standbys is cleanly fatal (a RecoveryError, not a hang).

Run:  python examples/head_failover.py
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.core import (
    FaultTolerantRuntime,
    NodeFailure,
    OMPCConfig,
    RecoveryError,
)
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_out


def build_workload(num_shots: int = 12):
    prog = OmpProgram("failover-shots")
    model = np.linspace(1.0, 2.0, 256)
    model_buf = prog.buffer(model.nbytes, data=model, name="model")
    prog.target_enter_data(model_buf)
    outputs, out_bufs = [], []
    for i in range(num_shots):
        out = np.zeros_like(model)
        outputs.append(out)
        buf = prog.buffer(out.nbytes, data=out, name=f"shot{i}")
        out_bufs.append(buf)
        prog.target(
            fn=lambda m, o, k=i: np.copyto(o, np.sqrt(m) * (k + 1)),
            depend=[depend_in(model_buf), depend_out(buf)],
            cost=0.25,  # 250 ms shots: plenty of time to die mid-flight
            name=f"shot{i}",
        )
    prog.target_exit_data(*out_bufs)
    return prog, model, outputs


def main() -> None:
    # Reference: what a fault-free run of the same workload produces.
    prog, model, reference = build_workload()
    cfg = OMPCConfig(head_standbys=2)
    clean = FaultTolerantRuntime(ClusterSpec(num_nodes=6), cfg).run(prog)
    reference = [out.copy() for out in reference]

    print("--- head crash at t=150ms with 2 standbys ---")
    prog, model, outputs = build_workload()
    runtime = FaultTolerantRuntime(ClusterSpec(num_nodes=6), cfg)
    result = runtime.run(prog, failures=[NodeFailure(time=0.150, node=0)])

    (fo,) = result.failovers
    print(f"makespan            : {result.makespan * 1e3:.1f} ms "
          f"(fault-free: {clean.makespan * 1e3:.1f} ms)")
    print(f"head {fo.old_head} died at      : {fo.failed_at * 1e3:.1f} ms")
    print(f"declared dead       : +{fo.detection_time * 1e3:.2f} ms "
          "(ring quorum of both neighbors)")
    print(f"node {fo.new_head} elected      : "
          f"+{fo.election_time * 1e3:.2f} ms (most-caught-up replica)")
    print(f"resumed             : +{fo.recovery_time * 1e3:.2f} ms after "
          f"replaying {fo.replayed_records} log records, re-issuing "
          f"{fo.redispatched_tasks} in-doubt dispatches")
    print(f"replication         : "
          f"{result.replication['records_sent']:.0f} records, "
          f"{result.replication_bytes / 1024:.1f} KiB streamed, "
          f"{result.log_flushes:.0f} sync fences")
    print(f"heartbeat windows missed: {result.missed_heartbeat_windows}")

    identical = all(
        np.array_equal(out, ref) for out, ref in zip(outputs, reference)
    )
    print(f"outputs bit-identical to fault-free run: {identical}")
    assert identical
    assert result.head_failovers == 1

    print("\n--- the same crash with 0 standbys ---")
    prog, _, _ = build_workload()
    runtime = FaultTolerantRuntime(ClusterSpec(num_nodes=6), OMPCConfig())
    try:
        runtime.run(prog, failures=[NodeFailure(time=0.150, node=0)])
    except RecoveryError as exc:
        print(f"cleanly fatal: {exc}")
    else:
        raise AssertionError("expected a RecoveryError with no standbys")


if __name__ == "__main__":
    main()
