"""Tests for cluster assembly and heterogeneity overrides."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec


class TestClusterSpec:
    def test_invalid_num_nodes(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0)

    def test_override_out_of_range(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=2, node_overrides=((5, NodeSpec()),))

    def test_spec_for_override(self):
        fast = NodeSpec(cores=1, threads=1, speed=4.0)
        spec = ClusterSpec(num_nodes=3, node_overrides=((1, fast),))
        assert spec.spec_for(1).speed == 4.0
        assert spec.spec_for(0).speed == 1.0


class TestCluster:
    def test_builds_all_nodes(self):
        cluster = Cluster(ClusterSpec(num_nodes=5))
        assert cluster.num_nodes == 5
        assert len(cluster.nodes) == 5
        assert cluster.network.num_nodes == 5

    def test_head_and_workers(self):
        cluster = Cluster(ClusterSpec(num_nodes=4))
        assert cluster.head.node_id == 0
        assert [w.node_id for w in cluster.workers] == [1, 2, 3]

    def test_shared_simulator(self):
        cluster = Cluster(ClusterSpec(num_nodes=2))
        assert cluster.nodes[0].sim is cluster.sim
        assert cluster.network.sim is cluster.sim
        assert cluster.trace.sim is cluster.sim

    def test_heterogeneous_nodes(self):
        spec = ClusterSpec(
            num_nodes=2,
            node_overrides=((1, NodeSpec(cores=1, threads=1, speed=3.0)),),
        )
        cluster = Cluster(spec)
        assert cluster.node(1).compute_time(3.0) == 1.0
        assert cluster.node(0).compute_time(3.0) == 3.0


class TestTraceRecorder:
    def test_span_recording(self):
        cluster = Cluster(ClusterSpec(num_nodes=1))
        sim, trace = cluster.sim, cluster.trace

        def proc():
            open_span = trace.begin("runtime", "startup")
            yield sim.timeout(2.0)
            trace.end(open_span)

        sim.process(proc())
        sim.run()
        spans = list(trace.find("runtime", "startup"))
        assert len(spans) == 1
        assert spans[0].duration == 2.0
        assert trace.total_duration("runtime") == 2.0

    def test_counters(self):
        cluster = Cluster(ClusterSpec(num_nodes=1))
        cluster.trace.count("events")
        cluster.trace.count("events", 2)
        assert cluster.trace.counters["events"] == 3

    def test_invalid_span_rejected(self):
        cluster = Cluster(ClusterSpec(num_nodes=1))
        with pytest.raises(ValueError):
            cluster.trace.record("x", "y", start=2.0, end=1.0)

    def test_chrome_trace_export(self):
        import json

        cluster = Cluster(ClusterSpec(num_nodes=1))
        cluster.trace.record("runtime", "startup", 0.0, 0.012)
        cluster.trace.record("task", "foo", 0.012, 0.062)
        events = cluster.trace.to_chrome_trace()
        # 2 complete events + 2 process-name metadata records.
        assert len(events) == 4
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"startup", "foo"}
        startup = next(e for e in spans if e["name"] == "startup")
        assert startup["ts"] == 0.0
        assert startup["dur"] == pytest.approx(12_000.0)
        # Distinct components map to distinct pids.
        assert len({e["pid"] for e in spans}) == 2
        json.dumps(events)  # must be serializable

    def test_chrome_trace_concurrent_spans_get_distinct_lanes(self):
        # Regression: every span used to be exported with tid 0, so
        # overlapping spans stacked on one lane in the viewer.
        cluster = Cluster(ClusterSpec(num_nodes=1))
        cluster.trace.record("task", "a", 0.0, 2.0)
        cluster.trace.record("task", "b", 1.0, 3.0)
        cluster.trace.record("task", "c", 2.5, 4.0)
        spans = {
            e["name"]: e for e in cluster.trace.to_chrome_trace()
            if e["ph"] == "X"
        }
        assert spans["a"]["tid"] != spans["b"]["tid"]
        # c starts after a ends, so it reuses a freed lane.
        assert spans["c"]["tid"] == spans["a"]["tid"]
        # All on the same process (one component).
        assert len({e["pid"] for e in spans.values()}) == 1
