"""Communicators, ranks, and point-to-point messaging.

Matching semantics follow MPI: a receive names ``(source, tag)`` within
one communicator; either may be a wildcard.  Matching is FIFO over the
arrival order at the receiver, which — combined with per-(comm, src)
sequence numbers — preserves the non-overtaking rule.

Protocol model: *eager*.  A send charges a per-message software overhead
plus the fabric transfer time (VCI-contended), then the message lands in
the receiver's matching queue.  The sender never blocks on the receiver;
this matches how MPICH handles the small-to-medium control messages the
OMPC event system exchanges, and the bulk-data sends in our workloads
are always pre-posted on the receive side.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.cluster.machine import Cluster
from repro.mpi.datatypes import Message
from repro.mpi.errors import MpiError
from repro.mpi.request import Request
from repro.sim.resources import Store
from repro.util.units import MICROSECOND

#: Receive-source wildcard (``MPI_ANY_SOURCE``).
ANY_SOURCE = -1
#: Receive-tag wildcard (``MPI_ANY_TAG``).
ANY_TAG = -1


class MpiWorld:
    """All MPI state for one cluster: ranks, queues, communicators.

    ``overhead`` is the per-message software cost (matching, packing,
    progress-engine work) charged on the sending side; 0.5 µs is in line
    with measured MPICH/UCX small-message overheads.
    """

    def __init__(self, cluster: Cluster, overhead: float = 0.5 * MICROSECOND):
        if overhead < 0:
            raise ValueError("overhead must be >= 0")
        self.cluster = cluster
        self.sim = cluster.sim
        self.overhead = overhead
        self._next_comm_id = 0
        # Matching queues are per (rank, comm); one Store per pair, lazily
        # created, so traffic on one communicator never scans another's.
        self._queues: dict[tuple[int, int], Store] = {}
        self.world = self.new_communicator()

    @property
    def size(self) -> int:
        return self.cluster.num_nodes

    def new_communicator(self) -> "Communicator":
        comm = Communicator(self, self._next_comm_id)
        self._next_comm_id += 1
        return comm

    def _queue(self, rank: int, comm_id: int) -> Store:
        key = (rank, comm_id)
        store = self._queues.get(key)
        if store is None:
            store = Store(self.sim, name=f"mpi.q{rank}.c{comm_id}")
            self._queues[key] = store
        return store


class Communicator:
    """An isolated message-matching context (like ``MPI_Comm``)."""

    def __init__(self, mpi: MpiWorld, comm_id: int):
        self.mpi = mpi
        self.comm_id = comm_id
        self._send_seq: dict[int, int] = defaultdict(int)

    @property
    def size(self) -> int:
        return self.mpi.size

    def rank(self, rank_id: int) -> "Rank":
        """Bind a rank identity for issuing operations."""
        self._check_rank(rank_id)
        return Rank(self, rank_id)

    def dup(self) -> "Communicator":
        """Duplicate: a new communicator over the same group."""
        return self.mpi.new_communicator()

    def _check_rank(self, rank_id: int) -> None:
        if not 0 <= rank_id < self.size:
            raise MpiError(f"rank {rank_id} out of range [0, {self.size})")

    # -- internals shared by Rank --------------------------------------------
    def _isend(self, src: int, dst: int, payload: Any, nbytes: float, tag: int) -> Request:
        self._check_rank(src)
        self._check_rank(dst)
        if tag < 0:
            raise MpiError(f"send tag must be >= 0, got {tag}")
        seq = self._send_seq[src]
        self._send_seq[src] = seq + 1
        msg = Message(self.comm_id, src, dst, tag, payload, nbytes, seq)
        proc = self.mpi.sim.process(self._deliver(msg), name=f"isend:{src}->{dst}:t{tag}")
        return Request(proc, "send")

    def _deliver(self, msg: Message):
        sim = self.mpi.sim
        if self.mpi.overhead:
            yield sim.timeout(self.mpi.overhead)
        yield from self.mpi.cluster.network.transfer(msg.src, msg.dst, msg.nbytes)
        yield self.mpi._queue(msg.dst, self.comm_id).put(msg)

    def _irecv(self, dst: int, src: int, tag: int) -> Request:
        self._check_rank(dst)
        if src != ANY_SOURCE:
            self._check_rank(src)
        if tag < 0 and tag != ANY_TAG:
            raise MpiError(f"recv tag must be >= 0 or ANY_TAG, got {tag}")

        def match(msg: Message) -> bool:
            if src != ANY_SOURCE and msg.src != src:
                return False
            if tag != ANY_TAG and msg.tag != tag:
                return False
            return True

        get = self.mpi._queue(dst, self.comm_id).get(match)
        return Request(get, "recv")


class Rank:
    """A rank identity bound to one communicator.

    All methods that move data are generators (``yield from``) or return
    :class:`Request` handles; they must be driven from inside a sim
    process running "on" the corresponding node.
    """

    def __init__(self, comm: Communicator, rank_id: int):
        self.comm = comm
        self.rank_id = rank_id

    @property
    def size(self) -> int:
        return self.comm.size

    def on(self, comm: Communicator) -> "Rank":
        """This same rank identity on a different communicator."""
        return comm.rank(self.rank_id)

    # -- nonblocking -------------------------------------------------------
    def isend(self, dst: int, payload: Any, nbytes: float = 0.0, tag: int = 0) -> Request:
        return self.comm._isend(self.rank_id, dst, payload, nbytes, tag)

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return self.comm._irecv(self.rank_id, src, tag)

    # -- blocking (generators) ------------------------------------------------
    def send(self, dst: int, payload: Any, nbytes: float = 0.0, tag: int = 0):
        """Generator: send and wait for local completion."""
        req = self.isend(dst, payload, nbytes, tag)
        yield from req.wait()

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: receive the next matching message (returns it)."""
        req = self.irecv(src, tag)
        msg = yield from req.wait()
        return msg
