"""Tests for the tiered device→host→remote data plane.

Covers the :class:`~repro.core.tiering.MemoryDirector` bookkeeping in
isolation (charging, pinning, policy ordering, MemoryWait vs. the fatal
error), the runtime integration (programs whose working sets exceed
device capacity complete with correct outputs and mem.* counters), the
MemoryPressure fault arm (capacity shrink + fetch-retry loop), and the
task-attributed diagnostics of :class:`DeviceMemoryError`.
"""

import numpy as np
import pytest

from repro.cluster.machine import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.faultmodel import FaultPlan, MemoryPressure
from repro.core.memory import DeviceMemory, DeviceMemoryError
from repro.core.runtime import OMPCRuntime
from repro.core.tiering import (
    CostAwarePolicy,
    LRUPolicy,
    MemoryDirector,
    MemoryWait,
    Victim,
    make_policy,
)
from repro.omp.api import OmpProgram
from repro.omp.task import Buffer, Task, TaskKind, depend_in, depend_out
from repro.util.units import MILLISECOND

KB = 1024.0


def buf(nbytes, name=""):
    return Buffer(nbytes=nbytes, name=name)


def task(name="t"):
    return Task(task_id=0, kind=TaskKind.TARGET, name=name)


def never_sole(_buf, _node):
    return False


def always_sole(_buf, _node):
    return True


class TestPolicies:
    def test_make_policy(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("cost"), CostAwarePolicy)
        with pytest.raises(ValueError, match="unknown eviction policy"):
            make_policy("none")
        with pytest.raises(ValueError):
            make_policy("fifo")

    def test_lru_orders_by_last_use(self):
        a, b = buf(KB, "a"), buf(KB, "b")
        victims = [
            Victim(b, KB, last_use=9, dirty=False, refetch_cost=KB),
            Victim(a, KB, last_use=1, dirty=False, refetch_cost=KB),
        ]
        ordered = LRUPolicy().order(victims)
        assert [v.buffer.name for v in ordered] == ["a", "b"]

    def test_cost_aware_prefers_clean_small(self):
        small_clean = Victim(buf(KB, "sc"), KB, last_use=9,
                             dirty=False, refetch_cost=KB)
        large_dirty = Victim(buf(4 * KB, "ld"), 4 * KB, last_use=1,
                             dirty=True, refetch_cost=4 * KB)
        ordered = CostAwarePolicy().order([large_dirty, small_clean])
        assert ordered[0].buffer.name == "sc"

    def test_cost_aware_dirty_penalty_validated(self):
        with pytest.raises(ValueError):
            CostAwarePolicy(dirty_penalty=0.5)


class TestMemoryDirector:
    def test_charge_and_release_balance(self):
        d = MemoryDirector({1: 4 * KB}, LRUPolicy())
        a = buf(KB, "a")
        assert d.charge(1, a)
        assert not d.charge(1, a)  # idempotent
        assert d.resident(1) == KB
        d.release(1, a.buffer_id)
        assert d.resident(1) == 0.0
        assert a.buffer_id not in d.holdings(1)

    def test_plan_evicts_lru_first(self):
        d = MemoryDirector({1: 2 * KB}, LRUPolicy())
        a, b, c = buf(KB, "a"), buf(KB, "b"), buf(KB, "c")
        d.charge(1, a)
        d.charge(1, b)
        d.touch(1, [a.buffer_id])  # a is now hotter than b
        evs = d.plan(task(), 1, [c], never_sole)
        assert [e.buffer.name for e in evs] == ["b"]
        assert not evs[0].spill  # clean replica: plain drop
        assert d.resident(1) == 3 * KB  # c charged; b still pending

    def test_sole_copy_spills(self):
        d = MemoryDirector({1: KB}, LRUPolicy())
        a = buf(KB, "a")
        d.charge(1, a)
        evs = d.plan(task(), 1, [buf(KB, "b")], always_sole)
        assert evs[0].spill

    def test_pinned_buffers_never_victims(self):
        d = MemoryDirector({1: 2 * KB}, LRUPolicy())
        a, b = buf(KB, "a"), buf(KB, "b")
        d.charge(1, a)
        d.charge(1, b)
        d.pin([a.buffer_id])
        evs = d.plan(task(), 1, [buf(KB, "c")], never_sole)
        assert [e.buffer.name for e in evs] == ["b"]
        d.unpin([a.buffer_id])
        assert not d.pinned(a.buffer_id)

    def test_pin_refcounts(self):
        d = MemoryDirector({1: KB}, LRUPolicy())
        d.pin([7])
        d.pin([7])
        d.unpin([7])
        assert d.pinned(7)
        d.unpin([7])
        assert not d.pinned(7)

    def test_memory_wait_when_pins_block(self):
        # The shortfall is covered by another frame's pinned bytes:
        # transient blockage, not a fatal overfit.
        d = MemoryDirector({1: 2 * KB}, LRUPolicy())
        a, b = buf(KB, "a"), buf(KB, "b")
        d.charge(1, a)
        d.charge(1, b)
        d.pin([a.buffer_id, b.buffer_id])
        with pytest.raises(MemoryWait):
            d.plan(task(), 1, [buf(2 * KB, "c")], never_sole)

    def test_memory_wait_when_evictions_in_flight(self):
        d = MemoryDirector({1: 2 * KB}, LRUPolicy())
        a = buf(2 * KB, "a")
        d.charge(1, a)
        evs = d.plan(task(), 1, [buf(2 * KB, "b")], never_sole)
        assert len(evs) == 1
        assert d.evicting(1) == {a.buffer_id}
        # A concurrent planner must wait for the in-flight eviction.
        with pytest.raises(MemoryWait):
            d.plan(task(), 1, [buf(KB, "c")], never_sole)

    def test_fatal_when_solo_working_set_cannot_fit(self):
        d = MemoryDirector({1: KB}, LRUPolicy())
        with pytest.raises(DeviceMemoryError) as err:
            d.plan(task("huge"), 1, [buf(4 * KB, "w")], never_sole)
        msg = str(err.value)
        assert "task huge" in msg
        assert "4096 B" in msg
        assert "node 1" in msg

    def test_fatal_message_lists_resident_set(self):
        d = MemoryDirector({1: 2 * KB}, LRUPolicy())
        a = buf(KB, "stuck")
        d.charge(1, a)
        d.pin([a.buffer_id])
        with pytest.raises(DeviceMemoryError, match="stuck"):
            # Needs 2.5 KB with only 1 KB ever reclaimable even if the
            # pin lifts: fatal, and the message names the resident set.
            d.plan(task(), 1, [buf(2.5 * KB, "w")], never_sole)

    def test_capacity_fn_shrinks_effective_capacity(self):
        d = MemoryDirector({1: 4 * KB}, LRUPolicy(),
                           capacity_fn=lambda n, base: base * 0.5)
        assert d.capacity(1) == 2 * KB

    def test_forget_node_clears_accounting(self):
        d = MemoryDirector({1: 4 * KB}, LRUPolicy())
        d.charge(1, buf(KB))
        d.forget_node(1)
        assert d.resident(1) == 0.0
        assert d.holdings(1) == {}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            MemoryDirector({1: 0.0}, LRUPolicy())


def chain_program(n=8, nbytes=2 * KB):
    """n independent read→write pairs; working set 2n buffers."""
    prog = OmpProgram("tiering")
    ins = [prog.buffer(nbytes, data=np.zeros(4), name=f"b{i}")
           for i in range(n)]
    outs = [prog.buffer(nbytes, data=np.zeros(4), name=f"o{i}")
            for i in range(n)]
    prog.target_enter_data(*ins)
    for i, (b, o) in enumerate(zip(ins, outs)):
        def fn(x, y, i=i):
            y[:] = x + i + 1
        prog.target(fn, depend=[depend_in(b), depend_out(o)],
                    cost=0.2 * MILLISECOND, name=f"k{i}")
    prog.target_exit_data(*outs)
    return prog, outs


def expected(outs):
    return all((o.data == np.zeros(4) + i + 1).all()
               for i, o in enumerate(outs))


class TestRuntimeIntegration:
    @pytest.mark.parametrize("policy", ["lru", "cost"])
    def test_oversubscribed_run_completes(self, policy):
        # Working set 16 buffers/node-group vs. 4-buffer devices: the
        # pre-tiering runtime died here; the tiered one must finish
        # with byte-identical outputs.
        cfg = OMPCConfig(device_memory_bytes=4 * 2 * KB,
                         eviction_policy=policy, trace=True)
        rt = OMPCRuntime(ClusterSpec(num_nodes=3), cfg)
        prog, outs = chain_program()
        res = rt.run(prog)
        assert expected(outs)
        assert res.makespan > 0
        counters = rt.last_cluster.trace.counters
        assert counters.get("mem.evict", 0) > 0
        assert counters.get("mem.hit", 0) + counters.get("mem.miss", 0) > 0

    def test_outputs_match_unlimited_run(self):
        cfg = OMPCConfig(device_memory_bytes=3 * 2 * KB,
                         eviction_policy="lru")
        rt = OMPCRuntime(ClusterSpec(num_nodes=3), cfg)
        prog, outs = chain_program()
        rt.run(prog)
        limited = [o.data.copy() for o in outs]

        rt2 = OMPCRuntime(ClusterSpec(num_nodes=3), OMPCConfig())
        prog2, outs2 = chain_program()
        rt2.run(prog2)
        for got, ref in zip(limited, (o.data for o in outs2)):
            assert (got == ref).all()

    def test_no_tiering_without_policy(self):
        # device_memory_bytes alone keeps the PR-4 hard-failure mode.
        cfg = OMPCConfig(device_memory_bytes=2 * 2 * KB)
        rt = OMPCRuntime(ClusterSpec(num_nodes=3), cfg)
        prog, _outs = chain_program()
        with pytest.raises(DeviceMemoryError, match="out of device memory"):
            rt.run(prog)

    def test_fatal_error_names_task_and_buffer(self):
        # A single buffer bigger than the device can never fit.
        cfg = OMPCConfig(device_memory_bytes=KB, eviction_policy="lru")
        rt = OMPCRuntime(ClusterSpec(num_nodes=2), cfg)
        prog = OmpProgram()
        big = prog.buffer(4 * KB, data=np.zeros(4), name="giant")
        out = prog.buffer(4 * KB, data=np.zeros(4), name="out")
        prog.target(lambda x, y: None, depend=[depend_in(big),
                                               depend_out(out)],
                    cost=0.1 * MILLISECOND, name="whale")
        with pytest.raises(DeviceMemoryError, match="whale"):
            rt.run(prog)


class TestMemoryPressureFaults:
    def _run_under_pressure(self, pressure, cfg):
        cluster = Cluster(ClusterSpec(num_nodes=3))
        FaultPlan(seed=7, pressures=[pressure]).install(cluster)
        rt = OMPCRuntime(ClusterSpec(num_nodes=3), cfg)
        prog, outs = chain_program(n=6)
        proc, finish = rt.launch(prog, cluster=cluster)
        cluster.sim.run(until=proc)
        res = finish()
        return res, outs, rt.last_cluster

    def test_capacity_shrink_forces_evictions(self):
        cfg = OMPCConfig(device_memory_bytes=8 * 2 * KB,
                         eviction_policy="lru", trace=True)
        pressure = MemoryPressure(node=1, start=0.0,
                                  capacity_factor=0.25)
        res, outs, cluster = self._run_under_pressure(pressure, cfg)
        assert expected(outs)
        assert cluster.trace.counters.get("mem.evict", 0) > 0

    def test_fetch_failures_retry_with_backoff(self):
        cfg = OMPCConfig(device_memory_bytes=8 * 2 * KB,
                         eviction_policy="lru", trace=True,
                         mem_fetch_retries=50)
        pressure = MemoryPressure(node=1, start=0.0,
                                  fetch_fail_prob=0.5)
        res, outs, cluster = self._run_under_pressure(pressure, cfg)
        assert expected(outs)
        assert cluster.trace.counters.get("mem.fetch_retries", 0) > 0
        assert cluster.faults.fetch_failures > 0

    def test_exhausted_retries_raise(self):
        cfg = OMPCConfig(device_memory_bytes=8 * 2 * KB,
                         eviction_policy="lru", mem_fetch_retries=0)
        pressure = MemoryPressure(node=1, start=0.0, fetch_fail_prob=1.0)
        with pytest.raises(DeviceMemoryError, match="fetch"):
            self._run_under_pressure(pressure, cfg)

    def test_pressure_validation(self):
        with pytest.raises(ValueError):
            MemoryPressure(node=1, start=0.0, capacity_factor=0.0)
        with pytest.raises(ValueError):
            MemoryPressure(node=1, start=0.0, fetch_fail_prob=1.5)
        with pytest.raises(ValueError):
            MemoryPressure(node=1, start=5.0, end=5.0)


class TestFaultTolerantTiering:
    def _ft(self, cfg, **run_kw):
        from repro.core.faults import FaultTolerantRuntime

        rt = FaultTolerantRuntime(ClusterSpec(num_nodes=4), cfg)
        prog, outs = chain_program(n=6)
        res = rt.run(prog, **run_kw)
        return res, outs, rt.last_cluster

    def test_worker_crash_under_pressure(self):
        from repro.core.faults import NodeFailure

        cfg = OMPCConfig(device_memory_bytes=3 * 2 * KB,
                         eviction_policy="lru", trace=True)
        res, outs, cluster = self._ft(
            cfg, failures=[NodeFailure(time=0.3 * MILLISECOND, node=2)],
        )
        assert expected(outs)
        assert res.failures == [2]
        assert cluster.trace.counters.get("mem.evict", 0) > 0

    def test_ft_fetch_failures_retry_with_backoff(self):
        cfg = OMPCConfig(device_memory_bytes=3 * 2 * KB,
                         eviction_policy="lru", trace=True,
                         mem_fetch_retries=50)
        plan = FaultPlan(seed=7, pressures=[
            MemoryPressure(node=1, start=0.0, fetch_fail_prob=0.5),
        ])
        res, outs, cluster = self._ft(cfg, fault_plan=plan)
        assert expected(outs)
        assert cluster.trace.counters.get("mem.fetch_retries", 0) > 0
        assert cluster.faults.fetch_failures > 0

    def test_ft_exhausted_retries_raise(self):
        cfg = OMPCConfig(device_memory_bytes=3 * 2 * KB,
                         eviction_policy="lru", mem_fetch_retries=0)
        plan = FaultPlan(seed=7, pressures=[
            MemoryPressure(node=1, start=0.0, fetch_fail_prob=1.0),
        ])
        with pytest.raises(DeviceMemoryError, match="fetch"):
            self._ft(cfg, fault_plan=plan)


class TestConfigValidation:
    def test_policy_names(self):
        OMPCConfig(eviction_policy="lru")
        OMPCConfig(eviction_policy="cost")
        with pytest.raises(ValueError):
            OMPCConfig(eviction_policy="mru")

    def test_retry_bounds(self):
        with pytest.raises(ValueError):
            OMPCConfig(mem_fetch_retries=-1)
        with pytest.raises(ValueError):
            OMPCConfig(mem_fetch_backoff=-1.0)


class TestDeviceMemoryDiagnostics:
    def test_alloc_error_names_buffer_task_and_resident_set(self):
        mem = DeviceMemory(2, capacity_bytes=KB)
        mem.alloc(1, nbytes=KB, label="A", owner="setup")
        with pytest.raises(DeviceMemoryError) as err:
            mem.alloc(2, nbytes=KB, label="B", owner="kern7")
        msg = str(err.value)
        assert "node 2" in msg
        assert "out of device memory" in msg
        assert "B" in msg and "kern7" in msg
        assert "A" in msg  # resident set listed
