"""Task Bench: the parameterized task-parallelism benchmark (§6.1, [31]).

Task Bench models a computation as a 2-D grid — ``width`` task *points*
per timestep over ``steps`` timesteps — where each task runs a kernel of
configurable duration and depends on a pattern-defined set of points
from the previous timestep (Fig. 4).  The Computation-to-Communication
Ratio (CCR) controls how many bytes each task publishes to its
dependents.

This package defines the benchmark itself; the runtimes that execute it
(OMPC, Charm++-like, StarPU-like, synchronous MPI) live in
:mod:`repro.runtimes`.
"""

from repro.taskbench.bench import build_omp_program
from repro.taskbench.graph import TaskBenchSpec
from repro.taskbench.kernel import KernelSpec
from repro.taskbench.metg import MetgResult, find_metg
from repro.taskbench.patterns import Pattern, dependencies, dependents

__all__ = [
    "KernelSpec",
    "MetgResult",
    "Pattern",
    "TaskBenchSpec",
    "build_omp_program",
    "dependencies",
    "dependents",
    "find_metg",
]
