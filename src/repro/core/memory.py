"""Worker-side device memory: the per-node table of mapped buffers.

Each cluster node, acting as an offloading device, keeps a table of the
buffers currently allocated on it.  Payloads travel by reference (all
nodes live in one Python process); the simulation charges transfer time
for the bytes, and the *table* is the ground truth the coherency tests
inspect: reading a buffer on a node where the data manager never
materialized it raises, so protocol bugs surface as hard errors.

The table also accounts bytes.  Each entry carries the mapped buffer's
logical size, ``resident_bytes`` sums them, and a node constructed with
a finite ``capacity_bytes`` refuses allocations past it with a hard
:class:`DeviceMemoryError` — so co-located jobs in a multi-tenant run
cannot silently share infinite device memory.
"""

from __future__ import annotations

from typing import Any

from repro.sim.errors import SimulationError


class DeviceMemoryError(SimulationError):
    """Access to a buffer not resident on this node, or memory overflow."""


class DeviceMemory:
    """The mapped-buffer table of one worker node.

    ``capacity_bytes=None`` means unlimited (the default, and the
    historical behavior); a finite capacity turns over-allocation into a
    hard failure at the exact alloc that crosses the line.
    """

    def __init__(self, node_id: int, capacity_bytes: float | None = None):
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0 or None")
        self.node_id = node_id
        self.capacity_bytes = capacity_bytes
        self._table: dict[int, Any] = {}
        self._sizes: dict[int, float] = {}
        self._labels: dict[int, str] = {}
        #: Logical bytes currently mapped on this node.
        self.resident_bytes = 0.0
        #: High-water mark of :attr:`resident_bytes` over the run.
        self.peak_bytes = 0.0
        #: Diagnostics: total allocations/removals over the run.
        self.allocations = 0
        self.deletions = 0

    def __contains__(self, buffer_id: int) -> bool:
        return buffer_id in self._table

    def __len__(self) -> int:
        return len(self._table)

    def alloc(self, buffer_id: int, payload: Any = None,
              nbytes: float = 0.0, label: str | None = None,
              owner: str | None = None) -> None:
        """Create (or overwrite) the device entry for a buffer.

        ``nbytes`` is the buffer's logical size; re-allocating an
        existing entry re-sizes it (the delta is what counts against
        capacity).  ``label`` names the buffer and ``owner`` the
        requesting task — both pure diagnostics, surfaced when the
        allocation overflows the node so overflow reports are
        actionable.
        """
        delta = nbytes - self._sizes.get(buffer_id, 0.0)
        if (
            self.capacity_bytes is not None
            and self.resident_bytes + delta > self.capacity_bytes
        ):
            raise DeviceMemoryError(
                f"node {self.node_id}: out of device memory allocating "
                f"buffer {label or buffer_id} ({nbytes:.0f} B"
                + (f" for task {owner}" if owner else "")
                + f"; {self.resident_bytes:.0f} of "
                f"{self.capacity_bytes:.0f} B resident"
                f"{self._resident_summary()})"
            )
        if buffer_id not in self._table:
            self.allocations += 1
        self._table[buffer_id] = payload
        self._sizes[buffer_id] = nbytes
        if label is not None:
            self._labels[buffer_id] = label
        self.resident_bytes += delta
        if self.resident_bytes > self.peak_bytes:
            self.peak_bytes = self.resident_bytes

    def _resident_summary(self, limit: int = 8) -> str:
        """The resident set as ``name:bytes`` pairs for error messages."""
        if not self._table:
            return ""
        entries = sorted(
            (self._labels.get(bid, str(bid)), self._sizes.get(bid, 0.0))
            for bid in self._table
        )
        shown = ", ".join(f"{n}:{s:.0f}B" for n, s in entries[:limit])
        if len(entries) > limit:
            shown += f", … +{len(entries) - limit} more"
        return f"; resident set: [{shown}]"

    def write(self, buffer_id: int, payload: Any) -> None:
        """Store incoming data for an already-allocated buffer."""
        if buffer_id not in self._table:
            raise DeviceMemoryError(
                f"node {self.node_id}: write to unallocated buffer {buffer_id}"
            )
        self._table[buffer_id] = payload

    def read(self, buffer_id: int) -> Any:
        """The resident payload; raises if the buffer is not here."""
        try:
            return self._table[buffer_id]
        except KeyError:
            raise DeviceMemoryError(
                f"node {self.node_id}: read of non-resident buffer {buffer_id}"
            ) from None

    def delete(self, buffer_id: int) -> None:
        if buffer_id not in self._table:
            raise DeviceMemoryError(
                f"node {self.node_id}: delete of non-resident buffer {buffer_id}"
            )
        del self._table[buffer_id]
        self.resident_bytes -= self._sizes.pop(buffer_id, 0.0)
        self._labels.pop(buffer_id, None)
        self.deletions += 1

    def size_of(self, buffer_id: int) -> float:
        """Logical bytes of a resident buffer (0 for unknown sizes)."""
        if buffer_id not in self._table:
            raise DeviceMemoryError(
                f"node {self.node_id}: size of non-resident buffer {buffer_id}"
            )
        return self._sizes.get(buffer_id, 0.0)

    def resident_buffers(self) -> list[int]:
        return sorted(self._table)

    def wipe(self) -> None:
        """Drop every entry (node crash: its memory contents are gone)."""
        self._table.clear()
        self._sizes.clear()
        self._labels.clear()
        self.resident_bytes = 0.0
