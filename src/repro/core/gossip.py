"""SWIM-style gossip membership: scalable failure detection.

The heartbeat ring (:class:`repro.core.faults.HeartbeatRing`) funnels
every suspect report into the head over one tag — an O(N) fan-in per
window that the §7-style control-plane scaling work (ROADMAP item 2)
cannot afford at 1000+ nodes.  :class:`GossipMembership` replaces the
ring for sharded runs with the SWIM protocol (Das, Gupta, Motivala,
DSN'02):

* every protocol period each live node *probes* one peer, chosen from a
  seeded random permutation (round-robin over a shuffled cycle, so
  every peer is probed within one pass and expected detection latency
  is O(1) periods);
* a silent target is re-checked through ``fanout`` *indirect probers*
  before it is suspected — a lossy or congested direct link does not
  kill a healthy node;
* membership updates (suspicions, refutations, confirmed deaths) are
  *piggybacked* on the probe/ack traffic already flowing, each update
  retransmitted O(log N) times — epidemic dissemination without any
  extra message streams;
* a node that hears itself suspected *refutes* with a bumped
  incarnation number, which overrides the suspicion in every view.

The suspect→confirm pipeline is the ring's, verbatim: suspicions are
reported to the current :attr:`head`, which pings the suspect directly
and declares it dead only on silence (``suspicions_cleared`` /
``false_positives`` account exactly like the ring's).  A suspected
*head* is confirmed by the suspecting node plus an indirect witness —
the ring's neighbor quorum, with gossip peers for neighbors.  Confirmed
deaths are irrevocable: the ``dead`` state overrides any incarnation,
so a confirmed-dead node can never be resurrected into any view.

The class is interface-compatible with :class:`HeartbeatRing`
(``start``/``stop``/``rebase``, ``on_detect``/``on_head_detect``,
``detections``/``suspicions_cleared``/``false_positives``/
``missed_windows``) so both runtimes swap it in behind
``OMPCConfig.gossip`` without touching the failover machinery.  All
traffic rides a dedicated datagram MPI service communicator (excluded
from the MPI checker, no retransmits — a lost probe is information),
and the periodic waits go through the shared
:class:`~repro.core.faults._TimerWheel` so an N-node deployment costs
O(1) timer events per period.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.cluster.machine import Cluster
from repro.core.events import EventSystem
from repro.mpi.comm import MpiWorld
from repro.sim.primitives import AnyOf
from repro.util.rng import derive_rng
from repro.util.units import MILLISECOND

#: All gossip protocol messages (ping/pingreq/suspect/confirm) share one
#: tag so every listener is a single O(1)-matched receive class.
GOSSIP_TAG = 1
#: Ack and indirect-probe replies use per-probe tags above this base.
_REPLY_TAG_BASE = 16

#: Membership states in override order: ``dead`` beats everything at any
#: incarnation; between ``alive`` and ``suspect`` the higher incarnation
#: wins, with ``suspect`` shading ``alive`` at equal incarnation.
ALIVE, SUSPECT, DEAD = "alive", "suspect", "dead"


def _overrides(status: str, inc: int, old_status: str, old_inc: int) -> bool:
    """SWIM update-precedence: does ``(status, inc)`` replace the old?"""
    if old_status == DEAD:
        return False  # confirmed deaths are irrevocable
    if status == DEAD:
        return True
    if inc != old_inc:
        return inc > old_inc
    return status == SUSPECT and old_status == ALIVE


class GossipMembership:
    """SWIM probe/indirect-probe/dissemination failure detection.

    Drop-in for :class:`~repro.core.faults.HeartbeatRing` behind
    ``OMPCConfig.gossip``; see the module docstring for the protocol.
    """

    def __init__(
        self,
        cluster: Cluster,
        mpi: MpiWorld,
        events: EventSystem,
        interval: float = 1.0 * MILLISECOND,
        ping_timeout: float = 1.0 * MILLISECOND,
        fanout: int = 3,
        piggyback: int = 8,
        seed: int = 0,
        heartbeat_bytes: float = 16.0,
        use_wheel: bool = True,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        if ping_timeout <= 0:
            raise ValueError("ping_timeout must be > 0")
        if fanout < 0:
            raise ValueError("fanout must be >= 0")
        if piggyback < 1:
            raise ValueError("piggyback must be >= 1")
        self.cluster = cluster
        self.sim = cluster.sim
        self.events = events
        self.interval = interval
        self.ping_timeout = ping_timeout
        self.fanout = fanout
        self.piggyback = piggyback
        self.seed = seed
        self.heartbeat_bytes = heartbeat_bytes
        self.head = 0
        self.comm = mpi.new_communicator(reliable=False, service=True)
        self.obs = cluster.obs
        self.on_detect: Callable[[int, int], None] | None = None
        self.on_head_detect: Callable[[int, int], None] | None = None
        #: (dead_node, detected_by, detection_time) — ring-compatible.
        self.detections: list[tuple[int, int, float]] = []
        self.suspicions_cleared = 0
        self.false_positives = 0
        #: Probe windows that elapsed without an ack (raw misses).
        self.missed_windows = 0
        #: Completed protocol periods (the ticker's count).
        self.rounds = 0
        #: Membership event log: ``(time, node, event, subject)`` —
        #: probes are not logged, state transitions are.
        self.timeline: list[tuple[float, int, str, int]] = []
        #: Per-death convergence: dead node → (declared_at, rounds_then,
        #: converged_at, rounds_at_convergence); the last two appear once
        #: every live view holds the death.
        self.convergence: dict[int, list[float]] = {}
        self._dead: set[int] = set()
        self._confirming: set[int] = set()
        self._stopped = False
        self._reply_seq = itertools.count()
        n = cluster.num_nodes
        #: Per-node membership views, deviations only: a node absent
        #: from a view is implicitly ``(ALIVE, 0)`` — O(failures), not
        #: O(N²), in memory.
        self._views: list[dict[int, tuple[str, int]]] = [
            {} for _ in range(n)
        ]
        #: Per-node dissemination queues: target → [status, inc, sends].
        #: Entries retire after ``_max_sends`` piggybacked transmissions
        #: (the SWIM O(log N) retransmission budget).
        self._queue: list[dict[int, list]] = [{} for _ in range(n)]
        self._max_sends = 3 * max(1, (n - 1).bit_length()) + 4
        #: Own incarnation numbers (bumped on self-refutation).
        self._incarnation = [0] * n
        #: Nodes waiting on a confirmed death: how many live views hold
        #: it already (drives the convergence metric in O(1) per update).
        self._conf_seen: dict[int, set[int]] = {}
        from repro.core.faults import _TimerWheel  # avoid import cycle

        self.wheel = _TimerWheel(self.sim) if use_wheel else None
        self._after = self.wheel.after if use_wheel else self.sim.timeout

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        n = self.cluster.num_nodes
        if n < 2:
            return
        for node in range(n):
            self.sim.process(self._listener(node), name=f"gsp-listen{node}")
            self.sim.process(self._prober(node), name=f"gsp-probe{node}")
        self.sim.process(self._ticker(), name="gsp-ticker")

    def rebase(self, new_head: int) -> None:
        """Move the confirm authority to an elected head (failover)."""
        self.head = new_head

    def stop(self) -> None:
        self._stopped = True

    # -- views -------------------------------------------------------------
    def _alive(self, node: int) -> bool:
        return not self.events.node_failed(node) and node not in self._dead

    def view_of(self, node: int) -> dict[int, tuple[str, int]]:
        """``node``'s membership deviations (absent ⇒ alive, inc 0)."""
        return dict(self._views[node])

    def dead_view(self, node: int) -> frozenset[int]:
        """The set of peers ``node``'s view holds confirmed dead."""
        return frozenset(
            peer for peer, (status, _inc) in self._views[node].items()
            if status == DEAD
        )

    def live_nodes(self) -> list[int]:
        return [n for n in range(self.cluster.num_nodes) if self._alive(n)]

    def _apply(self, node: int, target: int, status: str, inc: int) -> None:
        """Apply one membership update to ``node``'s view; requeue it
        for further dissemination when it changed anything."""
        view = self._views[node]
        old_status, old_inc = view.get(target, (ALIVE, 0))
        if not _overrides(status, inc, old_status, old_inc):
            return
        view[target] = (status, inc)
        self.timeline.append((self.sim.now, node, status, target))
        self._enqueue(node, target, status, inc)
        if status == DEAD:
            seen = self._conf_seen.get(target)
            if seen is not None:
                seen.add(node)
                self._check_converged(target)
        elif status == SUSPECT and target == node:
            # Alive and suspected: refute with a bumped incarnation.
            self._incarnation[node] = new_inc = max(
                self._incarnation[node], inc
            ) + 1
            view[node] = (ALIVE, new_inc)
            self._enqueue(node, node, ALIVE, new_inc)
            self.obs.count("gossip.refutes")

    def _enqueue(self, node: int, target: int, status: str, inc: int) -> None:
        self._queue[node][target] = [status, inc, 0]

    def _updates_from(self, node: int) -> list[tuple[int, str, int]]:
        """Up to ``piggyback`` pending updates, retiring exhausted ones."""
        queue = self._queue[node]
        picked: list[tuple[int, str, int]] = []
        spent: list[int] = []
        for target, entry in queue.items():
            if len(picked) >= self.piggyback:
                break
            status, inc, sends = entry
            picked.append((target, status, inc))
            entry[2] = sends + 1
            if entry[2] >= self._max_sends:
                spent.append(target)
        for target in spent:
            del queue[target]
        return picked

    def _absorb(self, node: int, updates) -> None:
        for target, status, inc in updates:
            self._apply(node, target, status, inc)
            if (
                status == SUSPECT
                and node == self.head
                and target != node
            ):
                self._head_confirm(target, node)

    def _check_converged(self, target: int) -> None:
        seen = self._conf_seen.get(target)
        if seen is None:
            return
        live = set(self.live_nodes())
        if live <= seen:
            declared_at, rounds_then = self.convergence[target][:2]
            self.convergence[target] = [
                declared_at, rounds_then,
                self.sim.now, float(self.rounds),
            ]
            del self._conf_seen[target]
            self.obs.count("gossip.convergence_rounds",
                           self.rounds - rounds_then)
            self.obs.gauge_set(
                "gossip.convergence_ms",
                (self.sim.now - declared_at) * 1e3,
            )

    # -- protocol processes -------------------------------------------------
    def _ticker(self):
        while not self._stopped:
            yield self._after(self.interval)
            if self._stopped:
                return
            self.rounds += 1
            self.obs.count("gossip.rounds")

    def _probe_order(self, node: int):
        """Seeded round-robin probe targets: a fresh shuffled pass over
        all peers each cycle, per SWIM's bounded-detection rule."""
        rng = derive_rng(self.seed, "gossip-probe", str(node))
        peers = [p for p in range(self.cluster.num_nodes) if p != node]
        while True:
            order = list(rng.permutation(len(peers)))
            for idx in order:
                yield peers[idx]

    def _prober(self, node: int):
        order = self._probe_order(node)
        helper_rng = derive_rng(self.seed, "gossip-indirect", str(node))
        while not self._stopped:
            period_end = self.sim.now + self.interval
            if self.events.node_failed(node):
                return
            target = next(
                (t for t in itertools.islice(order, self.cluster.num_nodes)
                 if self._views[node].get(t, (ALIVE, 0))[0] != DEAD
                 and t not in self._dead),
                None,
            )
            if target is None:
                return  # everyone else is confirmed dead
            self.obs.count("gossip.pings")
            acked = yield from self._ping(node, target)
            if self._stopped or self.events.node_failed(node):
                return
            if not acked:
                self.missed_windows += 1
                self.obs.count("gossip.missed_probes")
                acked = yield from self._indirect(node, target, helper_rng)
                if self._stopped or self.events.node_failed(node):
                    return
            if not acked and target not in self._dead:
                self._raise_suspicion(node, target)
            remainder = period_end - self.sim.now
            if remainder > 0:
                yield self._after(remainder)

    def _raise_suspicion(self, node: int, target: int) -> None:
        inc = self._views[node].get(target, (ALIVE, 0))[1]
        self.obs.count("gossip.suspects")
        self._apply(node, target, SUSPECT, inc)
        if target == self.head:
            # Suspecting the head cannot route through the head: the
            # direct probe and the indirect witnesses already failed —
            # the ring's neighbor quorum, with gossip peers as
            # neighbors — so the suspecting node escalates itself.
            if target not in self._dead and target not in self._confirming:
                self._confirming.add(target)
                self.sim.process(
                    self._confirm(target, node, direct_ping=False),
                    name=f"gsp-headconfirm{target}",
                )
            return
        # Report to the head for the suspect→confirm pipeline (the
        # piggybacked suspicion also diffuses epidemically).
        rank = self.comm.rank(node)
        rank.isend(self.head, ("suspect", target, node,
                               self._updates_from(node)),
                   self.heartbeat_bytes, tag=GOSSIP_TAG)

    def _head_confirm(self, suspect: int, reporter: int) -> None:
        if suspect in self._dead or suspect in self._confirming:
            return
        self._confirming.add(suspect)
        self.sim.process(
            self._confirm(suspect, reporter), name=f"gsp-confirm{suspect}"
        )

    def _confirm(self, suspect: int, reporter: int, direct_ping: bool = True):
        """Head-side (or head-suspicion) confirm: ping, declare on silence."""
        try:
            if direct_ping:
                pinger = self.head
                if self.events.node_failed(pinger):
                    return
                acked = yield from self._ping(pinger, suspect)
                if self._stopped or suspect in self._dead:
                    return
                if acked:
                    self.suspicions_cleared += 1
                    self.obs.count("gossip.suspicions_cleared")
                    inc = self._views[pinger].get(suspect, (ALIVE, 0))[1]
                    self._apply(pinger, suspect, ALIVE, inc + 1)
                    return
            if not self.events.node_failed(suspect):
                self.false_positives += 1
                self.obs.count("gossip.false_positives")
            self._declare(suspect, reporter if not direct_ping else self.head)
        finally:
            self._confirming.discard(suspect)

    def _declare(self, dead: int, by: int) -> None:
        if dead in self._dead:
            return
        self._dead.add(dead)
        self.detections.append((dead, by, self.sim.now))
        self.obs.count("gossip.confirms")
        self.convergence[dead] = [self.sim.now, float(self.rounds)]
        self._conf_seen[dead] = set()
        # The confirmation is broadcast once (like the failover
        # announcement round) and also rides the piggyback stream, so
        # every live view converges on the death within ~one period.
        rank = self.comm.rank(by)
        for peer in self.live_nodes():
            if peer != by:
                rank.isend(peer, ("confirm", dead, by, ()),
                           self.heartbeat_bytes, tag=GOSSIP_TAG)
        self._apply(by, dead, DEAD, 0)
        self._check_converged(dead)
        if dead == self.head and self.on_head_detect is not None:
            self.on_head_detect(dead, by)
        elif self.on_detect is not None:
            self.on_detect(dead, by)

    def _ping(self, pinger: int, target: int):
        """Generator: one direct probe; True iff the ack arrived in time."""
        reply_tag = _REPLY_TAG_BASE + next(self._reply_seq)
        rank = self.comm.rank(pinger)
        ack = rank.irecv(src=target, tag=reply_tag)
        rank.isend(target, ("ping", pinger, reply_tag,
                            self._updates_from(pinger)),
                   self.heartbeat_bytes, tag=GOSSIP_TAG)
        yield AnyOf(self.sim, [ack.event,
                               self.sim.timeout(self.ping_timeout)])
        if ack.test():
            self._absorb(pinger, ack.event.value.payload[3])
            return True
        ack.cancel()
        return False

    def _indirect(self, node: int, target: int, rng):
        """Generator: ask ``fanout`` seeded peers to probe ``target``.

        True iff any helper reached it.  Helpers answer only on
        success, so a dead target leaves nothing behind to leak.
        """
        helpers = [
            p for p in self.live_nodes()
            if p != node and p != target
        ]
        if not helpers or self.fanout == 0:
            return False
        k = min(self.fanout, len(helpers))
        chosen = [helpers[i] for i in rng.choice(len(helpers), size=k,
                                                 replace=False)]
        self.obs.count("gossip.indirect_probes", k)
        reply_tag = _REPLY_TAG_BASE + next(self._reply_seq)
        rank = self.comm.rank(node)
        replies = [rank.irecv(src=h, tag=reply_tag) for h in chosen]
        for helper in chosen:
            rank.isend(helper, ("pingreq", node, target, reply_tag,
                                self._updates_from(node)),
                       self.heartbeat_bytes, tag=GOSSIP_TAG)
        budget = self.sim.timeout(2.0 * self.ping_timeout)
        yield AnyOf(self.sim, [r.event for r in replies] + [budget])
        reached = False
        for req in replies:
            if req.test():
                self._absorb(node, req.event.value.payload[3])
                reached = True
            else:
                req.cancel()
        return reached

    def _helper(self, node: int, requester: int, target: int,
                reply_tag: int):
        """Generator: indirect probe on a requester's behalf; reply only
        when the target answered (silence = assent to the suspicion)."""
        acked = yield from self._ping(node, target)
        if acked and not self.events.node_failed(node):
            self.comm.rank(node).isend(
                requester, ("preached", node, target,
                            self._updates_from(node)),
                self.heartbeat_bytes, tag=reply_tag,
            )

    def _listener(self, node: int):
        rank = self.comm.rank(node)
        while not self._stopped:
            msg = yield from rank.recv(tag=GOSSIP_TAG)
            if self._stopped:
                return
            if self.events.node_failed(node):
                return  # a dead node answers nothing
            kind = msg.payload[0]
            if kind == "ping":
                _kind, src, reply_tag, updates = msg.payload
                self._absorb(node, updates)
                rank.isend(src, ("ack", node, reply_tag,
                                 self._updates_from(node)),
                           self.heartbeat_bytes, tag=reply_tag)
            elif kind == "pingreq":
                _kind, requester, target, reply_tag, updates = msg.payload
                self._absorb(node, updates)
                self.sim.process(
                    self._helper(node, requester, target, reply_tag),
                    name=f"gsp-helper{node}",
                )
            elif kind == "suspect":
                _kind, suspect, reporter, updates = msg.payload
                self._absorb(node, updates)
                if node == self.head and suspect != node:
                    self._head_confirm(suspect, reporter)
            elif kind == "confirm":
                _kind, dead, _by, updates = msg.payload
                self._absorb(node, updates)
                self._apply(node, dead, DEAD, 0)
