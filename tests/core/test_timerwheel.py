"""Timer wheel: batched heartbeat timers with exact timing.

The wheel interns same-instant timeouts, so an n-node heartbeat ring
schedules O(1) timer events per tick instead of O(n).  Timing must be
exactly preserved; because the *event stream* legitimately changes
(that is the optimization), equivalence is asserted at the result level
— identical makespans, detections, and outputs with the wheel on and
off — rather than by the event-order digests the fast-path queue uses.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import Cluster, ClusterSpec
from repro.core.events import EventSystem
from repro.core.faults import (
    FaultTolerantRuntime,
    HeartbeatRing,
    NodeFailure,
    _TimerWheel,
)
from repro.mpi import MpiWorld
from repro.sim.core import Simulator

from tests.core.test_faults import FAST, shots_program


class TestTimerWheelUnit:
    def test_same_instant_waits_share_one_event(self):
        sim = Simulator()
        wheel = _TimerWheel(sim)
        a = wheel.after(0.5)
        b = wheel.after(0.5)
        assert a is b
        assert wheel.created == 1
        assert wheel.interned == 1
        assert wheel.after(0.25) is not a  # different instant

    def test_shared_timer_fires_at_the_exact_instant(self):
        sim = Simulator()
        wheel = _TimerWheel(sim)
        woke: list[tuple[str, float]] = []

        def waiter(tag: str):
            yield wheel.after(0.125)
            woke.append((tag, sim.now))

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.run()
        # Bit-equal to a private sim.timeout(0.125): the slot key IS the
        # firing time, so sharing cannot shift anyone's wake-up.
        assert woke == [("a", 0.125), ("b", 0.125)]

    def test_processed_slot_is_not_reused(self):
        sim = Simulator()
        wheel = _TimerWheel(sim)
        first = wheel.after(0.0)
        sim.run()
        assert first.processed
        again = wheel.after(0.0)  # same absolute instant, but stale
        assert again is not first
        assert wheel.created == 2

    def test_fired_slots_are_pruned(self):
        sim = Simulator()
        wheel = _TimerWheel(sim)

        def ticker():
            for i in range(200):
                yield wheel.after(0.001)

        sim.process(ticker())
        sim.run()
        # Without pruning the table would hold all 200 fired instants.
        assert len(wheel._slots) <= 64


class TestRingUsesWheel:
    def _ring(self, use_wheel: bool, n: int = 6):
        cluster = Cluster(ClusterSpec(num_nodes=n))
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, FAST)
        events.start()
        ring = HeartbeatRing(cluster, mpi, events, use_wheel=use_wheel)
        ring.start()

        def stopper():
            yield cluster.sim.timeout(0.02)
            ring.stop()

        cluster.sim.process(stopper())
        cluster.sim.run(until=0.05)
        return cluster, ring

    def test_steady_state_interns_most_timers(self):
        _cluster, ring = self._ring(use_wheel=True)
        assert ring.wheel is not None
        assert ring.wheel.interned > ring.wheel.created
        assert ring.detections == []
        assert ring.false_positives == 0

    def test_wheel_reduces_event_count_with_identical_health(self):
        with_wheel, ring_on = self._ring(use_wheel=True)
        without, ring_off = self._ring(use_wheel=False)
        assert ring_off.wheel is None
        assert ring_on.detections == ring_off.detections == []
        assert ring_on.missed_windows == ring_off.missed_windows
        assert with_wheel.sim._seq < without.sim._seq


class TestRuntimeEquivalence:
    def _run(self, heartbeat_wheel: bool):
        prog, model, outputs = shots_program(num_shots=6, cost=0.02)
        rt = FaultTolerantRuntime(
            ClusterSpec(num_nodes=5), FAST, heartbeat_wheel=heartbeat_wheel
        )
        res = rt.run(prog, failures=[NodeFailure(time=0.01, node=1)])
        events = rt.last_cluster.sim._seq
        return res, events, model, outputs

    def test_failure_run_identical_with_and_without_wheel(self):
        res_on, events_on, model, outputs_on = self._run(True)
        res_off, events_off, _model, outputs_off = self._run(False)
        # Simulation results are bit-identical...
        assert res_on.makespan == res_off.makespan
        assert res_on.detections == res_off.detections
        assert res_on.reexecuted_tasks == res_off.reexecuted_tasks
        assert res_on.failures == res_off.failures
        # ...the failure was actually detected and recovered from...
        assert [node for node, _by, _t in res_on.detections] == [1]
        for out in outputs_on + outputs_off:
            np.testing.assert_allclose(out, model * 2.0)
        # ...and the wheel genuinely batched heartbeat timers.
        assert events_on < events_off
