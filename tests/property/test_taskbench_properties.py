"""Property-based tests for Task Bench patterns, specs, and the bench
config parser."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bench.config import parse_yaml
from repro.taskbench import (
    KernelSpec,
    Pattern,
    TaskBenchSpec,
    build_omp_program,
    dependencies,
    dependents,
)

widths = st.sampled_from([1, 2, 4, 8, 16, 32])
patterns = st.sampled_from(list(Pattern))


@given(patterns, widths, st.integers(min_value=0, max_value=10))
@settings(deadline=None, max_examples=100)
def test_dependencies_always_in_bounds_and_sorted(pattern, width, step):
    for point in range(width):
        deps = dependencies(pattern, width, step, point)
        assert list(deps) == sorted(set(deps))
        assert all(0 <= q < width for q in deps)


@given(patterns, widths, st.integers(min_value=0, max_value=6))
@settings(deadline=None, max_examples=60)
def test_dependents_is_exact_inverse(pattern, width, step):
    forward = {
        (q, p)
        for p in range(width)
        for q in dependencies(pattern, width, step + 1, p)
    }
    backward = {
        (p, c)
        for p in range(width)
        for c in dependents(pattern, width, step, p)
    }
    assert forward == backward


@given(
    patterns,
    widths,
    st.integers(min_value=2, max_value=8),
    st.floats(min_value=0.1, max_value=10.0),
)
@settings(deadline=None, max_examples=60)
def test_ccr_bytes_match_definition(pattern, width, steps, ccr):
    """with_ccr sizes messages so mean per-task input time equals
    duration / ccr (for patterns that communicate at all)."""
    kernel = KernelSpec(1_000_000)
    bw = 1e10
    spec = TaskBenchSpec.with_ccr(width, steps, pattern, kernel, ccr, bw)
    total_input_bytes = spec.output_bytes * spec.total_edges
    tasks_with_inputs = width * (steps - 1)
    if spec.total_edges == 0:
        assert spec.output_bytes == 0.0
        return
    mean_input_time = total_input_bytes / bw / tasks_with_inputs
    assert abs(mean_input_time - kernel.duration / ccr) < 1e-9


@given(patterns, widths, st.integers(min_value=1, max_value=6))
@settings(deadline=None, max_examples=40)
def test_built_program_edge_superset_of_pattern(pattern, width, steps):
    """The OpenMP port's graph contains every pattern (RAW) edge."""
    spec = TaskBenchSpec(width, steps, pattern, KernelSpec(1000), 10.0)
    prog = build_omp_program(spec)
    ids = {
        (t.meta["step"], t.meta["point"]): t.task_id
        for t in prog.graph.tasks()
    }
    g = prog.graph.nx_graph()
    import networkx as nx

    closure = nx.transitive_closure_dag(g)
    for step in range(1, steps):
        for point in range(width):
            for q in spec.deps(step, point):
                assert closure.has_edge(ids[(step - 1, q)], ids[(step, point)])


# -- mini-YAML round-trips ---------------------------------------------------

yaml_scalars = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        min_size=1,
        max_size=10,
    ).filter(
        lambda s: s.lower() not in ("true", "false", "yes", "no", "null")
        and not s.isdigit()
    ),
)


@given(
    st.dictionaries(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll",)),
            min_size=1,
            max_size=8,
        ),
        yaml_scalars,
        min_size=1,
        max_size=8,
    )
)
@settings(deadline=None, max_examples=60)
def test_yaml_flat_mapping_roundtrip(mapping):
    text = "\n".join(f"{k}: {v}" for k, v in mapping.items())
    assert parse_yaml(text) == mapping


@given(
    st.lists(
        st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=10
    )
)
@settings(deadline=None, max_examples=40)
def test_yaml_list_roundtrip(values):
    block = "xs:\n" + "\n".join(f"  - {v}" for v in values)
    inline = f"xs: [{', '.join(map(str, values))}]"
    assert parse_yaml(block) == {"xs": values}
    assert parse_yaml(inline) == {"xs": values}
