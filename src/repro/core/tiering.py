"""Tiered data plane: device → host → remote, with pluggable eviction.

PR 4 gave each worker node hard device-memory capacity accounting
(:mod:`repro.core.memory`); until this module, crossing the line was
fatal.  The tiered store turns overflow into *graceful degradation*,
the classic cache-tiering story:

* **Tier 0 — device**: the worker's mapped-buffer table, bounded by
  ``OMPCConfig.device_memory_bytes``.
* **Tier 1 — host**: the head node's buffer image.  Dirty sole copies
  (the INOUT/out results of §4.3's coherency protocol) are *spilled*
  there on eviction — write-behind — so no bytes are ever lost.
* **Tier 2 — remote**: any other node still holding a valid replica.
  Clean replicas are simply dropped; a future consumer re-fetches them
  read-through from wherever the directory says the bytes live, over
  the reliable transport.

The head plans evictions before it plans allocations, so a worker's
:class:`~repro.core.memory.DeviceMemory` never actually overflows: the
:class:`MemoryDirector` mirrors every node's residency *conservatively*
(bytes are charged when the head commits to materializing them, and
released only once the physical DELETE completed), picks victims
through a pluggable :class:`EvictionPolicy`, and pins buffers used by
in-flight kernels so they are never victims.  Only a working set that
cannot fit even after evicting everything unpinned raises a clean,
task-attributed :class:`~repro.core.memory.DeviceMemoryError`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.memory import DeviceMemoryError
from repro.omp.task import Buffer, Task


@dataclass(frozen=True)
class Eviction:
    """One planned eviction of a buffer from a node's device memory.

    ``spill`` distinguishes the two tiers the bytes land in: a dirty
    sole copy must be written behind to the host before the device
    entry may be dropped; a clean replica is simply dropped (another
    valid copy survives elsewhere).
    """

    buffer: Buffer
    node: int
    spill: bool


@dataclass(frozen=True)
class Victim:
    """A candidate handed to an :class:`EvictionPolicy` for ranking."""

    buffer: Buffer
    nbytes: float
    #: Logical LRU clock of the buffer's last use on this node.
    last_use: int
    #: True when this node holds the only valid copy (eviction spills).
    dirty: bool
    #: Estimated price of re-fetching the buffer if it is needed again.
    refetch_cost: float


class MemoryWait(Exception):
    """Internal: not enough free space *yet*, but in-flight evictions
    and/or other frames' pinned bytes cover the shortfall — the caller
    should release its pins, wait for a release, and re-plan."""


class EvictionPolicy(abc.ABC):
    """Orders eviction candidates; the cheapest-to-evict come first."""

    name = "policy"

    @abc.abstractmethod
    def order(self, candidates: list[Victim]) -> list[Victim]:
        """Victims in eviction order (first evicted first)."""


class LRUPolicy(EvictionPolicy):
    """Evict the least-recently-used buffer first (classic LRU)."""

    name = "lru"

    def order(self, candidates: list[Victim]) -> list[Victim]:
        return sorted(
            candidates, key=lambda v: (v.last_use, v.buffer.buffer_id)
        )


class CostAwarePolicy(EvictionPolicy):
    """Evict the cheapest buffer to bring back first.

    The price of evicting a buffer is what it costs to need it again:
    the re-fetch transfer, plus — for dirty copies — the write-behind
    spill that must happen first.  Clean, small replicas go before
    large dirty results; ties fall back to LRU order.
    """

    name = "cost"

    def __init__(self, dirty_penalty: float = 2.0):
        if dirty_penalty < 1.0:
            raise ValueError("dirty_penalty must be >= 1.0")
        self.dirty_penalty = dirty_penalty

    def order(self, candidates: list[Victim]) -> list[Victim]:
        def price(v: Victim) -> float:
            return v.refetch_cost * (self.dirty_penalty if v.dirty else 1.0)

        return sorted(
            candidates,
            key=lambda v: (price(v), v.last_use, v.buffer.buffer_id),
        )


#: Registered policy names for ``OMPCConfig.eviction_policy``.
POLICIES = ("none", "lru", "cost")


def make_policy(name: str) -> EvictionPolicy:
    """The :class:`EvictionPolicy` for a config name (``lru``/``cost``)."""
    if name == "lru":
        return LRUPolicy()
    if name == "cost":
        return CostAwarePolicy()
    raise ValueError(f"unknown eviction policy {name!r} (use one of "
                     f"{[p for p in POLICIES if p != 'none']})")


@dataclass
class _NodeMem:
    """The head's conservative mirror of one node's device residency."""

    #: Buffers the head has committed to the node (bid → Buffer).
    holdings: dict[int, Buffer] = field(default_factory=dict)
    #: Sum of holding sizes (charged eagerly, released lazily).
    resident: float = 0.0
    #: Victims whose physical eviction is still in flight (bid → bytes).
    evicting: dict[int, float] = field(default_factory=dict)
    #: Logical LRU clock per buffer.
    last_use: dict[int, int] = field(default_factory=dict)


class MemoryDirector:
    """Head-side capacity accounting, pinning, and eviction planning.

    One director serves every worker node of a run.  All bookkeeping is
    plain synchronous Python — planning never yields, so enabling
    tiering with unlimited capacity leaves the event stream bit
    identical to the un-tiered kernel.
    """

    def __init__(
        self,
        capacities: dict[int, float],
        policy: EvictionPolicy,
        capacity_fn=None,
        refetch_cost_fn=None,
    ):
        for node, cap in capacities.items():
            if cap <= 0:
                raise ValueError(f"node {node}: capacity must be > 0")
        self.capacities = dict(capacities)
        self.policy = policy
        #: Optional ``fn(node) -> bytes`` for time-varying capacity
        #: (the MemoryPressure fault arm shrinks it mid-run).
        self.capacity_fn = capacity_fn
        #: Optional ``fn(buffer) -> cost`` pricing a future re-fetch for
        #: the cost-aware policy; defaults to the buffer size.
        self.refetch_cost_fn = refetch_cost_fn
        self._nodes: dict[int, _NodeMem] = {
            node: _NodeMem() for node in capacities
        }
        #: Global per-buffer pin counts: a pinned buffer is in use by an
        #: in-flight task frame (as kernel input/output or as the source
        #: of an in-flight transfer) and is never an eviction victim.
        self._pins: dict[int, int] = {}
        self._tick = 0

    # -- queries -----------------------------------------------------------
    def manages(self, node: int) -> bool:
        return node in self._nodes

    def capacity(self, node: int) -> float:
        """The node's *effective* capacity right now."""
        base = self.capacities[node]
        if self.capacity_fn is not None:
            return min(base, self.capacity_fn(node, base))
        return base

    def resident(self, node: int) -> float:
        return self._nodes[node].resident

    def holdings(self, node: int) -> dict[int, Buffer]:
        return dict(self._nodes[node].holdings)

    def pinned(self, buffer_id: int) -> bool:
        return self._pins.get(buffer_id, 0) > 0

    def evicting(self, node: int) -> set[int]:
        """Buffer ids whose physical eviction from ``node`` is in flight."""
        return set(self._nodes[node].evicting)

    # -- pinning -----------------------------------------------------------
    def pin(self, buffer_ids) -> None:
        for bid in buffer_ids:
            self._pins[bid] = self._pins.get(bid, 0) + 1

    def unpin(self, buffer_ids) -> None:
        for bid in buffer_ids:
            count = self._pins.get(bid, 0) - 1
            if count <= 0:
                self._pins.pop(bid, None)
            else:
                self._pins[bid] = count

    # -- residency bookkeeping --------------------------------------------
    def touch(self, node: int, buffer_ids) -> None:
        """Advance the LRU clock for buffers a task is about to use."""
        view = self._nodes.get(node)
        if view is None:
            return
        self._tick += 1
        for bid in buffer_ids:
            if bid in view.holdings:
                view.last_use[bid] = self._tick

    def charge(self, node: int, buffer: Buffer) -> bool:
        """Account ``buffer`` as resident on ``node`` (before the event).

        Idempotent; returns True when the entry is new.  Charging is
        *eager* — at the moment the head commits to materializing the
        bytes — so concurrent planners see each other's reservations.
        """
        view = self._nodes.get(node)
        if view is None:
            return False
        bid = buffer.buffer_id
        if bid in view.holdings:
            return False
        view.holdings[bid] = buffer
        view.resident += buffer.nbytes
        self._tick += 1
        view.last_use[bid] = self._tick
        return True

    def release(self, node: int, buffer_id: int) -> None:
        """Account a completed physical DELETE (lazy, conservative)."""
        view = self._nodes.get(node)
        if view is None:
            return
        buf = view.holdings.pop(buffer_id, None)
        if buf is not None:
            view.resident -= buf.nbytes
        view.evicting.pop(buffer_id, None)
        view.last_use.pop(buffer_id, None)

    def forget_node(self, node: int) -> None:
        """Drop all accounting for a crashed node (its memory is gone)."""
        view = self._nodes.get(node)
        if view is None:
            return
        view.holdings.clear()
        view.evicting.clear()
        view.last_use.clear()
        view.resident = 0.0

    # -- eviction planning -------------------------------------------------
    def plan(
        self,
        task: Task,
        node: int,
        incoming: list[Buffer],
        sole_copy_fn,
    ) -> list[Eviction]:
        """Make room on ``node`` for ``incoming``; charge the newcomers.

        Returns the evictions the caller must perform (physically)
        before materializing the incoming buffers.  Raises
        :class:`MemoryWait` when in-flight evictions will free enough
        space (wait and re-plan), and a task-attributed
        :class:`~repro.core.memory.DeviceMemoryError` when the working
        set cannot fit even after evicting everything unpinned.
        """
        view = self._nodes[node]
        cap = self.capacity(node)
        seen: set[int] = set()
        new: list[Buffer] = []
        for buf in incoming:
            bid = buf.buffer_id
            if bid not in view.holdings and bid not in seen:
                seen.add(bid)
                new.append(buf)
        need = sum(b.nbytes for b in new)
        free = cap - view.resident
        evictions: list[Eviction] = []
        if need > free:
            candidates = [
                Victim(
                    buffer=buf,
                    nbytes=buf.nbytes,
                    last_use=view.last_use.get(bid, 0),
                    dirty=sole_copy_fn(buf, node),
                    refetch_cost=(
                        self.refetch_cost_fn(buf)
                        if self.refetch_cost_fn is not None
                        else buf.nbytes
                    ),
                )
                for bid, buf in view.holdings.items()
                if bid not in view.evicting
                and not self.pinned(bid)
                and bid not in seen
            ]
            for victim in self.policy.order(candidates):
                if need <= free:
                    break
                free += victim.nbytes
                evictions.append(
                    Eviction(victim.buffer, node, spill=victim.dirty)
                )
            if need > free:
                in_flight = sum(view.evicting.values())
                pinned_bytes = sum(
                    b.nbytes
                    for bid, b in view.holdings.items()
                    if self.pinned(bid)
                    and bid not in seen
                    and bid not in view.evicting
                )
                # Blocked by transient state — in-flight evictions or
                # other frames' pins — not by the working set itself:
                # the caller backs off (releasing its own pins) and
                # re-plans once something lands or unpins.  Only a solo
                # working set that cannot fit is fatal.
                if need <= free + in_flight + pinned_bytes:
                    raise MemoryWait
                def listed(pairs):
                    shown = ", ".join(
                        f"{name}:{nbytes:.0f}B" for name, nbytes in pairs[:8]
                    )
                    if len(pairs) > 8:
                        shown += f", … +{len(pairs) - 8} more"
                    return shown

                resident = sorted(
                    (b.name, b.nbytes) for b in view.holdings.values()
                )
                wanted = sorted((b.name, b.nbytes) for b in new)
                raise DeviceMemoryError(
                    f"task {task.name} (id {task.task_id}): working set of "
                    f"{need:.0f} B ([{listed(wanted)}]) cannot fit on node "
                    f"{node} even after evicting every unpinned buffer "
                    f"(effective capacity {cap:.0f} B, "
                    f"{view.resident:.0f} B resident, "
                    f"{pinned_bytes:.0f} B pinned by in-flight tasks; "
                    f"resident set: [{listed(resident)}])"
                )
            for ev in evictions:
                view.evicting[ev.buffer.buffer_id] = ev.buffer.nbytes
        for buf in new:
            self.charge(node, buf)
        return evictions
