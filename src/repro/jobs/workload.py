"""Workload generators: seeded Poisson arrivals and JSON trace replay.

Both produce the same thing — a sorted list of ``(arrival, JobSpec)``
pairs ready for :meth:`JobManager.run <repro.jobs.manager.JobManager.run>`
— and both are strictly deterministic: the Poisson stream is a pure
function of its seed (via :func:`~repro.util.rng.derive_rng`), and a
trace replays exactly as written.  Job programs are Task Bench graphs
(:mod:`repro.taskbench`), the same synthetic applications the rest of
the reproduction benchmarks with, so per-job makespans are grounded in
the calibrated runtime model rather than invented constants.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.jobs.job import JobSpec
from repro.taskbench.bench import build_omp_program
from repro.taskbench.graph import TaskBenchSpec
from repro.taskbench.kernel import KernelSpec
from repro.taskbench.patterns import Pattern
from repro.util.rng import derive_rng

#: Estimated fixed runtime overhead per job (startup + first event +
#: shutdown, ~25 ms per the paper's Fig. 7a) baked into estimates.
_CONSTANT_OVERHEAD = 0.025


def _taskbench_job(
    name: str,
    tenant: str,
    nodes: int,
    width: int,
    steps: int,
    task_seconds: float,
    pattern: Pattern = Pattern.STENCIL_1D,
    priority: int = 0,
    est_slack: float = 1.2,
    preemptible: bool = False,
    fault_tolerant: bool = False,
    failures: tuple = (),
    max_attempts: int = 2,
) -> JobSpec:
    """A JobSpec wrapping one Task Bench configuration.

    The runtime estimate is the ideal-parallel lower bound (steps ×
    task duration × ceil(width / workers)) plus the constant runtime
    overhead, padded by ``est_slack`` — deliberately imperfect, the way
    real users' estimates are, which is exactly what EASY backfill has
    to cope with.
    """
    kernel = KernelSpec(iterations=max(1, round(task_seconds / 5e-9)))
    spec = TaskBenchSpec(
        width=width, steps=steps, pattern=pattern, kernel=kernel
    )
    workers = max(nodes - 1, 1)
    waves = -(-width // workers)  # ceil
    est = steps * kernel.duration * waves * est_slack + _CONSTANT_OVERHEAD
    return JobSpec(
        name=name,
        program=lambda spec=spec: build_omp_program(spec),
        nodes=nodes,
        tenant=tenant,
        priority=priority,
        est_runtime=est,
        preemptible=preemptible,
        fault_tolerant=fault_tolerant,
        failures=failures,
        max_attempts=max_attempts,
    )


@dataclass(frozen=True)
class PoissonWorkload:
    """A seeded stream of Poisson job arrivals with mixed shapes.

    ``small``/``large`` bound the node request of the two job classes;
    ``large_fraction`` of jobs are large.  ``tenants`` names rotate by
    draw.  All randomness flows from ``derive_rng(seed, "jobs", ...)``,
    so two instances with equal parameters generate byte-identical
    workloads.
    """

    seed: int
    jobs: int = 20
    #: Mean inter-arrival time in simulated seconds.
    mean_interarrival: float = 0.05
    small: tuple[int, int] = (2, 3)
    large: tuple[int, int] = (6, 10)
    large_fraction: float = 0.3
    tenants: tuple[str, ...] = ("alice", "bob", "carol")
    steps: tuple[int, int] = (2, 5)
    task_seconds: tuple[float, float] = (0.01, 0.05)

    def generate(self) -> list[tuple[float, JobSpec]]:
        rng = derive_rng(self.seed, "jobs", "poisson")
        out: list[tuple[float, JobSpec]] = []
        t = 0.0
        for i in range(self.jobs):
            t += float(rng.exponential(self.mean_interarrival))
            big = bool(rng.random() < self.large_fraction)
            lo, hi = self.large if big else self.small
            nodes = int(rng.integers(lo, hi + 1))
            steps = int(rng.integers(self.steps[0], self.steps[1] + 1))
            task_s = float(rng.uniform(*self.task_seconds))
            tenant = self.tenants[i % len(self.tenants)]
            # Width ~ one task per worker per step keeps per-job load
            # proportional to the partition it asked for.
            width = nodes - 1
            out.append((t, _taskbench_job(
                name=f"j{i:03d}{'L' if big else 's'}",
                tenant=tenant,
                nodes=nodes,
                width=width,
                steps=steps,
                task_seconds=task_s,
            )))
        return out


@dataclass(frozen=True)
class OverloadTrace:
    """A bursty multi-tenant "million-user day" squeezed into a trace.

    Arrival intensity follows ``profile`` — relative weights over equal
    windows spanning ``duration`` (quiet → ramp → spike → decay), the
    classic diurnal shape compressed to simulation scale.  Each window
    draws a Poisson count at ``base_rate × load × weight`` and spreads
    the arrivals uniformly inside the window.  ``load`` is the knob the
    overload bench sweeps (1×/3×/10×): the trace shape is identical,
    only the intensity scales.

    The mix stresses every elastic mechanism:

    - *batch* jobs — low priority, ``preemptible``, 3–6 nodes — the
      cluster's bread and butter, and preemption's victims;
    - *interactive* jobs — priority 10, small, short — the latency
      SLO class that preempts batch when the spike hits;
    - *poison* jobs — a fixed handful of fault-tolerant jobs whose
      injected head failures re-fire on every attempt, crashing until
      the dead-letter queue quarantines them.  The count does not scale
      with ``load`` so smoke tests can assert exact DLQ numbers.

    All randomness flows from ``derive_rng(seed, "jobs", "overload",
    load)``: equal parameters generate byte-identical traces.
    """

    seed: int
    load: float = 1.0
    duration: float = 0.8
    #: Expected jobs/second at ``load=1`` across all tenants.
    base_rate: float = 40.0
    profile: tuple[float, ...] = (0.2, 0.5, 1.0, 2.2, 3.5, 1.8, 0.7, 0.3)
    tenants: tuple[str, ...] = ("alice", "bob", "carol", "dave")
    interactive_fraction: float = 0.25
    poison_jobs: int = 2
    batch_nodes: tuple[int, int] = (3, 6)
    interactive_nodes: tuple[int, int] = (2, 3)

    def generate(self) -> list[tuple[float, JobSpec]]:
        from repro.core.faults import NodeFailure

        rng = derive_rng(self.seed, "jobs", "overload", f"{self.load:g}")
        window = self.duration / len(self.profile)
        out: list[tuple[float, JobSpec]] = []
        index = 0
        for w, weight in enumerate(self.profile):
            mean = self.base_rate * self.load * weight * window
            count = int(rng.poisson(mean))
            times = sorted(
                w * window + float(rng.random()) * window
                for _ in range(count)
            )
            for t in times:
                tenant = self.tenants[int(rng.integers(len(self.tenants)))]
                if rng.random() < self.interactive_fraction:
                    lo, hi = self.interactive_nodes
                    nodes = int(rng.integers(lo, hi + 1))
                    spec = _taskbench_job(
                        name=f"i{index:04d}",
                        tenant=tenant,
                        nodes=nodes,
                        width=max(nodes - 1, 1),
                        steps=2,
                        task_seconds=float(rng.uniform(0.005, 0.015)),
                        priority=10,
                    )
                else:
                    lo, hi = self.batch_nodes
                    nodes = int(rng.integers(lo, hi + 1))
                    spec = _taskbench_job(
                        name=f"b{index:04d}",
                        tenant=tenant,
                        nodes=nodes,
                        width=max(nodes - 1, 1),
                        steps=int(rng.integers(2, 5)),
                        task_seconds=float(rng.uniform(0.01, 0.03)),
                        preemptible=True,
                    )
                out.append((t, spec))
                index += 1
        # Poison jobs at fixed fractions of the trace: attempt 1 loses
        # its head at t=5 ms (unrecoverable — no standbys); the requeue
        # strips only failures whose offset already elapsed, so attempt
        # 2 still carries the two worker failures, loses every worker
        # (ClusterExhausted), and the job runs out of attempts — into
        # the dead-letter queue.
        for k in range(self.poison_jobs):
            arrival = self.duration * (0.15 + 0.3 * k / max(
                self.poison_jobs - 1, 1))
            out.append((arrival, _taskbench_job(
                name=f"p{k:02d}",
                tenant="mallory",
                nodes=3,
                width=2,
                steps=9,
                task_seconds=0.05,
                fault_tolerant=True,
                failures=(NodeFailure(time=0.005, node=0),
                          NodeFailure(time=0.08, node=1),
                          NodeFailure(time=0.09, node=2)),
                max_attempts=2,
            )))
        out.sort(key=lambda pair: (pair[0], pair[1].name))
        return out


def jobs_from_json(text: str) -> list[tuple[float, JobSpec]]:
    """Replay a workload trace from its JSON spec.

    The spec is a list of objects; per entry::

        {"name": "lulesh-1", "arrival": 0.05, "nodes": 4,
         "tenant": "alice", "priority": 0,
         "width": 3, "steps": 4, "task_ms": 20.0,
         "pattern": "stencil_1d"}

    ``width`` defaults to ``nodes - 1``, ``pattern`` to ``stencil_1d``;
    ``est_runtime`` may be given explicitly to override the derived
    estimate.
    """
    entries = json.loads(text)
    if not isinstance(entries, list):
        raise ValueError("workload trace must be a JSON list")
    out: list[tuple[float, JobSpec]] = []
    for i, entry in enumerate(entries):
        out.append((float(entry.get("arrival", 0.0)),
                    _job_from_entry(i, entry)))
    out.sort(key=lambda pair: pair[0])
    return out


def _job_from_entry(index: int, entry: dict[str, Any]) -> JobSpec:
    try:
        nodes = int(entry["nodes"])
    except KeyError:
        raise ValueError(f"trace entry {index}: 'nodes' is required") from None
    name = str(entry.get("name", f"trace{index:03d}"))
    spec = _taskbench_job(
        name=name,
        tenant=str(entry.get("tenant", "default")),
        nodes=nodes,
        width=int(entry.get("width", max(nodes - 1, 1))),
        steps=int(entry.get("steps", 3)),
        task_seconds=float(entry.get("task_ms", 20.0)) / 1e3,
        pattern=Pattern(str(entry.get("pattern", "stencil_1d"))),
        priority=int(entry.get("priority", 0)),
    )
    if "est_runtime" in entry:
        spec = JobSpec(
            name=spec.name, program=spec.program, nodes=spec.nodes,
            tenant=spec.tenant, priority=spec.priority,
            est_runtime=float(entry["est_runtime"]),
        )
    return spec
