"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_fig*.py`` file has two entry points:

* ``pytest benchmarks/ --benchmark-only`` runs a representative subset
  of every figure's cells under pytest-benchmark (wall-clock of the
  simulation) while asserting the paper's qualitative shapes;
* ``python benchmarks/bench_figX_*.py`` regenerates the *full* figure,
  printing the same series the paper plots (simulated seconds).
"""

from __future__ import annotations

from repro.cluster.machine import ClusterSpec
from repro.runtimes import (
    CharmLikeRuntime,
    MpiSyncRuntime,
    OmpcRuntimeAdapter,
    StarPULikeRuntime,
)
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.util.units import Gbps

#: Reference fabric bandwidth for CCR-matched message sizing (§6.1).
BANDWIDTH = Gbps(100.0)

RUNTIMES = {
    "OMPC": OmpcRuntimeAdapter,
    "Charm++": CharmLikeRuntime,
    "StarPU": StarPULikeRuntime,
    "MPI": MpiSyncRuntime,
}

#: Figure order used in the paper's legends.
RUNTIME_ORDER = ("MPI", "StarPU", "Charm++", "OMPC")


def fig5_spec(pattern: Pattern, nodes: int) -> TaskBenchSpec:
    """Fig. 5 cell: width 2n x 32 steps, 10M-iter (50 ms) tasks, CCR 1.0."""
    return TaskBenchSpec.with_ccr(
        2 * nodes, 32, pattern, KernelSpec.paper_50ms(), 1.0, BANDWIDTH
    )


def fig6_spec(pattern: Pattern, ccr: float) -> TaskBenchSpec:
    """Fig. 6 cell: 16x16 graph, 100M-iter (500 ms) tasks, varying CCR."""
    return TaskBenchSpec.with_ccr(
        16, 16, pattern, KernelSpec.paper_500ms(), ccr, BANDWIDTH
    )


def run_cell(runtime_name: str, spec: TaskBenchSpec, nodes: int) -> float:
    """Simulated makespan of one (runtime, spec, nodes) cell."""
    runtime = RUNTIMES[runtime_name]()
    return runtime.run(spec, ClusterSpec(num_nodes=nodes)).makespan
