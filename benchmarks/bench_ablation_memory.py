"""Ablation M: graceful degradation under device-memory pressure.

The tiered data plane (device -> host -> remote) lets a working set
larger than device memory run to completion by evicting victims chosen
by a pluggable policy: plain drops for clean replicas, write-behind
spills for dirty sole copies, read-through re-fetch on the next touch.
This bench sweeps capacity fractions of the working set and compares
the LRU policy against the cost-aware one (which weighs victim bytes
against re-fetch cost and dirtiness) and the unlimited baseline.

``--json`` dumps the exact counter values per cell — the same numbers
the CI mem-smoke job pins.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import format_table
from repro.cluster.machine import ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.runtime import OMPCRuntime
from repro.omp.api import OmpProgram
from repro.omp.task import Dep, DepType, depend_in, depend_out
from repro.util.units import MILLISECOND

KB = 1024.0
NODES = 3
FRACTIONS = (1.0, 0.5, 0.25)
POLICIES = ("lru", "cost")


def workload(n: int = 12):
    """Staged buffers of mixed sizes, dirtied in place, then reduced.

    Mixed sizes make the cost-aware policy's choices diverge from pure
    LRU; the INOUT middle stage turns every staged buffer into a dirty
    sole copy so pressure exercises write-behind spill, not just clean
    drops.
    """
    prog = OmpProgram("mem-ablation")
    sizes = [(i % 4 + 1) * KB for i in range(n)]
    bufs = [prog.buffer(sz, data=np.zeros(4), name=f"b{i}")
            for i, sz in enumerate(sizes)]
    outs = [prog.buffer(sz, data=np.zeros(4), name=f"o{i}")
            for i, sz in enumerate(sizes)]
    prog.target_enter_data(*bufs)
    for i, b in enumerate(bufs):
        def bump(x, i=i):
            x += i + 1
        prog.target(bump, depend=[Dep(b, DepType.INOUT)],
                    cost=0.2 * MILLISECOND, name=f"bump{i}")
    for i, (b, o) in enumerate(zip(bufs, outs)):
        def copy(x, y):
            y[:] = 2 * x
        prog.target(copy, depend=[depend_in(b), depend_out(o)],
                    cost=0.2 * MILLISECOND, name=f"copy{i}")
    prog.target_exit_data(*outs)
    return prog, outs, sum(sizes)


def run_case(policy: str | None, frac: float | None) -> dict:
    """One cell of the sweep; ``policy=None`` is the unlimited baseline."""
    if policy is None:
        cfg = OMPCConfig(trace=True)
    else:
        prog_probe, _outs, total = workload()
        # Floor at 9 KiB: the largest single task touches 8 KiB (a
        # 4 KiB input plus its 4 KiB output), and a solo working set
        # that cannot fit is *correctly* fatal rather than degradable.
        cfg = OMPCConfig(
            device_memory_bytes=max(9 * KB, frac * total),
            eviction_policy=policy,
            trace=True,
        )
    rt = OMPCRuntime(ClusterSpec(num_nodes=NODES), cfg)
    prog, outs, _total = workload()
    res = rt.run(prog)
    counters = rt.last_cluster.trace.counters
    return {
        "makespan_ms": res.makespan * 1e3,
        "network_bytes": res.network_bytes,
        "hit": counters.get("mem.hit", 0),
        "miss": counters.get("mem.miss", 0),
        "evict": counters.get("mem.evict", 0),
        "spill_bytes": counters.get("mem.spill_bytes", 0),
        "fetch_retries": counters.get("mem.fetch_retries", 0),
        "outputs": [o.data.copy() for o in outs],
    }


class TestAblationMemory:
    def test_bench_pressure_degrades_gracefully(self, benchmark):
        def sweep():
            cells = {"unlimited": run_case(None, None)}
            for policy in POLICIES:
                for frac in FRACTIONS:
                    cells[f"{policy}@{frac:g}"] = run_case(policy, frac)
            return cells

        cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
        reference = cells["unlimited"]["outputs"]
        assert cells["unlimited"]["evict"] == 0
        for name, cell in cells.items():
            # Byte conservation: every pressured run still computes
            # exactly the unlimited answer.
            for got, ref in zip(cell["outputs"], reference):
                assert (got == ref).all(), f"{name} corrupted outputs"
        for policy in POLICIES:
            # Quarter capacity cannot hold the working set: the run
            # completes *because* eviction made room.
            tight = cells[f"{policy}@0.25"]
            assert tight["evict"] > 0
            assert tight["spill_bytes"] > 0


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json as jsonlib

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None,
                        help="write exact per-cell counters to this file")
    args = parser.parse_args(argv)

    payload = {}
    rows = []

    def add(label, cell):
        payload[label] = {k: v for k, v in cell.items() if k != "outputs"}
        rows.append([
            label,
            f"{cell['makespan_ms']:.3f}",
            f"{cell['network_bytes'] / KB:.0f}",
            f"{cell['hit']:.0f}",
            f"{cell['miss']:.0f}",
            f"{cell['evict']:.0f}",
            f"{cell['spill_bytes'] / KB:.0f}",
            f"{cell['fetch_retries']:.0f}",
        ])

    add("unlimited", run_case(None, None))
    for policy in POLICIES:
        for frac in FRACTIONS:
            add(f"{policy}@{frac:g}", run_case(policy, frac))

    print(format_table(
        ["configuration", "makespan (ms)", "net (KiB)", "hits", "misses",
         "evictions", "spilled (KiB)", "retries"],
        rows,
        title=(
            "Ablation M — tiered data plane under capacity pressure "
            f"({NODES - 1} workers, mixed-size working set)"
        ),
    ))
    if args.json:
        with open(args.json, "w") as fh:
            jsonlib.dump(payload, fh, indent=2, sort_keys=True)
        print(f"exact counters -> {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
