"""Scheduler interface and the shared co-location post-pass."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.cluster.machine import Cluster
from repro.core.datamanager import HOST
from repro.omp.task import Task, TaskKind
from repro.omp.taskgraph import TaskGraph


@dataclass
class Schedule:
    """A static assignment of every task to a node.

    ``planned`` holds the scheduler's own start/finish estimates where
    available (HEFT); the runtime's dynamic dispatch may deviate, the
    assignment is what binds.
    """

    assignment: dict[int, int]
    planned: dict[int, tuple[float, float]] = field(default_factory=dict)

    def node_of(self, task: Task) -> int:
        return self.assignment[task.task_id]

    @property
    def makespan_estimate(self) -> float:
        return max((end for _s, end in self.planned.values()), default=0.0)


class Scheduler(abc.ABC):
    """Maps a complete task graph onto cluster nodes before dispatch."""

    @abc.abstractmethod
    def schedule(self, graph: TaskGraph, cluster: Cluster) -> Schedule:
        """Assign every task in ``graph`` to a node of ``cluster``.

        Worker nodes are 1..N-1; the head node (0) only ever receives
        classical tasks and data-task endpoints per the §4.4 rules.
        """

    # ------------------------------------------------------------------
    # shared §4.4 adaptations
    # ------------------------------------------------------------------
    @staticmethod
    def worker_nodes(cluster: Cluster) -> list[int]:
        return [n.node_id for n in cluster.workers]

    @staticmethod
    def pin_special_tasks(
        graph: TaskGraph, assignment: dict[int, int]
    ) -> None:
        """Apply the paper's placement rules for non-HEFT tasks.

        * classical tasks run on the head node (OpenMP semantics);
        * ``target enter data`` tasks are co-scheduled with the first
          target task that uses their buffer (their successor);
        * ``target exit data`` tasks are co-scheduled with the last
          producer (their predecessor).

        "Not scheduling both tasks in the same process would lead to
        data being unnecessarily sent from the producer to an
        intermediate process and then forwarded to the consumer."
        """
        for task in graph.tasks():
            if task.kind == TaskKind.CLASSICAL:
                assignment[task.task_id] = HOST
        for task in graph.tasks():
            if task.kind == TaskKind.TARGET_ENTER_DATA:
                consumer = next(
                    (
                        s
                        for s in graph.successors(task)
                        if s.task_id in assignment
                        and not s.kind.is_data_movement
                    ),
                    None,
                )
                assignment[task.task_id] = (
                    assignment[consumer.task_id] if consumer else HOST
                )
            elif task.kind == TaskKind.TARGET_EXIT_DATA:
                producer = next(
                    (
                        p
                        for p in reversed(graph.predecessors(task))
                        if p.task_id in assignment
                        and not p.kind.is_data_movement
                    ),
                    None,
                )
                assignment[task.task_id] = (
                    assignment[producer.task_id] if producer else HOST
                )
