"""Fault tolerance: heartbeat ring, failure injection, task restart.

§3.1: "each node in OMPC (head node and worker nodes) has a heart-beat
mechanism, connected in a ring topology, which allows nodes to monitor
their neighbors.  Thus, if a node fails, the system detects and
restarts the failed tasks.  Fault tolerance work on OMPC is underway
and will be released in a future version."

This module implements that future version on the simulated cluster:

* :class:`HeartbeatRing` — every node periodically sends a heartbeat to
  its ring successor and monitors its predecessor; a missed deadline
  reports the suspect to the head node.
* :class:`FailureInjector` — crashes chosen worker nodes at chosen
  simulated times (kills their event machinery and wipes their device
  memory).
* :class:`FaultTolerantRuntime` — an OMPC runtime whose dispatch
  survives worker failures: in-flight tasks on a dead node are
  re-dispatched to survivors, and buffers whose only copy died are
  recovered by lineage — re-executing their recorded producer task
  (transitively).  Lineage recovery requires the producer's own inputs
  to still be reconstructible, which holds for the paper's motivating
  workload (independent long-running shots reading replicated/host
  data); an unrecoverable loss raises :class:`RecoveryError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.machine import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.datamanager import HOST, DataManager, Move
from repro.core.events import EventSystem
from repro.core.scheduler import HeftScheduler, Schedule, Scheduler
from repro.mpi.comm import MpiWorld
from repro.omp.api import OmpProgram
from repro.omp.task import Buffer, Task, TaskKind
from repro.sim.errors import SimulationError
from repro.sim.primitives import AnyOf
from repro.sim.resources import Resource
from repro.util.units import MILLISECOND


class RecoveryError(SimulationError):
    """A lost buffer cannot be reconstructed from surviving data."""


@dataclass(frozen=True)
class NodeFailure:
    """One injected crash."""

    time: float
    node: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be >= 0")
        if self.node == 0:
            raise ValueError("the head node cannot fail in this model")


class FailureInjector:
    """Schedules crashes against a running event system."""

    def __init__(self, events: EventSystem):
        self.events = events
        self.injected: list[NodeFailure] = []

    def arm(self, failures: list[NodeFailure],
            on_fail: Callable[[int], None] | None = None) -> None:
        sim = self.events.sim
        for failure in failures:
            def crash(f=failure):
                yield sim.timeout(f.time)
                self.events.fail_node(f.node)
                self.injected.append(f)
                if on_fail is not None:
                    on_fail(f.node)

            sim.process(crash(), name=f"failure@{failure.node}")


class HeartbeatRing:
    """Ring-topology liveness monitoring (§3.1).

    Node ``i`` heartbeats to ``(i+1) % n`` every ``interval``; the
    monitor on the successor declares its predecessor dead after
    ``timeout`` without a beat and invokes ``on_detect`` (the head-side
    recovery hook).  After a detection the monitor re-wires to the next
    living predecessor so later failures are still caught.
    """

    def __init__(
        self,
        cluster: Cluster,
        mpi: MpiWorld,
        events: EventSystem,
        interval: float = 1.0 * MILLISECOND,
        timeout: float = 3.5 * MILLISECOND,
        heartbeat_bytes: float = 16.0,
    ):
        if interval <= 0 or timeout <= interval:
            raise ValueError("need 0 < interval < timeout")
        self.cluster = cluster
        self.sim = cluster.sim
        self.events = events
        self.interval = interval
        self.timeout = timeout
        self.heartbeat_bytes = heartbeat_bytes
        self.comm = mpi.new_communicator()
        self.on_detect: Callable[[int, int], None] | None = None
        #: (dead_node, detected_by, detection_time) records.
        self.detections: list[tuple[int, int, float]] = []
        self._dead: set[int] = set()
        self._stopped = False

    def start(self) -> None:
        n = self.cluster.num_nodes
        if n < 2:
            return
        for node in range(n):
            self.sim.process(self._sender(node), name=f"hb-send{node}")
            self.sim.process(self._monitor(node), name=f"hb-mon{node}")

    def stop(self) -> None:
        """End monitoring (called at runtime shutdown)."""
        self._stopped = True

    def _alive(self, node: int) -> bool:
        return not self.events.node_failed(node) and node not in self._dead

    def _sender(self, node: int):
        n = self.cluster.num_nodes
        rank = self.comm.rank(node)
        seq = 0
        while not self._stopped:
            if self.events.node_failed(node):
                return  # this node has crashed; no more beats
            successor = (node + 1) % n
            # Skip dead successors so the ring stays closed.
            while not self._alive(successor) and successor != node:
                successor = (successor + 1) % n
            if successor != node:
                rank.isend(successor, ("hb", node, seq),
                           self.heartbeat_bytes, tag=1)
            seq += 1
            yield self.sim.timeout(self.interval)

    def _monitor(self, node: int):
        rank = self.comm.rank(node)
        while not self._stopped:
            if self.events.node_failed(node):
                return
            watched = self._predecessor(node)
            if watched is None:
                return  # no other live node to monitor
            req = rank.irecv(src=watched, tag=1)
            deadline = self.sim.timeout(self.timeout)
            yield AnyOf(self.sim, [req.event, deadline])
            if self._stopped or self.events.node_failed(node):
                return
            if req.test():
                continue  # a beat arrived in time
            # Deadline passed without a beat from the watched node.  The
            # fabric never drops messages in this model, so a missed
            # window means the predecessor is gone; declare it and
            # re-wire to the next believed-alive predecessor.
            self._declare(watched, node)

    def _predecessor(self, node: int) -> int | None:
        """The nearest ring predecessor this node *believes* is alive."""
        n = self.cluster.num_nodes
        pred = (node - 1) % n
        while pred != node:
            if pred not in self._dead:
                return pred
            pred = (pred - 1) % n
        return None

    def _declare(self, dead: int, by: int) -> None:
        if dead in self._dead:
            return
        self._dead.add(dead)
        self.detections.append((dead, by, self.sim.now))
        if self.on_detect is not None:
            self.on_detect(dead, by)


@dataclass
class FTRunResult:
    """Outcome of a fault-tolerant execution."""

    makespan: float
    schedule: Schedule
    failures: list[int] = field(default_factory=list)
    detections: list[tuple[int, int, float]] = field(default_factory=list)
    reexecuted_tasks: int = 0
    task_attempts: dict[int, int] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)


class FaultTolerantRuntime:
    """OMPC with the §3.1 heartbeat/restart mechanism enabled."""

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        config: OMPCConfig | None = None,
        scheduler: Scheduler | None = None,
        heartbeat_interval: float = 1.0 * MILLISECOND,
        heartbeat_timeout: float = 3.5 * MILLISECOND,
    ):
        if cluster_spec.num_nodes < 3:
            raise ValueError(
                "fault tolerance needs a head node plus at least two "
                "workers (a lone worker's failure is unrecoverable)"
            )
        self.cluster_spec = cluster_spec
        self.config = config or OMPCConfig()
        self.scheduler = scheduler or HeftScheduler(
            exec_slots_per_node=self.config.event_handlers
        )
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.last_cluster: Cluster | None = None

    # ------------------------------------------------------------------
    def run(
        self, program: OmpProgram, failures: list[NodeFailure] = ()
    ) -> FTRunResult:
        program.validate()
        cluster = Cluster(self.cluster_spec)
        self.last_cluster = cluster
        sim = cluster.sim
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, self.config)
        ring = HeartbeatRing(
            cluster, mpi, events,
            interval=self.heartbeat_interval,
            timeout=self.heartbeat_timeout,
        )
        dm = DataManager()
        cfg = self.config
        graph = program.graph

        schedule = self.scheduler.schedule(graph, cluster)
        result = FTRunResult(makespan=0.0, schedule=schedule)

        dead: set[int] = set()
        live_workers = lambda: [  # noqa: E731 - tiny local helper
            n for n in range(1, cluster.num_nodes) if n not in dead
        ]

        remaining = {t.task_id: graph.in_degree(t) for t in graph.tasks()}
        pending = len(remaining)
        all_done = sim.event("all-tasks-done")
        slots = Resource(sim, capacity=cfg.head_threads, name="head-threads")
        #: Which task last produced each buffer's current value.
        writer_of: dict[int, Task] = {}
        attempts: dict[int, int] = {}
        # Serialize recoveries of the same buffer.
        recovering: dict[int, object] = {}

        def target_node(task: Task) -> int:
            node = schedule.node_of(task)
            if node in dead and node != HOST:
                # Deterministic re-map: spread by task id over survivors.
                survivors = live_workers()
                if not survivors:
                    raise RecoveryError("all worker nodes have failed")
                node = survivors[task.task_id % len(survivors)]
            return node

        def complete(task: Task) -> None:
            nonlocal pending
            pending -= 1
            for succ in graph.successors(task):
                remaining[succ.task_id] -= 1
                if remaining[succ.task_id] == 0:
                    sim.process(run_task(succ), name=f"ft-task:{succ.name}")
            if pending == 0:
                all_done.succeed()

        # -- buffer movement and recovery -------------------------------
        def ensure_available(buffer: Buffer, chain: frozenset = frozenset()):
            """Generator: guarantee a live copy of ``buffer`` exists.

            ``chain`` carries the buffer ids already being recovered on
            this call stack: needing one of them again means the lost
            value can only be rebuilt from itself (an in-place/INOUT
            producer), which is unrecoverable without checkpoints.
            """
            while True:
                locations = dm.locations(buffer) - dead
                if locations:
                    return
                if buffer.buffer_id in chain:
                    raise RecoveryError(
                        f"buffer {buffer.name} can only be rebuilt from "
                        "its own lost value (in-place producer); "
                        "checkpoint-free lineage recovery cannot help"
                    )
                token = recovering.get(buffer.buffer_id)
                if token is not None:
                    yield token  # someone else is already recovering it
                    continue
                producer = writer_of.get(buffer.buffer_id)
                if producer is None:
                    raise RecoveryError(
                        f"buffer {buffer.name} lost with no recorded "
                        "producer; its initial value existed only on the "
                        "failed node"
                    )
                done = sim.event(f"recover:{buffer.name}")
                recovering[buffer.buffer_id] = done
                try:
                    yield from execute_once(
                        producer, chain=chain | {buffer.buffer_id}
                    )
                finally:
                    del recovering[buffer.buffer_id]
                    done.succeed()
                result.reexecuted_tasks += 1

        def safe_source_move(buffer: Buffer, dst: int, chain: frozenset = frozenset()):
            """Generator: materialize ``buffer`` on ``dst``.

            Retries with a fresh source if the source node crashes
            mid-transfer; a crash of ``dst`` propagates to the caller
            (the whole task attempt restarts elsewhere).
            """
            while True:
                yield from ensure_available(buffer, chain)
                locations = dm.locations(buffer) - dead
                if dst in locations:
                    return
                src = dm.latest(buffer)
                if src in dead or src not in locations:
                    src = HOST if HOST in locations else min(locations)
                if src == HOST:
                    op = events.submit(dst, buffer.buffer_id, buffer.data,
                                       buffer.nbytes)
                    watch = [dst]
                else:
                    op = events.exchange(src, dst, buffer.buffer_id,
                                         buffer.nbytes)
                    watch = [src, dst]
                try:
                    yield from guarded(watch, op)
                except _NodeCrashed as crash:
                    handle_node_death(crash.node)
                    if crash.node == dst:
                        raise  # the task itself must move
                    continue  # source died: pick another source
                dm.commit_move(Move(buffer, src, dst))
                return

        # -- task execution with failure racing ---------------------------
        def execute_once(task: Task, chain: frozenset = frozenset()):
            """Generator: run ``task`` to completion, retrying on crashes."""
            while True:
                node = target_node(task)
                attempts[task.task_id] = attempts.get(task.task_id, 0) + 1
                try:
                    if task.kind == TaskKind.CLASSICAL:
                        yield from run_classical(task)
                    elif task.kind == TaskKind.TARGET_ENTER_DATA:
                        yield from run_enter_data(task, node)
                    elif task.kind == TaskKind.TARGET_EXIT_DATA:
                        yield from run_exit_data(task)
                    else:
                        yield from run_target(task, node, chain)
                    return
                except _NodeCrashed:
                    dead_node = node
                    handle_node_death(dead_node)
                    continue  # retry on a survivor

        def run_classical(task: Task):
            head = cluster.head
            yield head.cpu.request()
            try:
                if task.cost:
                    yield sim.timeout(head.compute_time(task.cost))
                if task.fn is not None:
                    task.fn(*(d.buffer.data for d in task.deps))
            finally:
                head.cpu.release()
            record_writes(task, HOST)

        def run_enter_data(task: Task, node: int):
            if node == HOST or node in dead:
                node = HOST
            if node != HOST:
                for buf in task.buffers:
                    yield from safe_source_move(buf, node)
                for buf in task.buffers:
                    dm.commit_enter_data(buf, node)

        def run_exit_data(task: Task):
            for buf in task.buffers:
                yield from ensure_available(buf)
                locations = dm.locations(buf) - dead
                if HOST not in locations or dm.latest(buf) != HOST:
                    src = dm.latest(buf)
                    if src in dead or src not in locations:
                        src = min(locations)
                    if src != HOST:
                        payload = yield from events.retrieve(
                            src, buf.buffer_id, buf.nbytes
                        )
                        buf.data = payload
                        dm.commit_move(Move(buf, src, HOST))
                for stale_buf, holder in dm.commit_exit_data(buf):
                    if holder != HOST and holder not in dead:
                        yield from events.delete(holder, stale_buf.buffer_id)

        def run_target(task: Task, node: int, chain: frozenset = frozenset()):
            moves, allocs = dm.plan_for_task(task, node)
            for buf in allocs:
                yield from guarded(node, events.alloc(node, buf.buffer_id,
                                                      payload=buf.data))
                dm.commit_alloc(buf, node)
            for dep in task.deps:
                if task.dep_type_for(dep.buffer).reads and not dm.is_resident(
                    dep.buffer, node
                ):
                    yield from safe_source_move(dep.buffer, node, chain)
            yield from guarded(node, events.execute(node, task))
            record_writes(task, node)
            stale = dm.commit_task_done(task, node)
            for buf, holder in stale:
                if holder != HOST and holder not in dead:
                    yield from events.delete(holder, buf.buffer_id)

        def record_writes(task: Task, node: int) -> None:
            for buf in task.writes:
                writer_of[buf.buffer_id] = task

        def guarded(nodes, operation):
            """Generator: race ``operation`` against any of ``nodes`` dying.

            A crash mid-operation may strand the remote half of the
            event (e.g. an EXCHANGE destination waiting on a dead
            source); the origin-side process is interrupted and the
            crash is reported to the caller for retry.
            """
            if isinstance(nodes, int):
                nodes = [nodes]
            for node in nodes:
                if node in dead or events.node_failed(node):
                    raise _NodeCrashed(node)
            proc = sim.process(operation, name="ft-op")
            races = [proc] + [events.failure_event(n) for n in nodes]
            yield AnyOf(sim, races)
            if proc.triggered:
                if not proc.ok:
                    raise proc.value
                return proc.value
            if proc.is_alive:
                proc.interrupt("node failure")
            crashed = next(n for n in nodes if events.node_failed(n))
            raise _NodeCrashed(crashed)

        def handle_node_death(node: int) -> None:
            if node in dead:
                return
            dead.add(node)
            dm.on_node_failure(node)
            result.failures.append(node)

        def run_task(task: Task):
            yield slots.request()
            try:
                yield from execute_once(task)
            finally:
                slots.release()
            complete(task)

        # -- failure plumbing ---------------------------------------------
        def on_detect(dead_node: int, by: int) -> None:
            # The head learns through the ring; recovery state updates
            # immediately (in-flight guards race the failure event).
            handle_node_death(dead_node)

        ring.on_detect = on_detect
        injector = FailureInjector(events)

        def main():
            yield sim.timeout(cfg.startup_time)
            events.start()
            ring.start()
            injector.arm(list(failures))
            creation = len(remaining) * cfg.task_creation_overhead
            if creation:
                yield sim.timeout(creation)
            sched_cost = (
                graph.num_edges
                * max(cluster.num_nodes - 1, 1)
                * cfg.schedule_unit_cost
            )
            if sched_cost:
                yield sim.timeout(sched_cost)
            if pending == 0:
                all_done.succeed()
            else:
                for root in graph.roots():
                    sim.process(run_task(root), name=f"ft-task:{root.name}")
            yield all_done
            ring.stop()
            yield from events.shutdown()
            yield sim.timeout(cfg.shutdown_time)

        main_proc = sim.process(main(), name="ompc-ft-main")
        sim.run(until=main_proc)
        result.makespan = sim.now
        result.detections = list(ring.detections)
        result.task_attempts = dict(attempts)
        result.counters = dict(cluster.trace.counters)
        return result


class _NodeCrashed(Exception):
    """Internal control flow: the target node died mid-operation."""

    def __init__(self, node: int):
        super().__init__(f"node {node} crashed")
        self.node = node
