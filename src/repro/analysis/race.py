"""Dynamic race detection over actual buffer accesses.

Every *task instance* gets one vector-clock context.  A task's clock is
born as the join of its declared predecessors' finish clocks plus one
tick of its own component — so two tasks are happens-before ordered
exactly when the ``depend`` clauses (transitively) order them.  The
context token rides inside the EXECUTE event notification to the worker
that runs the kernel, which realizes the declared edge as a physical
MPI send/recv join; datagram/heartbeat traffic carries no token and so
never contributes a happens-before edge.

What gets recorded is the task's **actual** access footprint
(:attr:`~repro.omp.task.Task.accesses_or_deps` — kernel reads/writes,
host reads, and data movement), not its declared clauses.  A pair of
accesses to one buffer where at least one writes, from different
contexts, with neither clock ≤ the other, is a race the clauses failed
to declare.

Two extra diagnostics share the machinery:

* **stale-host-read** — a classical (host) task reads a buffer whose
  authoritative copy lives on a worker (the host image was invalidated
  by a device-side write and never retrieved via ``target exit data``);
* **use-before-map** — a target task reads a buffer that was never
  mapped (``target enter data``), in a program that otherwise maps its
  buffers explicitly.

Recording never advances the simulation clock: hooks are plain calls.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.analysis.findings import Finding, Severity
from repro.analysis.vc import VectorClock, ordered
from repro.omp.task import Task, TaskKind


@dataclass
class _Ctx:
    """One task instance's happens-before context."""

    ctx_id: int
    task: Task
    clock: VectorClock
    finished: bool = False


@dataclass(frozen=True)
class _Access:
    """One recorded buffer access (clock snapshot at task begin)."""

    ctx_id: int
    clock: VectorClock
    write: bool
    task_name: str
    site: str


class RaceDetector:
    """Vector-clock happens-before tracking plus access history."""

    def __init__(self):
        self._ctx_ids = itertools.count(1)
        self._ctx: dict[int, _Ctx] = {}
        self._graph = None
        #: buffer_id -> recorded accesses (deduped per (ctx, direction)).
        self._accesses: dict[int, list[_Access]] = {}
        self._seen: set[tuple[int, int, bool]] = set()
        self._buffer_names: dict[int, str] = {}
        self._mapped: set[int] = set()
        self._explicit_mapping = False
        self.findings: list[Finding] = []
        self._reported: set[tuple] = set()
        self.recorded_accesses = 0

    # -- lifecycle ---------------------------------------------------------
    def program_begin(self, program) -> None:
        self._graph = program.graph
        self._explicit_mapping = any(
            t.kind == TaskKind.TARGET_ENTER_DATA for t in program.graph.tasks()
        )

    def task_begin(self, task: Task) -> None:
        """Open the task's context: join predecessor finish clocks, tick.

        Idempotent — a post-failover relaunch of a task whose context is
        already open (or already finished) leaves it untouched, so
        recovery re-executions never manufacture fresh orderings.
        """
        if task.task_id in self._ctx:
            return
        clock = VectorClock()
        if self._graph is not None and task in self._graph:
            for pred in self._graph.predecessors(task):
                pctx = self._ctx.get(pred.task_id)
                if pctx is not None:
                    clock.join(pctx.clock)
        ctx = _Ctx(next(self._ctx_ids), task, clock)
        clock.tick(ctx.ctx_id)
        self._ctx[task.task_id] = ctx
        if task.kind.is_data_movement:
            # Enter/exit tasks execute no kernel; their footprint is
            # exactly their clauses (the transfer reads/writes them).
            for dep in task.accesses_or_deps:
                self.record(task, dep.buffer, dep.type.writes,
                            site=task.kind.value)

    def task_end(self, task: Task) -> None:
        ctx = self._ctx.get(task.task_id)
        if ctx is not None:
            ctx.finished = True

    def ctx_token(self, task: Task) -> int | None:
        """The token carried in the EXECUTE notification (None once the
        task has completed — recovery re-executions are system work)."""
        ctx = self._ctx.get(task.task_id)
        if ctx is None or ctx.finished:
            return None
        return ctx.ctx_id

    # -- access recording --------------------------------------------------
    def record(self, task: Task, buffer, write: bool, site: str) -> None:
        ctx = self._ctx.get(task.task_id)
        if ctx is None or ctx.finished:
            return  # unknown or completed context: system-attributed
        key = (buffer.buffer_id, ctx.ctx_id, write)
        if key in self._seen:
            return
        self._seen.add(key)
        self._buffer_names[buffer.buffer_id] = buffer.name
        self._accesses.setdefault(buffer.buffer_id, []).append(
            _Access(ctx.ctx_id, ctx.clock, write, task.name, site)
        )
        self.recorded_accesses += 1

    def kernel(self, task: Task, node: int, token: int | None) -> None:
        """A worker ran the task's kernel: record its actual footprint.

        ``token`` is the context id the EXECUTE notification carried;
        ``None`` (a recovery/speculative re-execution of a completed
        task, or analysis disabled at dispatch) records nothing.
        """
        ctx = self._ctx.get(task.task_id)
        if token is None or ctx is None or ctx.ctx_id != token:
            return
        for dep in task.accesses_or_deps:
            if dep.type.reads:
                self.record(task, dep.buffer, False, site=f"kernel@{node}")
            if dep.type.writes:
                self.record(task, dep.buffer, True, site=f"kernel@{node}")

    def host_task(self, task: Task, dm) -> None:
        """A classical task runs on the head against host memory."""
        ctx = self._ctx.get(task.task_id)
        if ctx is None or ctx.finished:
            return  # recovery re-execution of a completed task
        for dep in task.accesses_or_deps:
            if dep.type.reads:
                self.record(task, dep.buffer, False, site="host")
                holder = dm.host_is_stale(dep.buffer)
                if holder is not None:
                    self._report(
                        ("stale-host-read", task.task_id,
                         dep.buffer.buffer_id),
                        Finding(
                            rule="stale-host-read",
                            severity=Severity.ERROR,
                            message=(
                                f"classical task {task.name} reads "
                                f"{dep.buffer.name} from host memory, but "
                                f"the newest value lives on node {holder} "
                                "— retrieve it first (target exit data)"
                            ),
                            analyzer="race",
                            tasks=(task.name,),
                            buffer=dep.buffer.name,
                        ),
                    )
            if dep.type.writes:
                self.record(task, dep.buffer, True, site="host")

    def movement(self, task: Task, buffer) -> None:
        """Data movement on behalf of ``task`` logically reads the
        buffer's current value (copies never mutate it)."""
        self.record(task, buffer, False, site="move")

    # -- mapping diagnostics ----------------------------------------------
    def mapped(self, buffer) -> None:
        self._mapped.add(buffer.buffer_id)

    def check_mapped(self, task: Task, buffer) -> None:
        """A target task is about to read ``buffer``; was it ever mapped?

        Only active in programs that use ``target enter data`` at all —
        pure dependence-driven programs (Task Bench) legitimately rely
        on lazy first-use mapping.
        """
        if not self._explicit_mapping or buffer.buffer_id in self._mapped:
            return
        self._report(
            ("use-before-map", buffer.buffer_id),
            Finding(
                rule="use-before-map",
                severity=Severity.WARNING,
                message=(
                    f"task {task.name} reads {buffer.name}, which was "
                    "never mapped via target enter data"
                ),
                analyzer="race",
                tasks=(task.name,),
                buffer=buffer.name,
            ),
        )

    # -- race detection ----------------------------------------------------
    def _report(self, key: tuple, finding: Finding) -> None:
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(finding)

    def finalize(self) -> list[Finding]:
        """Scan the access history for conflicting unordered pairs."""
        for buffer_id, accesses in sorted(self._accesses.items()):
            name = self._buffer_names[buffer_id]
            for i, a in enumerate(accesses):
                for b in accesses[i + 1:]:
                    if a.ctx_id == b.ctx_id:
                        continue
                    if not (a.write or b.write):
                        continue
                    if ordered(a.clock, a.ctx_id, b.clock, b.ctx_id):
                        continue
                    first, second = sorted(
                        (a, b), key=lambda acc: (acc.task_name, acc.site)
                    )
                    kinds = (
                        "write/write" if a.write and b.write
                        else "read/write"
                    )
                    self._report(
                        ("missing-dep-race",
                         frozenset((a.ctx_id, b.ctx_id)), buffer_id),
                        Finding(
                            rule="missing-dep-race",
                            severity=Severity.ERROR,
                            message=(
                                f"{kinds} race on {name}: "
                                f"{first.task_name} ({first.site}) and "
                                f"{second.task_name} ({second.site}) are "
                                "unordered — a depend clause is missing"
                            ),
                            analyzer="race",
                            tasks=(first.task_name, second.task_name),
                            buffer=name,
                        ),
                    )
        return self.findings
