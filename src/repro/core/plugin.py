"""The OMPC cluster device plugin (§4.1).

"At this level ... one may encounter a plugin that uses the CUDA
library to manage GPUs, or the OMPC plugin that relies on MPI calls to
allow the program to run on a distributed environment."

The plugin exposes each *worker node* as one offloading device
(device ``d`` = cluster node ``d + 1``; node 0 is the head/host) and
implements every interface operation as an event-system interaction.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.machine import Cluster
from repro.core.config import OMPCConfig
from repro.core.device import DevicePlugin
from repro.core.events import EventSystem
from repro.mpi.comm import MpiWorld
from repro.omp.task import Task


class ClusterPlugin(DevicePlugin):
    """MPI-backed device plugin: one device per worker node."""

    def __init__(self, cluster: Cluster, config: OMPCConfig | None = None,
                 mpi: MpiWorld | None = None):
        if cluster.num_nodes < 2:
            raise ValueError("a cluster plugin needs at least one worker node")
        self.cluster = cluster
        self.config = config or OMPCConfig()
        self.mpi = mpi or MpiWorld(cluster)
        self.events = EventSystem(cluster, self.mpi, self.config)

    # -- device/node id mapping -----------------------------------------
    def number_of_devices(self) -> int:
        return self.cluster.num_nodes - 1

    def node_of(self, device: int) -> int:
        """Cluster node id backing a device id."""
        if not 0 <= device < self.number_of_devices():
            raise ValueError(f"device {device} out of range")
        return device + 1

    def device_of(self, node: int) -> int:
        """Device id of a worker node."""
        if not 1 <= node < self.cluster.num_nodes:
            raise ValueError(f"node {node} is not a worker node")
        return node - 1

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        self.events.start()

    def shutdown(self):
        yield from self.events.shutdown()

    # -- plugin interface --------------------------------------------------
    def data_alloc(self, device: int, buffer_id: int, nbytes: float = 0.0):
        yield from self.events.alloc(
            self.node_of(device), buffer_id, nbytes=nbytes
        )

    def data_delete(self, device: int, buffer_id: int):
        yield from self.events.delete(self.node_of(device), buffer_id)

    def data_submit(self, device: int, buffer_id: int, payload: Any, nbytes: float):
        yield from self.events.submit(self.node_of(device), buffer_id, payload, nbytes)

    def data_retrieve(self, device: int, buffer_id: int, nbytes: float):
        payload = yield from self.events.retrieve(
            self.node_of(device), buffer_id, nbytes
        )
        return payload

    def data_exchange(self, src_device: int, dst_device: int, buffer_id: int,
                      nbytes: float):
        yield from self.events.exchange(
            self.node_of(src_device), self.node_of(dst_device), buffer_id, nbytes
        )

    def run_target_region(self, device: int, task: Task):
        yield from self.events.execute(self.node_of(device), task)
