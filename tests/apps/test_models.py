"""Tests for the synthetic velocity models."""

import numpy as np
import pytest

from repro.apps.awave import VelocityModel, marmousi_like, sigsbee_like


class TestVelocityModel:
    def test_properties(self):
        vp = np.full((10, 20), 1500.0)
        m = VelocityModel("m", vp, dx=10.0)
        assert m.nz == 10 and m.nx == 20
        assert m.vmin == m.vmax == 1500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VelocityModel("m", np.ones(10), dx=10.0)
        with pytest.raises(ValueError):
            VelocityModel("m", np.ones((4, 4)), dx=0.0)
        with pytest.raises(ValueError):
            VelocityModel("m", np.zeros((4, 4)), dx=10.0)

    def test_smoothed_reduces_contrast(self):
        m = sigsbee_like(nx=80, nz=60)
        s = m.smoothed(8)
        assert s.vp.shape == m.vp.shape
        # Smoothing must shrink the max spatial gradient substantially.
        def max_grad(v):
            return max(
                np.abs(np.diff(v, axis=0)).max(),
                np.abs(np.diff(v, axis=1)).max(),
            )
        assert max_grad(s.vp) < 0.5 * max_grad(m.vp)

    def test_smoothed_zero_is_identity(self):
        m = sigsbee_like(nx=40, nz=30)
        np.testing.assert_array_equal(m.smoothed(0).vp, m.vp)


class TestSigsbeeLike:
    def test_has_salt_body(self):
        m = sigsbee_like(nx=120, nz=80)
        assert (m.vp == 4480.0).sum() > 0.02 * m.vp.size

    def test_water_layer_on_top(self):
        m = sigsbee_like(nx=120, nz=80)
        assert np.allclose(m.vp[0, :], 1492.0)

    def test_velocity_range_physical(self):
        m = sigsbee_like()
        assert 1400 < m.vmin < 1600
        assert m.vmax == 4480.0

    def test_deterministic_per_seed(self):
        a, b = sigsbee_like(seed=3), sigsbee_like(seed=3)
        np.testing.assert_array_equal(a.vp, b.vp)
        c = sigsbee_like(seed=4)
        assert not np.array_equal(a.vp, c.vp)


class TestMarmousiLike:
    def test_strong_lateral_variation(self):
        m = marmousi_like(nx=160, nz=100)
        # Marmousi's signature: velocity varies along x at fixed depth.
        mid = m.vp[m.nz // 2, :]
        assert mid.max() - mid.min() > 300.0

    def test_velocity_increases_with_depth_on_average(self):
        m = marmousi_like(nx=160, nz=100)
        shallow = m.vp[: m.nz // 4].mean()
        deep = m.vp[3 * m.nz // 4:].mean()
        assert deep > shallow + 500.0

    def test_layered_structure(self):
        m = marmousi_like(nx=160, nz=100)
        # Many distinct velocities (thin layers), not a smooth gradient.
        assert len(np.unique(m.vp)) < 40

    def test_deterministic_per_seed(self):
        a, b = marmousi_like(seed=1), marmousi_like(seed=1)
        np.testing.assert_array_equal(a.vp, b.vp)
