"""Tests for HEFT and the baseline schedulers."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.core.datamanager import HOST
from repro.core.scheduler import (
    HeftScheduler,
    MinLoadScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.core.scheduler.heft import shared_bytes
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_inout, depend_out


def chain_program(n_tasks=4, cost=1.0, nbytes=1000):
    prog = OmpProgram()
    a = prog.buffer(nbytes, name="A")
    prog.target_enter_data(a)
    for i in range(n_tasks):
        prog.target(depend=[depend_inout(a)], cost=cost, name=f"t{i}")
    prog.target_exit_data(a)
    return prog


def wide_program(width=8, cost=1.0, nbytes=1000):
    prog = OmpProgram()
    for i in range(width):
        b = prog.buffer(nbytes, name=f"b{i}")
        prog.target_enter_data(b)
        prog.target(depend=[depend_inout(b)], cost=cost, name=f"t{i}")
        prog.target_exit_data(b)
    return prog


def cluster(n=5, overrides=()):
    return Cluster(ClusterSpec(num_nodes=n, node_overrides=tuple(overrides)))


class TestSharedBytes:
    def test_counts_buffers_written_then_read(self):
        prog = OmpProgram()
        a = prog.buffer(100, name="a")
        b = prog.buffer(50, name="b")
        producer = prog.target(depend=[depend_out(a), depend_out(b)])
        consumer = prog.target(depend=[depend_in(a)])
        assert shared_bytes(producer, consumer) == 100

    def test_no_shared_data(self):
        prog = OmpProgram()
        a, b = prog.buffer(100), prog.buffer(50)
        t1 = prog.target(depend=[depend_out(a)])
        t2 = prog.target(depend=[depend_in(b)])
        assert shared_bytes(t1, t2) == 0


class TestHeft:
    def test_every_task_assigned(self):
        prog = chain_program()
        sched = HeftScheduler().schedule(prog.graph, cluster())
        assert set(sched.assignment) == {t.task_id for t in prog.graph.tasks()}

    def test_serial_chain_stays_on_one_node(self):
        # Moving an inout chain between nodes only adds communication;
        # HEFT must keep it on a single worker.
        prog = chain_program(n_tasks=6)
        sched = HeftScheduler().schedule(prog.graph, cluster())
        nodes = {
            sched.assignment[t.task_id]
            for t in prog.graph.tasks()
            if t.name.startswith("t")
        }
        assert len(nodes) == 1
        assert HOST not in nodes

    def test_independent_tasks_spread_across_workers(self):
        # With one execution slot per node (classic HEFT processors),
        # independent equal tasks must fan out over every worker.
        prog = wide_program(width=8)
        sched = HeftScheduler(exec_slots_per_node=1).schedule(
            prog.graph, cluster(n=5)
        )
        nodes = {
            sched.assignment[t.task_id]
            for t in prog.graph.tasks()
            if t.name.startswith("t")
        }
        assert nodes == {1, 2, 3, 4}

    def test_capacity_aware_packing_preserves_makespan(self):
        # With 4 slots per node, packing 8 equal tasks onto 2 nodes is
        # as good as spreading: all of them run concurrently.
        prog = wide_program(width=8, cost=1.0)
        sched = HeftScheduler(exec_slots_per_node=4).schedule(
            prog.graph, cluster(n=5)
        )
        assert sched.makespan_estimate == pytest.approx(1.0, rel=1e-3)
        # No node holds more concurrent work than it has slots.
        from collections import Counter

        per_node = Counter(
            sched.assignment[t.task_id]
            for t in prog.graph.tasks()
            if t.name.startswith("t")
        )
        assert all(count <= 4 for count in per_node.values())

    def test_affinity_keeps_chains_home(self):
        # Tasks tagged with the same affinity stay on one node when the
        # alternative saves nothing (stencil-like symmetric ties).
        prog = OmpProgram()
        bufs = [prog.buffer(1000, name=f"b{i}") for i in range(4)]
        for step in range(6):
            for i in range(4):
                deps = [depend_inout(bufs[i])]
                if i > 0:
                    deps.append(depend_in(bufs[i - 1]))
                prog.target(depend=deps, cost=1.0, name=f"t{step}.{i}", affinity=i)
        sched = HeftScheduler().schedule(prog.graph, cluster(n=5))
        by_affinity: dict[int, set[int]] = {}
        for t in prog.graph.tasks():
            by_affinity.setdefault(t.meta["affinity"], set()).add(
                sched.assignment[t.task_id]
            )
        # Every chain lives on exactly one node.
        assert all(len(nodes) == 1 for nodes in by_affinity.values())

    def test_invalid_scheduler_params(self):
        with pytest.raises(ValueError):
            HeftScheduler(exec_slots_per_node=0)
        with pytest.raises(ValueError):
            HeftScheduler(affinity_stickiness=-1.0)

    def test_no_phantom_input_comm_for_predecessor_free_tasks(self):
        # Regression: a task with no predecessors and no host staging
        # moves zero input bytes, yet the stickiness slack used to be
        # priced at mean_comm(0) == latency.  That phantom transfer let
        # the affinity home (a slow node here) absorb a genuinely
        # faster node's win.
        prog = OmpProgram()
        a = prog.buffer(1000, name="a")
        prog.target(depend=[depend_out(a)], cost=1e-6, name="t0", affinity=0)
        sched = HeftScheduler().schedule(
            prog.graph,
            cluster(n=3, overrides=((2, NodeSpec(speed=2.0)),)),
        )
        (task,) = (t for t in prog.graph.tasks() if t.name == "t0")
        # The fast worker must win: no input traffic justifies staying
        # on the affinity's pre-seeded home (node 1).
        assert sched.assignment[task.task_id] == 2

    def test_faster_node_preferred(self):
        prog = wide_program(width=1)
        fast = NodeSpec(cores=48, threads=96, speed=10.0)
        sched = HeftScheduler().schedule(
            prog.graph, cluster(n=4, overrides=[(3, fast)])
        )
        target_task = next(t for t in prog.graph.tasks() if t.name == "t0")
        assert sched.assignment[target_task.task_id] == 3

    def test_heterogeneous_load_balance(self):
        # A node twice as fast should get roughly twice the tasks.
        prog = wide_program(width=12)
        fast = NodeSpec(cores=48, threads=96, speed=2.0)
        sched = HeftScheduler().schedule(
            prog.graph, cluster(n=3, overrides=[(2, fast)])
        )
        counts = {1: 0, 2: 0}
        for t in prog.graph.tasks():
            if t.name.startswith("t"):
                counts[sched.assignment[t.task_id]] += 1
        assert counts[2] == 2 * counts[1]

    def test_enter_data_colocated_with_consumer(self):
        prog = chain_program()
        graph = prog.graph
        sched = HeftScheduler().schedule(graph, cluster())
        enter = next(t for t in graph.tasks() if t.kind.value == "enter_data")
        consumer = graph.successors(enter)[0]
        assert sched.assignment[enter.task_id] == sched.assignment[consumer.task_id]

    def test_exit_data_colocated_with_producer(self):
        prog = chain_program()
        graph = prog.graph
        sched = HeftScheduler().schedule(graph, cluster())
        exit_ = next(t for t in graph.tasks() if t.kind.value == "exit_data")
        producer = graph.predecessors(exit_)[-1]
        assert sched.assignment[exit_.task_id] == sched.assignment[producer.task_id]

    def test_classical_tasks_pinned_to_head(self):
        prog = OmpProgram()
        a = prog.buffer(10)
        prog.task(depend=[depend_out(a)], cost=1.0)
        prog.target(depend=[depend_inout(a)], cost=1.0)
        sched = HeftScheduler().schedule(prog.graph, cluster())
        classical = next(t for t in prog.graph.tasks() if t.kind.value == "classical")
        assert sched.assignment[classical.task_id] == HOST

    def test_single_node_cluster_degenerates_to_host(self):
        prog = chain_program()
        sched = HeftScheduler().schedule(prog.graph, cluster(n=1))
        assert all(n == HOST for n in sched.assignment.values())

    def test_planned_intervals_consistent(self):
        prog = chain_program(n_tasks=3, cost=1.0)
        sched = HeftScheduler().schedule(prog.graph, cluster())
        intervals = sorted(sched.planned.values())
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-12  # serial chain: no overlap
        assert sched.makespan_estimate >= 3.0

    def test_deterministic(self):
        prog = wide_program(width=10)
        s1 = HeftScheduler().schedule(prog.graph, cluster())
        s2 = HeftScheduler().schedule(prog.graph, cluster())
        assert s1.assignment == s2.assignment


class TestBaselines:
    def test_round_robin_cycles(self):
        prog = wide_program(width=6)
        sched = RoundRobinScheduler().schedule(prog.graph, cluster(n=4))
        targets = [t for t in prog.graph.tasks() if t.name.startswith("t")]
        nodes = [sched.assignment[t.task_id] for t in targets]
        assert nodes == [1, 2, 3, 1, 2, 3]

    def test_random_reproducible(self):
        prog = wide_program(width=10)
        s1 = RandomScheduler(seed=7).schedule(prog.graph, cluster())
        s2 = RandomScheduler(seed=7).schedule(prog.graph, cluster())
        assert s1.assignment == s2.assignment
        s3 = RandomScheduler(seed=8).schedule(prog.graph, cluster())
        assert s3.assignment != s1.assignment

    def test_random_only_uses_workers(self):
        prog = wide_program(width=20)
        sched = RandomScheduler(seed=1).schedule(prog.graph, cluster(n=4))
        targets = [t for t in prog.graph.tasks() if t.name.startswith("t")]
        assert all(sched.assignment[t.task_id] in {1, 2, 3} for t in targets)

    def test_min_load_balances_uneven_costs(self):
        prog = OmpProgram()
        costs = [4.0, 1.0, 1.0, 1.0, 1.0]
        for i, c in enumerate(costs):
            b = prog.buffer(10)
            prog.target(depend=[depend_inout(b)], cost=c, name=f"t{i}")
        sched = MinLoadScheduler().schedule(prog.graph, cluster(n=3))
        load = {1: 0.0, 2: 0.0}
        for t in prog.graph.tasks():
            load[sched.assignment[t.task_id]] += t.cost
        assert abs(load[1] - load[2]) <= 2.0

    def test_baselines_apply_pinning_rules(self):
        prog = chain_program()
        for scheduler in (RoundRobinScheduler(), RandomScheduler(), MinLoadScheduler()):
            sched = scheduler.schedule(prog.graph, cluster())
            graph = prog.graph
            enter = next(t for t in graph.tasks() if t.kind.value == "enter_data")
            consumer = graph.successors(enter)[0]
            assert (
                sched.assignment[enter.task_id]
                == sched.assignment[consumer.task_id]
            )
