"""Build an OpenMP program from a Task Bench spec.

This is what an OMPC port of Task Bench looks like.  Patterns with
cross-step reads must be double-buffered: with a single buffer per
point, OpenMP's sequential-program-order dependence semantics would
make a task read its *left neighbor's current-step* output instead of
the previous step's (the depend clause matches the last writer in
program order).  So each point owns two buffer generations; the task at
``(step, point)`` reads the parity-``(step-1)`` buffers of its
dependence points and writes its own parity-``step`` buffer.  The
clauses then induce exactly the RAW edges of the pattern plus the WAR
edges of generation recycling — the same graph the C port hands the
real OMPC runtime.

Patterns with no dependences at all (trivial) need no read buffers; the
port uses one output buffer per point, whose write-after-write chain
serializes each point's timesteps just like the sequential per-point
loop of the other runtimes' implementations.
"""

from __future__ import annotations

from repro.omp.api import OmpProgram
from repro.omp.task import Buffer, Dep, DepType
from repro.taskbench.graph import TaskBenchSpec
from repro.taskbench.patterns import average_in_degree


def build_omp_program(spec: TaskBenchSpec) -> OmpProgram:
    """The OmpProgram equivalent of one Task Bench run."""
    prog = OmpProgram(f"taskbench-{spec.pattern.value}")

    has_reads = average_in_degree(spec.pattern, spec.width, spec.steps) > 0
    generations = 2 if has_reads else 1
    buffers: list[list[Buffer]] = [
        [
            prog.buffer(spec.output_bytes, name=f"p{point}g{parity}")
            for parity in range(generations)
        ]
        for point in range(spec.width)
    ]

    for step, point in spec.tasks():
        deps = [
            Dep(buffers[q][(step - 1) % generations], DepType.IN)
            for q in spec.deps(step, point)
        ]
        deps.append(Dep(buffers[point][step % generations], DepType.OUT))
        prog.target(
            depend=deps,
            cost=spec.kernel.duration,
            name=f"t{step}p{point}",
            step=step,
            point=point,
            affinity=point,  # locality hint: keep each point's chain home
        )
    return prog
