"""Tests for SWIM gossip membership (repro.core.gossip)."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.core.config import OMPCConfig
from repro.core.events import EventSystem
from repro.core.faults import FaultTolerantRuntime, NodeFailure
from repro.core.gossip import (
    ALIVE,
    DEAD,
    SUSPECT,
    GossipMembership,
    _overrides,
)
from repro.mpi import MpiWorld

from tests.core.test_faults import FAST, shots_program


def make_membership(n=8, **kwargs):
    cluster = Cluster(ClusterSpec(num_nodes=n))
    mpi = MpiWorld(cluster)
    events = EventSystem(cluster, mpi, FAST)
    events.start()
    membership = GossipMembership(cluster, mpi, events, **kwargs)
    return cluster, events, membership


class TestOverridePrecedence:
    def test_dead_is_irrevocable(self):
        assert not _overrides(ALIVE, 99, DEAD, 0)
        assert not _overrides(SUSPECT, 99, DEAD, 0)
        assert not _overrides(DEAD, 0, DEAD, 5)

    def test_dead_beats_everything(self):
        assert _overrides(DEAD, 0, ALIVE, 99)
        assert _overrides(DEAD, 0, SUSPECT, 99)

    def test_higher_incarnation_wins(self):
        assert _overrides(ALIVE, 2, SUSPECT, 1)
        assert not _overrides(ALIVE, 1, SUSPECT, 1)
        assert not _overrides(ALIVE, 1, SUSPECT, 2)

    def test_suspect_shades_alive_at_equal_incarnation(self):
        assert _overrides(SUSPECT, 1, ALIVE, 1)
        assert not _overrides(ALIVE, 1, SUSPECT, 1)


class TestGossipMembership:
    def test_no_false_positives_without_failure(self):
        cluster, events, membership = make_membership()
        membership.start()

        def stopper():
            yield cluster.sim.timeout(0.05)
            membership.stop()

        cluster.sim.process(stopper())
        cluster.sim.run(until=0.2)
        assert membership.detections == []
        assert membership.false_positives == 0
        assert membership.rounds > 10

    def test_failure_detected_and_confirmed(self):
        cluster, events, membership = make_membership()
        seen = []
        membership.on_detect = lambda dead, by: seen.append((dead, by))
        membership.start()

        def fail_later():
            yield cluster.sim.timeout(0.02)
            events.fail_node(3)
            yield cluster.sim.timeout(0.06)
            membership.stop()

        cluster.sim.process(fail_later())
        cluster.sim.run(until=0.3)
        assert [d for d, _by, _t in membership.detections] == [3]
        assert seen and seen[0][0] == 3
        _dead, _by, at = membership.detections[0]
        # Bounded detection: a shuffled pass probes every peer within
        # n-1 periods; suspicion + head confirm add a few more.
        assert 0.02 < at < 0.02 + 12 * membership.interval

    def test_head_death_escalated(self):
        cluster, events, membership = make_membership()
        head_seen = []
        membership.on_head_detect = lambda d, by: head_seen.append((d, by))
        membership.start()

        def fail_later():
            yield cluster.sim.timeout(0.02)
            events.fail_node(0)
            yield cluster.sim.timeout(0.06)
            membership.stop()

        cluster.sim.process(fail_later())
        cluster.sim.run(until=0.3)
        assert head_seen and head_seen[0][0] == 0

    def test_refutation_counts_and_incarnation_bump(self):
        cluster, events, membership = make_membership()
        # A live node hearing itself suspected must refute with a
        # bumped incarnation, overriding the suspicion everywhere.
        membership._apply(2, 2, SUSPECT, 0)
        assert membership._views[2][2][0] == ALIVE
        assert membership._views[2][2][1] >= 1
        # The refutation overrides the stale suspicion in another view.
        membership._apply(1, 2, SUSPECT, 0)
        membership._apply(1, 2, *membership._views[2][2])
        assert membership._views[1][2][0] == ALIVE

    def test_rebase_moves_confirm_authority(self):
        cluster, events, membership = make_membership()
        assert membership.head == 0
        membership.rebase(5)
        assert membership.head == 5

    def test_validation(self):
        cluster = Cluster(ClusterSpec(num_nodes=4))
        mpi = MpiWorld(cluster)
        events = EventSystem(cluster, mpi, FAST)
        with pytest.raises(ValueError):
            GossipMembership(cluster, mpi, events, interval=0.0)
        with pytest.raises(ValueError):
            GossipMembership(cluster, mpi, events, ping_timeout=0.0)
        with pytest.raises(ValueError):
            GossipMembership(cluster, mpi, events, fanout=-1)
        with pytest.raises(ValueError):
            GossipMembership(cluster, mpi, events, piggyback=0)


class TestFaultTolerantRuntimeWithGossip:
    def test_worker_failover_under_gossip(self):
        cfg = OMPCConfig(gossip=True)
        runtime = FaultTolerantRuntime(ClusterSpec(num_nodes=4), cfg)
        prog, _model, _outputs = shots_program(num_shots=6, cost=0.2)
        result = runtime.run(
            prog, failures=[NodeFailure(time=0.1, node=2)],
        )
        assert result.makespan > 0
        assert result.failures == [2]
        assert [d for d, _by, _t in result.detections] == [2]

    def test_head_shards_rejected(self):
        with pytest.raises(ValueError, match="ShardedRuntime"):
            FaultTolerantRuntime(
                ClusterSpec(num_nodes=8),
                OMPCConfig(head_shards=2),
            )
