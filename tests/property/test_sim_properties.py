"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30))
@settings(deadline=None)
def test_timeouts_fire_in_order(delays):
    """Events fire in nondecreasing time order; clock never goes back."""
    sim = Simulator()
    fired = []
    for d in delays:
        sim.timeout(d).add_callback(lambda ev, d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert sim.now == max(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20
    )
)
@settings(deadline=None)
def test_process_sequential_delays_sum(delays):
    """A process sleeping through a list of delays ends at their sum."""
    sim = Simulator()

    def proc():
        for d in delays:
            yield sim.timeout(d)
        return sim.now

    p = sim.process(proc())
    total = sim.run(until=p)
    assert abs(total - sum(delays)) < 1e-6 * max(1.0, sum(delays))


@given(
    capacity=st.integers(min_value=1, max_value=8),
    holds=st.lists(
        st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=25
    ),
)
@settings(deadline=None)
def test_resource_never_exceeds_capacity(capacity, holds):
    """Concurrent holders never exceed capacity; all eventually run."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    active = [0]
    peak = [0]
    completed = [0]

    def user(duration):
        yield res.request()
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        try:
            yield sim.timeout(duration)
        finally:
            active[0] -= 1
            res.release()
        completed[0] += 1

    for d in holds:
        sim.process(user(d))
    sim.run(check_deadlock=True)
    assert peak[0] <= capacity
    assert completed[0] == len(holds)
    assert res.in_use == 0


@given(items=st.lists(st.integers(), min_size=1, max_size=50))
@settings(deadline=None)
def test_store_is_fifo(items):
    """Unfiltered gets return items in exactly the order they were put."""
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            received.append((yield store.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run(check_deadlock=True)
    assert received == items


@given(
    items=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30),
)
@settings(deadline=None)
def test_filtered_store_conserves_items(items):
    """Filtered consumption partitions the stream without loss."""
    sim = Simulator()
    store = Store(sim)
    evens, odds = [], []
    n_even = sum(1 for i in items if i % 2 == 0)
    n_odd = len(items) - n_even

    def producer():
        for item in items:
            yield store.put(item)

    def consumer(want_even, out, count):
        for _ in range(count):
            item = yield store.get(lambda it: (it % 2 == 0) == want_even)
            out.append(item)

    sim.process(producer())
    sim.process(consumer(True, evens, n_even))
    sim.process(consumer(False, odds, n_odd))
    sim.run(check_deadlock=True)
    assert sorted(evens + odds) == sorted(items)
    assert evens == [i for i in items if i % 2 == 0]
    assert odds == [i for i in items if i % 2 == 1]
