"""Property-based tests: DataManager coherency under mixed op streams.

Complements ``test_core_properties.py`` (pure target-task streams) by
interleaving enter-data, target-task, and exit-data operations — the
full §4.3 lifecycle — and checking the invariants *after every step*,
not only at the end of the stream.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datamanager import HOST, DataManager
from repro.omp import Buffer
from repro.omp.task import Dep, DepType, Task, TaskKind

NUM_BUFFERS = 4
buffer_ix = st.integers(min_value=0, max_value=NUM_BUFFERS - 1)
worker = st.integers(min_value=1, max_value=4)
dep_types = st.sampled_from([DepType.IN, DepType.OUT, DepType.INOUT])

enter_op = st.tuples(st.just("enter"), buffer_ix, worker)
exit_op = st.tuples(st.just("exit"), buffer_ix, st.just(0))
task_op = st.tuples(
    st.just("task"),
    st.lists(st.tuples(buffer_ix, dep_types), min_size=1, max_size=3),
    worker,
)

op_streams = st.lists(
    st.one_of(enter_op, task_op, exit_op), min_size=1, max_size=30
)


def apply_task(dm, buffers, task_id, clauses, node):
    deps = tuple(Dep(buffers[bi], dt) for bi, dt in clauses)
    task = Task(task_id=task_id, kind=TaskKind.TARGET, deps=deps)
    moves, allocs = dm.plan_for_task(task, node)
    for buf in allocs:
        dm.commit_alloc(buf, node)
    for move in moves:
        # Invariant: a move planned by plan_for_task always commits —
        # the planner must never name a source holding no valid copy.
        dm.commit_move(move)
    return task, dm.commit_task_done(task, node)


class TestDataManagerLifecycleInvariants:
    @given(op_streams)
    @settings(deadline=None, max_examples=100)
    def test_invariants_hold_after_every_operation(self, ops):
        buffers = [Buffer(100, name=f"b{i}") for i in range(NUM_BUFFERS)]
        dm = DataManager()
        for step, op in enumerate(ops):
            if op[0] == "enter":
                _kind, bi, node = op
                for move in dm.plan_enter_data(buffers[bi], node):
                    dm.commit_move(move)
                dm.commit_enter_data(buffers[bi], node)
            elif op[0] == "exit":
                _kind, bi, _ = op
                for move in dm.plan_exit_data(buffers[bi]):
                    dm.commit_move(move)
                removals = dm.commit_exit_data(buffers[bi])
                # Exit data leaves exactly the host copy.
                assert dm.locations(buffers[bi]) == {HOST}
                assert all(holder != HOST for _b, holder in removals)
            else:
                _kind, clauses, node = op
                task, stale = apply_task(dm, buffers, step, clauses, node)
                written = {b.buffer_id for b in task.writes}
                for dep in task.deps:
                    if dep.buffer.buffer_id in written:
                        # A writer invalidates every replica: exactly
                        # one copy remains, on the executing node.
                        assert dm.locations(dep.buffer) == {node}
                        assert dm.latest(dep.buffer) == node
                    else:
                        assert dm.is_resident(dep.buffer, node)
                # Stale removals never point at surviving copies.
                for buf, holder in stale:
                    assert holder not in dm.locations(buf)

            # Global invariants after *every* operation.
            for buf in buffers:
                locations = dm.locations(buf)
                assert locations, f"{buf.name} lost all copies at step {step}"
                assert dm.latest(buf) in locations

    @given(op_streams)
    @settings(deadline=None, max_examples=60)
    def test_replicas_only_grow_through_reads(self, ops):
        """A buffer is replicated iff reads spread it; any write
        collapses it back to a single copy."""
        buffers = [Buffer(100, name=f"b{i}") for i in range(NUM_BUFFERS)]
        dm = DataManager()
        for step, op in enumerate(ops):
            if op[0] == "enter":
                _kind, bi, node = op
                for move in dm.plan_enter_data(buffers[bi], node):
                    dm.commit_move(move)
                dm.commit_enter_data(buffers[bi], node)
            elif op[0] == "exit":
                _kind, bi, _ = op
                for move in dm.plan_exit_data(buffers[bi]):
                    dm.commit_move(move)
                dm.commit_exit_data(buffers[bi])
            else:
                _kind, clauses, node = op
                task, _stale = apply_task(dm, buffers, step, clauses, node)
                for buf in task.writes:
                    assert len(dm.locations(buf)) == 1
