"""Second-level offloading: cluster distribution + node-local GPUs.

§7 of the paper: "allowing OpenMP directives to be used for cluster
nodes distribution, and local accelerator programming using nested
target regions."  This example runs the same shot workload twice on a
GPU-equipped cluster — once on the workers' cores (48-way second-level
parallelism) and once as nested target regions on their accelerators —
and compares the timelines.

Run:  python examples/gpu_offloading.py
"""

import numpy as np

from repro.bench.gantt import render_gantt
from repro.cluster import ClusterSpec, NodeSpec
from repro.core import OMPCRuntime
from repro.omp import OmpProgram
from repro.omp.task import depend_in, depend_out

GPU_NODE = NodeSpec(
    cores=48,
    threads=96,
    accelerators=1,          # one GPU per worker
    accelerator_speed=200.0, # ~4x the 48-core node for these kernels
    pcie_bandwidth=16e9,
    pcie_latency=10e-6,
)


def build(use_gpu: bool, shots: int = 4):
    prog = OmpProgram("gpu-demo")
    model = np.linspace(1500.0, 4500.0, 4096)
    model_buf = prog.buffer(model.nbytes, data=model, name="model")
    prog.target_enter_data(model_buf)
    for i in range(shots):
        out = np.zeros_like(model)
        buf = prog.buffer(out.nbytes, data=out, name=f"img{i}")
        meta = {"device": "gpu"} if use_gpu else {"omp_threads": 48}
        prog.target(
            fn=lambda m, o: np.copyto(o, np.gradient(m)),
            depend=[depend_in(model_buf), depend_out(buf)],
            cost=12.0,  # 12 core-seconds of wave propagation per shot
            name=f"shot{i}",
            **meta,
        )
        prog.target_exit_data(buf)
    return prog


def main() -> None:
    spec = ClusterSpec(num_nodes=5, node=GPU_NODE)
    for label, use_gpu in (("CPU (48 threads/shot)", False),
                           ("GPU (nested target)", True)):
        prog = build(use_gpu)
        result = OMPCRuntime(spec).run(prog)
        print(f"{label}: makespan {result.makespan * 1e3:7.1f} ms, "
              f"gpu executions: "
              f"{result.counters.get('ompc.gpu_executions', 0):.0f}")
        print(render_gantt(result.task_intervals, result.schedule.assignment,
                           width=64))
        print()
    print("the nested-target version runs each 12s kernel in 60 ms on the")
    print("accelerator (plus PCIe staging) versus 250 ms across 48 cores.")


if __name__ == "__main__":
    main()
