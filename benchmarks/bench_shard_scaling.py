"""Shard scaling: control-plane makespan vs head-shard count.

The §7 scalability knee is a *control-plane* artifact: one head node
dispatches every task through one ``head_threads`` slot pool, so once
the cluster outgrows the head's dispatch bandwidth, adding nodes adds
makespan.  The sharded control plane (``repro.core.shard``) splits
task-graph ownership across K manager nodes; this sweep prices that
split on a Task Bench stencil sized to be control-plane-bound (short
0.5 ms kernels, width 2n), over 64 → 1024 nodes x 1/2/4/8 shards.

``main`` emits ``BENCH_shard.json`` (schema ``repro-shard-scale/1``):
per-cell simulated makespan, deterministic event counts, host wall
time, and the shard counters (forwards/leases/cross-edges), plus one
gossip-enabled cell whose round counter CI pins exactly.  The headline
``acceptance`` block records the >= 1.5x improvement of 4 shards over
1 at >= 512 nodes that the sharding work promises.

Usage::

    python benchmarks/bench_shard_scaling.py              # table
    python benchmarks/bench_shard_scaling.py --json       # JSON to stdout
    python benchmarks/bench_shard_scaling.py --quick --out BENCH_shard.json
"""

from __future__ import annotations

import json
import platform
import time

from repro.bench.report import format_table
from repro.cluster.machine import ClusterSpec
from repro.core import OMPCConfig, OMPCRuntime
from repro.taskbench import KernelSpec, Pattern, TaskBenchSpec
from repro.taskbench.bench import build_omp_program

SCHEMA = "repro-shard-scale/1"
BANDWIDTH = 100e9 / 8.0

#: Short kernels keep every cell control-plane-bound: at 0.5 ms x 3
#: steps the head's dispatch path, not the compute, sets the makespan.
KERNEL_SECONDS = 0.5e-3
STEPS = 3

NODE_SWEEP = (64, 128, 256, 512, 1024)
SHARD_SWEEP = (1, 2, 4, 8)
QUICK_NODES = (64,)
QUICK_SHARDS = (1, 4)

#: The acceptance cell: 4 shards must beat 1 by >= 1.5x here.
ACCEPT_NODES = 512
ACCEPT_SHARDS = 4
ACCEPT_SPEEDUP = 1.5


def _spec(nodes: int) -> TaskBenchSpec:
    return TaskBenchSpec.with_ccr(
        2 * nodes, STEPS, Pattern.STENCIL_1D,
        KernelSpec.from_duration(KERNEL_SECONDS), 1.0, BANDWIDTH,
    )


def run_cell(nodes: int, shards: int, gossip: bool = False) -> dict:
    """One sweep cell; returns the JSON-ready record."""
    prog = build_omp_program(_spec(nodes))
    cfg = OMPCConfig(head_shards=shards, gossip=gossip)
    runtime = OMPCRuntime(ClusterSpec(num_nodes=nodes), cfg)
    start = time.perf_counter()
    res = runtime.run(prog)
    wall = time.perf_counter() - start
    events = runtime.last_cluster.sim._seq
    name = f"shard_stencil_1d_n{nodes}_k{shards}"
    if gossip:
        name += "_gossip"
    record = {
        "name": name,
        "nodes": nodes,
        "shards": shards,
        "gossip": gossip,
        "makespan_s": round(res.makespan, 9),
        "events": events,
        "wall_s": round(wall, 6),
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
    }
    for key in ("shard.forwards", "shard.leases", "shard.cross_edges",
                "shard.dispatches"):
        if key in res.counters:
            record[key] = int(res.counters[key])
    rounds = getattr(res, "gossip_rounds", 0)
    if gossip:
        record["gossip_rounds"] = rounds
    return record


def run_sweep(quick: bool = False) -> dict:
    nodes_sweep = QUICK_NODES if quick else NODE_SWEEP
    shard_sweep = QUICK_SHARDS if quick else SHARD_SWEEP
    cells = [
        run_cell(n, k) for n in nodes_sweep for k in shard_sweep
    ]
    # One gossip cell: deterministic, CI pins its exact counters.
    cells.append(run_cell(64, 4, gossip=True))

    by = {(c["nodes"], c["shards"], c["gossip"]): c for c in cells}
    accept_nodes = ACCEPT_NODES if not quick else max(nodes_sweep)
    base = by.get((accept_nodes, 1, False))
    best = by.get((accept_nodes, ACCEPT_SHARDS, False))
    acceptance = None
    if base is not None and best is not None:
        acceptance = {
            "nodes": accept_nodes,
            "shards": ACCEPT_SHARDS,
            "makespan_speedup": round(
                base["makespan_s"] / best["makespan_s"], 3
            ),
            "events_per_sec_ratio": round(
                best["events_per_sec"] / base["events_per_sec"], 3
            ),
            "required": ACCEPT_SPEEDUP,
        }
    return {
        "schema": SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "kernel_seconds": KERNEL_SECONDS,
        "steps": STEPS,
        "cells": cells,
        "acceptance": acceptance,
    }


class TestShardScaling:
    """The headline claim at a CI-friendly scale."""

    def test_bench_four_shards_beat_one_at_256_nodes(self, benchmark):
        def sweep():
            return run_cell(256, 1), run_cell(256, 4)

        single, sharded = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert sharded["makespan_s"] * ACCEPT_SPEEDUP \
            < single["makespan_s"], (
                "4 shards must cut the control-plane-bound makespan by "
                ">= 1.5x over the single head"
            )

    def test_bench_gossip_cell_is_deterministic(self, benchmark):
        def twice():
            return run_cell(64, 4, gossip=True), \
                run_cell(64, 4, gossip=True)

        first, second = benchmark.pedantic(twice, rounds=1, iterations=1)
        for key in ("makespan_s", "events", "gossip_rounds",
                    "shard.forwards"):
            assert first[key] == second[key]


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="64-node cells only (CI smoke)")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON document to stdout")
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON document to this path")
    args = parser.parse_args(argv)

    doc = run_sweep(quick=args.quick)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        rows = []
        for cell in doc["cells"]:
            rows.append([
                cell["nodes"],
                cell["shards"],
                "on" if cell["gossip"] else "off",
                f"{cell['makespan_s'] * 1e3:.2f}",
                cell["events"],
                f"{cell['wall_s']:.2f}",
                cell.get("shard.forwards", 0),
            ])
        print(format_table(
            ["nodes", "shards", "gossip", "makespan (ms)", "events",
             "wall (s)", "forwards"],
            rows,
            title="Abl. S — sharded control plane on a Task Bench "
                  f"stencil ({KERNEL_SECONDS * 1e3:.1f} ms kernels)",
        ))
        if doc["acceptance"]:
            acc = doc["acceptance"]
            print(
                f"acceptance @ n={acc['nodes']}: "
                f"{acc['shards']} shards = "
                f"{acc['makespan_speedup']:.2f}x makespan speedup "
                f"(required >= {acc['required']}x)"
            )


if __name__ == "__main__":
    main()
