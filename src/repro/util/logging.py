"""Minimal structured logging for simulation runs.

A :class:`SimLogger` prefixes records with simulated time so traces read
like a cluster log.  Logging is off by default (benchmark runs generate
millions of events); enable it per-component for debugging.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.sim.core import Simulator


class SimLogger:
    """Time-stamped logger bound to a simulator clock."""

    def __init__(
        self,
        sim: Simulator,
        component: str,
        enabled: bool = False,
        stream: TextIO | None = None,
    ):
        self.sim = sim
        self.component = component
        self.enabled = enabled
        self.stream = stream or sys.stderr

    def log(self, message: str) -> None:
        if self.enabled:
            print(f"[{self.sim.now * 1e3:12.4f}ms] {self.component}: {message}",
                  file=self.stream)

    def child(self, suffix: str) -> "SimLogger":
        return SimLogger(
            self.sim, f"{self.component}.{suffix}", self.enabled, self.stream
        )
