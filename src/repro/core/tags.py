"""Per-event MPI tag allocation (§4.2).

"Each event receives a unique MPI tag local to the origin process which
is shared with the destination process in the new event notification.
This way, all MPI communications between the processes use the same
tag, which, alongside the origin and destination ranks, ensures that
only a given event will receive its own messages."
"""

from __future__ import annotations

#: Tag carried by new-event notifications on the control communicator.
NOTIFY_TAG = 0

#: First tag handed out for event payload traffic (0 is the notify tag).
FIRST_EVENT_TAG = 1


class TagAllocator:
    """Monotone tag source, one per origin process."""

    def __init__(self, first: int = FIRST_EVENT_TAG):
        if first < FIRST_EVENT_TAG:
            raise ValueError(f"first tag must be >= {FIRST_EVENT_TAG}")
        self._next = first

    def allocate(self) -> int:
        tag = self._next
        self._next += 1
        return tag

    @property
    def allocated(self) -> int:
        """How many tags have been handed out."""
        return self._next - FIRST_EVENT_TAG
