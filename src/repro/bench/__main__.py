"""Command-line front end for OMPC Bench.

Usage::

    python -m repro.bench experiment.yaml [more.yaml ...]
    python -m repro.bench --demo
    python -m repro.bench trace <scenario> --out trace.json
    python -m repro.bench jobs --policy all --quick
    python -m repro.bench jobs --overload --load 1 3 10
    python -m repro.bench check <scenario>
    python -m repro.bench perf --out BENCH_jobs.json

Each YAML file describes one experiment (see
:class:`repro.bench.config.ExperimentConfig`); the launcher runs the
full parameter grid and prints one series table per (pattern, ccr),
exactly like the paper's figures.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.config import ExperimentConfig
from repro.bench.launcher import RUNTIME_FACTORIES, Launcher
from repro.bench.report import format_series

DEMO_CONFIG = """\
name: demo
runtimes: [ompc, charmpp, starpu, mpi]
patterns: [stencil_1d, tree]
nodes: [2, 4, 8]
width: 2n
steps: 8
iterations: 10000000   # 50 ms tasks
ccrs: [1.0]
"""


def report(launcher: Launcher, config: ExperimentConfig) -> str:
    chunks = []
    for pattern in config.patterns:
        for ccr in config.ccrs:
            series: dict[str, list[float]] = {}
            for runtime_name in config.runtimes:
                display = RUNTIME_FACTORIES[runtime_name]().name
                records = sorted(
                    launcher.select(
                        experiment=config.name,
                        runtime=display,
                        pattern=pattern,
                        ccr=ccr,
                    ),
                    key=lambda r: r.nodes,
                )
                if records:
                    series[display] = [r.summary.mean for r in records]
            chunks.append(
                format_series(
                    "nodes",
                    list(config.nodes),
                    series,
                    title=f"{config.name} — {pattern} (ccr={ccr})",
                )
            )
    return "\n\n".join(chunks)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        from repro.bench.tracecmd import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "jobs":
        from repro.bench.jobscmd import main as jobs_main

        return jobs_main(argv[1:])
    if argv and argv[0] == "check":
        from repro.bench.checkcmd import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "perf":
        from repro.bench.perfcmd import main as perf_main

        return perf_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="OMPC Bench: run Task Bench experiment grids on the "
        "simulated cluster.",
    )
    parser.add_argument("configs", nargs="*", type=Path,
                        help="YAML experiment files")
    parser.add_argument("--demo", action="store_true",
                        help="run a built-in demonstration experiment")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    args = parser.parse_args(argv)

    texts: list[tuple[str, str]] = []
    if args.demo:
        texts.append(("<demo>", DEMO_CONFIG))
    for path in args.configs:
        texts.append((str(path), path.read_text()))
    if not texts:
        parser.print_help()
        return 2

    progress = None if args.quiet else lambda msg: print(f"  .. {msg}")
    for origin, text in texts:
        config = ExperimentConfig.from_yaml(text)
        print(f"== {origin}: experiment {config.name!r} ==")
        launcher = Launcher(progress=progress)
        launcher.run(config)
        print()
        print(report(launcher, config))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
