"""2-D acoustic finite-difference wave propagation.

Solves the constant-density acoustic wave equation

    ∂²p/∂t² = v² ∇²p + s(t) δ(x − xs)

with a 2nd-order time / 4th-order space explicit scheme on a regular
grid, plus a sponge absorbing layer on the sides and bottom (free
surface on top).  Fully vectorized NumPy — the hot loop is three array
expressions per timestep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.awave.models import VelocityModel

#: 4th-order centered second-derivative stencil coefficients.
_C0, _C1, _C2 = -5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0

#: CFL stability factor for 2nd-order time / 4th-order space in 2-D.
CFL_FACTOR = 0.5


def ricker_wavelet(f0: float, dt: float, nt: int, t0: float | None = None) -> np.ndarray:
    """A Ricker (Mexican-hat) source wavelet with peak frequency ``f0``."""
    if f0 <= 0 or dt <= 0 or nt < 1:
        raise ValueError("f0, dt must be > 0 and nt >= 1")
    if t0 is None:
        t0 = 1.5 / f0  # delay so the wavelet starts near zero
    t = np.arange(nt) * dt - t0
    arg = (np.pi * f0 * t) ** 2
    return (1.0 - 2.0 * arg) * np.exp(-arg)


def stable_dt(model: VelocityModel) -> float:
    """Largest stable timestep for the scheme on this model."""
    return CFL_FACTOR * model.dx / model.vmax


@dataclass
class ShotRecord:
    """Receiver data of one shot: (nt, n_receivers) pressure samples."""

    data: np.ndarray
    receiver_ix: np.ndarray  # x-indices of receivers at the surface
    dt: float


class AcousticSolver2D:
    """Explicit FD propagator bound to one velocity model."""

    def __init__(self, model: VelocityModel, dt: float | None = None,
                 sponge_cells: int = 20, sponge_strength: float = 0.012):
        self.model = model
        self.dt = dt if dt is not None else stable_dt(model)
        if self.dt <= 0:
            raise ValueError("dt must be > 0")
        if self.dt > stable_dt(model) * (1.0 + 1e-9):
            raise ValueError(
                f"dt={self.dt:.2e} violates CFL limit {stable_dt(model):.2e}"
            )
        if sponge_cells < 0:
            raise ValueError("sponge_cells must be >= 0")
        self._v2dt2 = (model.vp * self.dt) ** 2 / model.dx**2
        self._taper = self._build_taper(sponge_cells, sponge_strength)

    def _build_taper(self, cells: int, strength: float) -> np.ndarray:
        """Exponential sponge on left/right/bottom edges (free top)."""
        nz, nx = self.model.vp.shape
        taper = np.ones((nz, nx))
        if cells == 0:
            return taper
        ramp = np.exp(-((strength * (cells - np.arange(cells))) ** 2))
        taper[:, :cells] *= ramp[None, :]
        taper[:, nx - cells:] *= ramp[::-1][None, :]
        taper[nz - cells:, :] *= ramp[::-1][:, None]
        return taper

    def _laplacian(self, p: np.ndarray) -> np.ndarray:
        """2-D Laplacian: 4th-order interior, 2nd-order beside edges.

        The outermost ring stays zero (Dirichlet p = 0), which models a
        pressure-free surface at the top; the sponge taper absorbs the
        other sides.  Grid spacing is folded into ``_v2dt2``.
        """
        lap = np.zeros_like(p)
        # z-direction: 2nd-order one cell in, 4th-order further inside.
        lap[1:-1, :] = p[:-2, :] - 2.0 * p[1:-1, :] + p[2:, :]
        lap[2:-2, :] = (
            _C0 * p[2:-2, :]
            + _C1 * (p[1:-3, :] + p[3:-1, :])
            + _C2 * (p[:-4, :] + p[4:, :])
        )
        # x-direction, accumulated on top of the z terms.
        lap[:, 1:-1] += p[:, :-2] - 2.0 * p[:, 1:-1] + p[:, 2:]
        lap[:, 2:-2] += (
            (_C0 + 2.0) * p[:, 2:-2]
            + (_C1 - 1.0) * (p[:, 1:-3] + p[:, 3:-1])
            + _C2 * (p[:, :-4] + p[:, 4:])
        )
        return lap

    def propagate(
        self,
        source_iz: int,
        source_ix: int,
        wavelet: np.ndarray,
        receiver_ix: np.ndarray | None = None,
        receiver_iz: int = 1,
        snapshot_every: int = 0,
    ) -> tuple[ShotRecord | None, list[np.ndarray]]:
        """Run ``len(wavelet)`` timesteps injecting ``wavelet`` at the source.

        Returns the shot record (if receivers given) and the list of
        snapshots (every ``snapshot_every`` steps, if nonzero).
        """
        nz, nx = self.model.vp.shape
        if not (0 <= source_iz < nz and 0 <= source_ix < nx):
            raise ValueError("source position outside the grid")
        prev = np.zeros((nz, nx))
        curr = np.zeros((nz, nx))
        snapshots: list[np.ndarray] = []
        record = None
        if receiver_ix is not None:
            record = np.zeros((len(wavelet), len(receiver_ix)))

        for it, amp in enumerate(wavelet):
            nxt = 2.0 * curr - prev + self._v2dt2 * self._laplacian(curr)
            nxt[source_iz, source_ix] += amp * self.dt**2
            nxt *= self._taper
            prev, curr = curr, nxt
            if record is not None:
                record[it] = curr[receiver_iz, receiver_ix]
            if snapshot_every and (it + 1) % snapshot_every == 0:
                snapshots.append(curr.copy())

        shot = (
            ShotRecord(record, np.asarray(receiver_ix), self.dt)
            if record is not None
            else None
        )
        return shot, snapshots

    def propagate_adjoint(
        self,
        record: ShotRecord,
        receiver_iz: int = 1,
        snapshot_every: int = 0,
    ) -> list[np.ndarray]:
        """Back-propagate receiver data (time-reversed injection).

        Snapshots are taken on the same stride as the forward pass and
        returned in *forward* time order so they align with forward
        snapshots for the imaging condition.
        """
        nz, nx = self.model.vp.shape
        nt = record.data.shape[0]
        prev = np.zeros((nz, nx))
        curr = np.zeros((nz, nx))
        snapshots: list[np.ndarray] = []
        for it in range(nt - 1, -1, -1):
            nxt = 2.0 * curr - prev + self._v2dt2 * self._laplacian(curr)
            nxt[receiver_iz, record.receiver_ix] += record.data[it] * self.dt**2
            nxt *= self._taper
            prev, curr = curr, nxt
            # Same stride/phase as the forward pass so snapshot i of both
            # passes refers to the same physical time.
            if snapshot_every and (it + 1) % snapshot_every == 0:
                snapshots.append(curr.copy())
        snapshots.reverse()
        return snapshots
