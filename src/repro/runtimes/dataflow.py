"""Shared dataflow execution engine for the StarPU- and Charm++-like
runtimes.

Both runtimes execute Task Bench as a distributed dataflow: each grid
point advances through its timesteps independently, firing as soon as
its inputs are available (no per-step node barrier, unlike the BSP MPI
implementation).  Points are block-partitioned; a per-node receiver
demultiplexes incoming halo messages to availability events that the
point chains wait on.

What differs between the two runtimes is pure cost structure
(:mod:`repro.runtimes.calibration`): per-task runtime overhead, per-
message software overhead, and whether inter-node messages are
zero-copy or pass through pack/unpack copies on each side.
"""

from __future__ import annotations

from repro.cluster.machine import Cluster, ClusterSpec
from repro.mpi.comm import MpiWorld
from repro.runtimes.base import TaskBenchRuntime, TBRunResult, block_owner, points_of
from repro.runtimes.calibration import RuntimeCosts
from repro.sim.core import Event
from repro.sim.primitives import AllOf
from repro.taskbench.graph import TaskBenchSpec
from repro.taskbench.patterns import dependents


class DataflowRuntime(TaskBenchRuntime):
    """Point-chain dataflow execution with pluggable cost structure."""

    name = "dataflow"

    def __init__(self, costs: RuntimeCosts):
        self.costs = costs

    def run(self, spec: TaskBenchSpec, cluster_spec: ClusterSpec) -> TBRunResult:
        cluster = Cluster(cluster_spec)
        sim = cluster.sim
        mpi = MpiWorld(cluster, overhead=self.costs.per_message_overhead)
        n = cluster.num_nodes
        width = spec.width
        costs = self.costs

        # Per-node availability events for produced outputs:
        # avail[node][(step, point)] fires when that output is usable
        # on `node` (locally produced, or received and unpacked).
        avail: list[dict[tuple[int, int], Event]] = [{} for _ in range(n)]

        def get_avail(node_id: int, key: tuple[int, int]) -> Event:
            ev = avail[node_id].get(key)
            if ev is None:
                ev = sim.event(f"avail{node_id}:{key}")
                avail[node_id][key] = ev
            return ev

        def expected_messages(node_id: int) -> int:
            mine = points_of(node_id, width, n)
            count = 0
            for step in range(1, spec.steps):
                remote = {
                    q
                    for p in mine
                    for q in spec.deps(step, p)
                    if block_owner(q, width, n) != node_id
                }
                count += len(remote)
            return count

        def receiver(node_id: int):
            """The node's communication endpoint: demux halo messages."""
            rank = mpi.world.rank(node_id)
            remaining = expected_messages(node_id)
            while remaining > 0:
                msg = yield from rank.recv()
                remaining -= 1
                # Unpack copy (Charm++'s PUP): charged on the receive path.
                unpack = costs.copy_time(spec.output_bytes)
                if unpack:
                    yield sim.timeout(unpack)
                get_avail(node_id, msg.payload).succeed()

        def chain(node_id: int, point: int):
            """One grid point advancing through all timesteps."""
            rank = mpi.world.rank(node_id)
            node = cluster.node(node_id)
            for step in range(spec.steps):
                # Runtime management: submission/scheduling/handles.
                if costs.per_task_overhead:
                    yield sim.timeout(costs.per_task_overhead)
                deps = spec.deps(step, point)
                if deps:
                    waits = [get_avail(node_id, (step - 1, q)) for q in deps]
                    yield AllOf(sim, waits)
                yield node.cpu.request()
                try:
                    yield sim.timeout(node.compute_time(spec.kernel.duration))
                finally:
                    node.cpu.release()

                key = (step, point)
                local_ev = get_avail(node_id, key)
                if not local_ev.triggered:
                    local_ev.succeed()
                if step + 1 >= spec.steps:
                    continue
                consumer_ranks = sorted(
                    {
                        block_owner(c, width, n)
                        for c in dependents(spec.pattern, width, step, point)
                    }
                    - {node_id}
                )
                for dst in consumer_ranks:
                    # Pack copy occupies the producing chare before send.
                    pack = costs.copy_time(spec.output_bytes)
                    if pack:
                        yield sim.timeout(pack)
                    rank.isend(dst, key, spec.output_bytes, tag=1)

        for node_id in range(n):
            if expected_messages(node_id):
                sim.process(receiver(node_id), name=f"{self.name}-rx{node_id}")
            for point in points_of(node_id, width, n):
                sim.process(
                    chain(node_id, point), name=f"{self.name}-p{point}"
                )
        sim.run(check_deadlock=True)
        return TBRunResult(
            runtime=self.name,
            makespan=sim.now,
            network_bytes=cluster.network.total_bytes,
            network_messages=cluster.network.total_messages,
        )
