"""Tests for tasks, buffers, and dependence clause objects."""

import pytest

from repro.omp import (
    Buffer,
    Dep,
    DepType,
    Task,
    TaskKind,
    depend_in,
    depend_inout,
    depend_out,
)


class TestDepType:
    def test_reads_writes_matrix(self):
        assert DepType.IN.reads and not DepType.IN.writes
        assert DepType.OUT.writes and not DepType.OUT.reads
        assert DepType.INOUT.reads and DepType.INOUT.writes


class TestBuffer:
    def test_unique_ids(self):
        a, b = Buffer(10), Buffer(10)
        assert a.buffer_id != b.buffer_id

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Buffer(-1)

    def test_payload_carried_by_reference(self):
        payload = [1, 2, 3]
        buf = Buffer(24, data=payload)
        assert buf.data is payload

    def test_default_name(self):
        buf = Buffer(1)
        assert buf.name == f"buf{buf.buffer_id}"


class TestDepHelpers:
    def test_helpers_build_expected_types(self):
        buf = Buffer(8)
        assert depend_in(buf) == Dep(buf, DepType.IN)
        assert depend_out(buf) == Dep(buf, DepType.OUT)
        assert depend_inout(buf) == Dep(buf, DepType.INOUT)


class TestTask:
    def test_reads_writes_views(self):
        a, b, c = Buffer(1), Buffer(1), Buffer(1)
        task = Task(
            task_id=0,
            kind=TaskKind.TARGET,
            deps=(depend_in(a), depend_out(b), depend_inout(c)),
        )
        assert task.reads == (a, c)
        assert task.writes == (b, c)
        assert set(task.touched) == {a, b, c}

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Task(task_id=0, kind=TaskKind.TARGET, cost=-1.0)

    def test_data_movement_cannot_carry_code(self):
        buf = Buffer(1)
        with pytest.raises(ValueError):
            Task(
                task_id=0,
                kind=TaskKind.TARGET_ENTER_DATA,
                fn=lambda: None,
                buffers=(buf,),
            )

    def test_data_movement_requires_buffers(self):
        with pytest.raises(ValueError):
            Task(task_id=0, kind=TaskKind.TARGET_EXIT_DATA)

    def test_dep_type_for_strongest_wins(self):
        buf = Buffer(1)
        task = Task(
            task_id=0,
            kind=TaskKind.TARGET,
            deps=(depend_in(buf), depend_out(buf)),
        )
        assert task.dep_type_for(buf) == DepType.INOUT

    def test_dep_type_for_absent_buffer(self):
        task = Task(task_id=0, kind=TaskKind.TARGET)
        assert task.dep_type_for(Buffer(1)) is None

    def test_kind_predicates(self):
        assert TaskKind.TARGET_ENTER_DATA.is_data_movement
        assert TaskKind.TARGET_EXIT_DATA.is_data_movement
        assert not TaskKind.TARGET.is_data_movement
        assert not TaskKind.CLASSICAL.is_data_movement
