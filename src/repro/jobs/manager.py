"""The multi-tenant job manager: one cluster, many OMPC applications.

The :class:`JobManager` is the workload-manager layer the paper's
single-application runtime lacks: it owns one simulated
:class:`~repro.cluster.machine.Cluster` (physical node 0 is the login/
manager node), admits a stream of :class:`~repro.jobs.job.JobSpec`
submissions through a pluggable :mod:`policy <repro.jobs.policies>`,
carves space-shared partitions out of the worker pool, and runs each
job on its own isolated runtime instance — private head node (the
partition's virtual node 0), private MPI world (communicators and tag
space), private device-memory tables and trace recorder — via
:class:`~repro.cluster.partition.ClusterView`.

Fault interaction: a job submitted with injected ``failures`` (or
``fault_tolerant=True``) runs on the
:class:`~repro.core.faults.FaultTolerantRuntime`, so a partition losing
a node is first *resumed in place* by the existing checkpoint/failover
machinery; if recovery is impossible (``RecoveryError``) the dead nodes
are retired from the pool and the job is requeued on fresh nodes, up to
``max_attempts``.  Either way the cluster keeps serving every other
tenant.

All scheduling decisions happen instantaneously at queue-change
instants (arrival, completion, requeue) and iterate deterministic data
structures, so a seeded workload replays to an identical schedule.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.cluster.machine import Cluster
from repro.cluster.partition import ClusterView, NodePool
from repro.core.config import OMPCConfig
from repro.core.faults import (
    ClusterExhausted,
    FaultTolerantRuntime,
    RecoveryError,
)
from repro.core.runtime import OMPCRuntime
from repro.jobs.job import Job, JobSpec, JobState
from repro.jobs.policies import AdmissionPolicy, make_policy
from repro.jobs.telemetry import JobsReport, build_report
from repro.obs.observer import Observer
from repro.sim.errors import Interrupt, SimulationError


class JobManager:
    """Admission, placement, and execution of concurrent OMPC jobs."""

    def __init__(
        self,
        cluster: Cluster,
        policy: "str | AdmissionPolicy" = "fifo",
        default_config: OMPCConfig | None = None,
        slowdown_tau: float = 1e-3,
    ):
        if cluster.num_nodes < 3:
            raise ValueError(
                "a multi-tenant cluster needs >= 3 nodes: one manager "
                "node plus at least a 2-node partition"
            )
        self.cluster = cluster
        self.sim = cluster.sim
        self.policy = make_policy(policy)
        self.default_config = default_config or OMPCConfig()
        #: Bounded-slowdown clamp (seconds) for the report metrics.
        self.slowdown_tau = slowdown_tau
        #: Physical node 0 is the login/manager node; jobs get workers.
        self.pool = self._make_pool(cluster)
        #: Every job ever submitted, in submission order.
        self.jobs: list[Job] = []
        #: Jobs waiting for nodes (arrival order; policies re-sort).
        self.queue: list[Job] = []
        #: Currently executing jobs by id.
        self.running: dict[int, Job] = {}
        #: Accumulated node-seconds per tenant (fair-share input).
        self.tenant_usage: dict[str, float] = {}
        #: Cluster-level telemetry: job spans, queue-depth gauge,
        #: busy-node gauge, admission counters.  Shares the cluster's
        #: observer when one is installed so the jobs section lands in
        #: the same utilization report; otherwise records privately.
        self.obs = cluster.obs if cluster.obs.enabled else Observer(self.sim)
        self._ids = itertools.count()
        self._queued_spans: dict[int, object] = {}
        self._busy_node_seconds = 0.0
        self._first_submit: float | None = None
        self._drained = None
        #: Runtime main process per running job (preemption handle).
        self._procs: dict[int, object] = {}
        #: The largest partition the pool could ever offer; submissions
        #: beyond it are programming errors, rejected synchronously.
        self._max_partition = self.pool.potential_capacity

    # ------------------------------------------------------------------
    # subclass hooks (the elastic manager overrides these)
    # ------------------------------------------------------------------
    def _make_pool(self, cluster: Cluster) -> NodePool:
        """Build the worker pool (physical node 0 stays reserved)."""
        return NodePool(cluster, reserved=(0,))

    def _admit(self, job: Job) -> str | None:
        """Admission control at arrival: return a shed-reason string to
        reject the job, or None to let it into the queue.  The base
        manager admits everything (unbounded queue)."""
        return None

    def _quarantine_or_fail(self, job: Job, reason: str, kind: str) -> None:
        """A job exhausted its attempts (``kind='failures'``) or thrashed
        on preemption (``kind='preemption'``).  The base manager simply
        fails it; the elastic manager quarantines it instead."""
        self._finish_job(job, JobState.FAILED, error=reason)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, at: float | None = None) -> Job:
        """Submit a job, arriving at simulated time ``at`` (now if None
        or already past).  Returns the live :class:`Job` record."""
        arrival = self.sim.now if at is None else max(at, self.sim.now)
        if spec.nodes > self._max_partition:
            raise ValueError(
                f"job {spec.name!r} wants {spec.nodes} nodes; the pool "
                f"only has {self._max_partition}"
            )
        job = Job(next(self._ids), spec, submit_time=arrival)
        self.jobs.append(job)
        if self._first_submit is None or arrival < self._first_submit:
            self._first_submit = arrival

        def arrive():
            if arrival > self.sim.now:
                yield self.sim.timeout(arrival - self.sim.now)
            job.submit_time = self.sim.now
            self.obs.count("jobs.submitted")
            shed_reason = self._admit(job)
            if shed_reason is not None:
                self._finish_job(job, JobState.SHED, error=shed_reason)
                return
            self.queue.append(job)
            self._queued_spans[job.job_id] = self.obs.begin(
                "job", f"{spec.name}:queued", 0,
                job=job.job_id, tenant=spec.tenant, nodes=spec.nodes,
            )
            self._schedule()

        self.sim.process(arrive(), name=f"job-arrival:{spec.name}")
        return job

    # ------------------------------------------------------------------
    # scheduling core
    # ------------------------------------------------------------------
    def estimated_end_of(self, job: Job) -> float:
        """When a running job is expected to release its partition
        (+inf for unknown estimates — EASY treats those as immovable)."""
        if job.start_time is None or job.spec.est_runtime <= 0:
            return float("inf")
        return job.start_time + job.spec.est_runtime

    def _schedule(self) -> None:
        """Run the admission policy over the current queue (instantaneous)."""
        # Jobs the shrunken pool can never satisfy fail fast instead of
        # pinning the queue head forever.  ``potential_capacity`` counts
        # offline/warming elastic nodes too, so a job merely waiting for
        # a scale-up is not killed prematurely.
        for job in list(self.queue):
            if job.spec.nodes > self.pool.potential_capacity:
                self.queue.remove(job)
                self._finish_job(
                    job, JobState.FAILED,
                    error=(
                        f"needs {job.spec.nodes} nodes but the pool "
                        f"shrank to {self.pool.potential_capacity}"
                    ),
                )
        for job, backfilled in self.policy.select(list(self.queue), self):
            self.queue.remove(job)
            job.backfilled = backfilled
            job.partition = self.pool.allocate(
                job.spec.nodes, holder=job.spec.name
            )
            self.sim.process(
                self._run_job(job), name=f"job:{job.spec.name}"
            )
        self._update_gauges()

    def _update_gauges(self) -> None:
        self.obs.gauge_set("jobs.queue_depth", len(self.queue))
        self.obs.gauge_set("jobs.running", len(self.running))
        self.obs.gauge_set("jobs.nodes_busy", self.pool.held_count)

    # ------------------------------------------------------------------
    # per-job execution
    # ------------------------------------------------------------------
    def _run_job(self, job: Job):
        job.state = JobState.RUNNING
        job.start_time = self.sim.now
        job.attempts += 1
        self.running[job.job_id] = job
        self.obs.count("jobs.started")
        if job.backfilled:
            self.obs.count("jobs.backfilled")
        queued_span = self._queued_spans.pop(job.job_id, None)
        self.obs.end(queued_span, backfilled=job.backfilled)
        run_span = self.obs.begin(
            "job", f"{job.spec.name}:run", 0,
            job=job.job_id, tenant=job.spec.tenant,
            partition=job.partition, attempt=job.attempts,
        )
        self._update_gauges()

        view = ClusterView(self.cluster, job.partition, name=job.spec.name)
        config = job.spec.config or self.default_config
        program = job.spec.program()
        try:
            if job.spec.needs_fault_tolerance:
                runtime = FaultTolerantRuntime(view.spec, config)
                proc, finish = runtime.launch(
                    program,
                    failures=job.pending_failures,
                    cluster=view,
                )
            else:
                runtime = OMPCRuntime(view.spec, config)
                proc, finish = runtime.launch(program, cluster=view)
            self._procs[job.job_id] = proc
            yield proc
            result = finish()
        except Interrupt as exc:
            self.obs.end(run_span, outcome="preempted")
            self._on_preempted(job, finish(), str(exc.cause))
            return
        except ClusterExhausted as exc:
            # Permanent retires killed every worker of the partition;
            # record the exhaustion and keep serving other tenants.
            self.obs.count("jobs.cluster_exhausted")
            self.obs.end(run_span, outcome="exhausted")
            self._on_crash(job, finish(), f"cluster exhausted: {exc}")
            return
        except RecoveryError as exc:
            self.obs.end(run_span, outcome="crashed")
            self._on_crash(job, finish(), str(exc))
            return
        except SimulationError as exc:
            self.obs.end(run_span, outcome="error")
            self._release_partition(job, dead_virtual=())
            self._finish_job(job, JobState.FAILED, error=str(exc))
            self._schedule()
            return

        job.result = result
        self.obs.end(run_span, outcome="completed", makespan=result.makespan)
        dead_virtual = tuple(getattr(result, "failures", ()) or ())
        self._release_partition(job, dead_virtual=dead_virtual)
        self._finish_job(job, JobState.COMPLETED)
        self._schedule()

    def _on_crash(self, job: Job, partial, reason: str) -> None:
        """Unrecoverable failure: retire dead nodes, requeue or fail."""
        # Nodes the runtime declared dead, plus injected failures whose
        # offset has elapsed (an unrecoverable head crash aborts before
        # the dead head reaches ``result.failures`` — infer it from the
        # clock; failure offsets are relative to runtime startup, so
        # comparing against elapsed wall time over-approximates by at
        # most the startup window, which only strips a failure that was
        # about to fire anyway).
        started = self.sim.now if job.start_time is None else job.start_time
        elapsed = self.sim.now - started
        fired = {f.node for f in job.pending_failures if f.time <= elapsed}
        dead_virtual = tuple(sorted(set(partial.failures) | fired))
        self._release_partition(job, dead_virtual=dead_virtual)
        if job.attempts >= job.spec.max_attempts:
            self._quarantine_or_fail(
                job,
                f"{reason} (gave up after {job.attempts} attempts)",
                kind="failures",
            )
            self._schedule()
            return
        # Strip the failures that already fired (by elapsed time, not by
        # node id) — the retry runs on fresh nodes and must not re-crash
        # on schedule, but a failure still in the future stays armed, so
        # a genuinely poisoned job keeps crashing until it runs out of
        # attempts.
        job.pending_failures = tuple(
            f for f in job.pending_failures if f.time > elapsed
        )
        self._requeue(job)

    def _on_preempted(self, job: Job, partial, cause: str) -> None:
        """The manager evicted this running job for a higher-priority
        one: release its partition and requeue it (no attempt charged —
        the eviction is the cluster's fault, not the job's)."""
        # Injected failures that fired before the eviction really did
        # kill physical nodes; retire them like any crash would.
        started = self.sim.now if job.start_time is None else job.start_time
        elapsed = self.sim.now - started
        fired = {f.node for f in job.pending_failures if f.time <= elapsed}
        dead_virtual = tuple(
            sorted(set(getattr(partial, "failures", ()) or ()) | fired)
        )
        self._release_partition(job, dead_virtual=dead_virtual)
        job.attempts -= 1  # preemption does not consume an attempt
        job.preemptions += 1
        job.pending_failures = tuple(
            f for f in job.pending_failures if f.time > elapsed
        )
        self.obs.count("jobs.preempted")
        if self._preemption_thrash(job):
            return
        self._requeue(job, preempted=True)

    def _preemption_thrash(self, job: Job) -> bool:
        """Hook: True if the job was quarantined for preemption thrash
        (the elastic manager overrides; the base never thrashes)."""
        return False

    def _requeue(self, job: Job, preempted: bool = False) -> None:
        job.state = JobState.PENDING
        job.requeues += 1
        job.start_time = None
        job.partition = ()
        self.queue.append(job)
        self.obs.count("jobs.requeued")
        self._queued_spans[job.job_id] = self.obs.begin(
            "job", f"{job.spec.name}:queued", 0,
            job=job.job_id, requeue=job.requeues, preempted=preempted,
        )
        self._schedule()

    def _release_partition(
        self, job: Job, dead_virtual: tuple[int, ...]
    ) -> None:
        """Return the partition; crashed nodes leave service for good."""
        for virtual in dead_virtual:
            self.pool.retire(job.partition[virtual])
        self.running.pop(job.job_id, None)
        self._procs.pop(job.job_id, None)
        started = self.sim.now if job.start_time is None else job.start_time
        elapsed = self.sim.now - started
        self.tenant_usage[job.spec.tenant] = (
            self.tenant_usage.get(job.spec.tenant, 0.0)
            + len(job.partition) * elapsed
        )
        self._busy_node_seconds += len(job.partition) * elapsed
        self.pool.release(job.partition)

    def _finish_job(
        self, job: Job, state: JobState, error: str | None = None
    ) -> None:
        job.state = state
        job.finish_time = self.sim.now
        job.error = error
        if state is JobState.COMPLETED:
            self.obs.count("jobs.completed")
        else:
            self.obs.count(f"jobs.{state.value}")
            queued_span = self._queued_spans.pop(job.job_id, None)
            self.obs.end(queued_span, outcome=state.value)
        self._update_gauges()
        if (
            self._drained is not None
            and not self._drained.triggered
            and all(j.done for j in self.jobs)
        ):
            self._drained.succeed()

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(
        self, workload: Iterable[tuple[float, JobSpec]] = ()
    ) -> JobsReport:
        """Submit ``(arrival, spec)`` pairs, drive the simulation until
        every job reaches a terminal state, and return the report."""
        for arrival, spec in workload:
            self.submit(spec, at=arrival)
        if not self.jobs:
            return self.report()
        if any(not j.done for j in self.jobs):
            self._drained = self.sim.event("jobs-drained")
            try:
                self.sim.run(until=self._drained)
            finally:
                self._drained = None
        return self.report()

    def report(self) -> JobsReport:
        """Cluster-level telemetry for everything submitted so far."""
        return build_report(self)

    @property
    def busy_node_seconds(self) -> float:
        """Node-seconds consumed by finished executions, plus the
        in-progress time of jobs still running."""
        inflight = sum(
            len(j.partition) * (self.sim.now - j.start_time)
            for j in self.running.values()
            if j.start_time is not None
        )
        return self._busy_node_seconds + inflight
