"""Cluster-wide task schedulers (§4.4).

OMPC keeps worker threads idle while the control thread creates tasks;
at the implicit barrier the *whole* task graph is scheduled statically
with HEFT, then dispatched.  This package provides the HEFT scheduler
with the paper's two adaptations (classical tasks pinned to the head
node; target-data tasks co-scheduled with their consumer/producer) plus
simpler baselines used by the scheduler ablation (Abl. A in DESIGN.md).
"""

from repro.core.scheduler.base import Schedule, Scheduler
from repro.core.scheduler.baselines import (
    MinLoadScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.core.scheduler.heft import HeftScheduler

__all__ = [
    "HeftScheduler",
    "MinLoadScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Schedule",
    "Scheduler",
]
