"""Tests for the distributed event system (Fig. 3 flow)."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NetworkSpec
from repro.core.config import OMPCConfig
from repro.core.events import EventSystem, EventType, _binomial_tree
from repro.mpi import MpiWorld
from repro.omp.task import Buffer, Task, TaskKind, depend_inout


def make_system(n=3, **cfg_kwargs):
    cfg_kwargs.setdefault("first_event_interval", 0.0)
    cfg_kwargs.setdefault("event_origin_overhead", 0.0)
    cfg_kwargs.setdefault("event_handler_overhead", 0.0)
    cluster = Cluster(ClusterSpec(num_nodes=n))
    mpi = MpiWorld(cluster, overhead=0.0)
    events = EventSystem(cluster, mpi, OMPCConfig(**cfg_kwargs))
    events.start()
    return cluster, events


def drive(cluster, gen, name="driver"):
    proc = cluster.sim.process(gen, name=name)
    return cluster.sim.run(until=proc)


class TestLifecycle:
    def test_double_start_rejected(self):
        cluster, events = make_system()
        with pytest.raises(RuntimeError):
            events.start()

    def test_origin_before_start_rejected(self):
        cluster = Cluster(ClusterSpec(num_nodes=2))
        events = EventSystem(cluster, MpiWorld(cluster), OMPCConfig())

        def bad():
            yield from events.alloc(1, 0)

        cluster.sim.process(bad())
        with pytest.raises(RuntimeError, match="not started"):
            cluster.sim.run()

    def test_shutdown_terminates_gates_and_handlers(self):
        cluster, events = make_system()

        def main():
            yield from events.alloc(1, 0)
            yield from events.shutdown()

        drive(cluster, main())
        # After shutdown the heap must drain with no live processes.
        cluster.sim.run(check_deadlock=True)


class TestAllocDelete:
    def test_alloc_creates_entry_on_worker(self):
        cluster, events = make_system()

        def main():
            yield from events.alloc(1, 99)
            yield from events.alloc(2, 99)
            yield from events.delete(2, 99)

        drive(cluster, main())
        assert 99 in events.memories[1]
        assert 99 not in events.memories[2]
        assert cluster.trace.counters["ompc.events.alloc"] == 2
        assert cluster.trace.counters["ompc.events.delete"] == 1


class TestSubmitRetrieve:
    def test_submit_then_retrieve_roundtrip(self):
        cluster, events = make_system()
        payload = [1, 2, 3]

        def main():
            yield from events.submit(1, 5, payload, nbytes=1000)
            back = yield from events.retrieve(1, 5, nbytes=1000)
            return back

        assert drive(cluster, main()) is payload
        assert events.memories[1].read(5) is payload

    def test_submit_charges_transfer_time(self):
        cluster = Cluster(
            ClusterSpec(
                num_nodes=2,
                network=NetworkSpec(latency=0.0, bandwidth=1e6),
            )
        )
        mpi = MpiWorld(cluster, overhead=0.0)
        cfg = OMPCConfig(
            first_event_interval=0.0,
            event_origin_overhead=0.0,
            event_handler_overhead=0.0,
        )
        events = EventSystem(cluster, mpi, cfg)
        events.start()

        def main():
            yield from events.submit(1, 0, None, nbytes=1e6)

        drive(cluster, main())
        # 1 MB at 1 MB/s dominates; control messages add a little more.
        assert cluster.sim.now == pytest.approx(1.0, rel=0.01)


class TestExchange:
    def test_data_flows_worker_to_worker(self):
        cluster, events = make_system(4)
        payload = object()

        def main():
            yield from events.submit(1, 7, payload, nbytes=500)
            yield from events.exchange(1, 3, 7, nbytes=500)

        drive(cluster, main())
        assert events.memories[3].read(7) is payload
        # Source copy is untouched by an exchange (coherency is the
        # data manager's decision, not the event system's).
        assert events.memories[1].read(7) is payload

    def test_exchange_does_not_stage_on_head(self):
        cluster, events = make_system(4)

        def main():
            yield from events.submit(1, 7, "x", nbytes=1000)
            head_rx_before = cluster.network.nics[0].bytes_received
            yield from events.exchange(1, 3, 7, nbytes=1000)
            return head_rx_before

        head_rx_before = drive(cluster, main())
        # Head receives only the small completion, never the payload.
        head_rx_after = cluster.network.nics[0].bytes_received
        assert head_rx_after - head_rx_before < 1000


class TestExecute:
    def test_execute_runs_fn_against_device_memory(self):
        cluster, events = make_system()
        buf = Buffer(nbytes=100, name="A")
        seen = []
        task = Task(
            task_id=0,
            kind=TaskKind.TARGET,
            deps=(depend_inout(buf),),
            cost=0.0,
            fn=lambda a: seen.append(a),
        )

        def main():
            yield from events.submit(1, buf.buffer_id, "payload", buf.nbytes)
            yield from events.execute(1, task)

        drive(cluster, main())
        assert seen == ["payload"]

    def test_execute_charges_compute_cost(self):
        cluster, events = make_system()
        task = Task(task_id=0, kind=TaskKind.TARGET, cost=2.0)

        def main():
            yield from events.execute(1, task)

        drive(cluster, main())
        assert cluster.sim.now == pytest.approx(2.0, rel=0.01)

    def test_execute_with_intra_node_threads(self):
        cluster, events = make_system()
        task = Task(
            task_id=0, kind=TaskKind.TARGET, cost=8.0, meta={"omp_threads": 4}
        )

        def main():
            yield from events.execute(1, task)

        drive(cluster, main())
        assert cluster.sim.now == pytest.approx(2.0, rel=0.01)

    def test_missing_buffer_surfaces_as_error(self):
        from repro.core.memory import DeviceMemoryError

        cluster, events = make_system()
        buf = Buffer(nbytes=100)
        task = Task(
            task_id=0,
            kind=TaskKind.TARGET,
            deps=(depend_inout(buf),),
            fn=lambda a: None,
        )

        def main():
            yield from events.execute(1, task)  # no submit first!

        cluster.sim.process(main())
        with pytest.raises(DeviceMemoryError):
            cluster.sim.run()


class TestBroadcast:
    def test_all_destinations_receive(self):
        cluster, events = make_system(6)
        payload = {"model": 1}

        def main():
            yield from events.submit(1, 3, payload, nbytes=100)
            yield from events.broadcast(1, [2, 3, 4, 5], 3, nbytes=100)

        drive(cluster, main())
        for node in (2, 3, 4, 5):
            assert events.memories[node].read(3) is payload

    def test_empty_destination_list_is_noop(self):
        cluster, events = make_system()

        def main():
            yield from events.broadcast(1, [], 3, nbytes=100)

        drive(cluster, main())
        assert cluster.trace.counters.get("ompc.bytes_broadcast", 0) == 0


class TestBinomialTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 16])
    def test_tree_spans_all_participants(self, n):
        participants = list(range(10, 10 + n))
        tree = _binomial_tree(participants)
        assert set(tree) == set(participants)
        # Exactly one root; every non-root reachable from it.
        roots = [p for p, (parent, _c) in tree.items() if parent is None]
        assert roots == [participants[0]]
        reached = set()
        frontier = [participants[0]]
        while frontier:
            node = frontier.pop()
            reached.add(node)
            frontier.extend(tree[node][1])
        assert reached == set(participants)

    def test_children_parent_consistency(self):
        tree = _binomial_tree(list(range(9)))
        for node, (_parent, children) in tree.items():
            for child in children:
                assert tree[child][0] == node


class TestTagIsolation:
    def test_concurrent_events_use_distinct_tags(self):
        cluster, events = make_system(4)

        def main():
            procs = [
                cluster.sim.process(
                    events.submit(node, node, f"p{node}", nbytes=100)
                )
                for node in (1, 2, 3)
            ]
            from repro.sim.primitives import AllOf

            yield AllOf(cluster.sim, procs)

        drive(cluster, main())
        for node in (1, 2, 3):
            assert events.memories[node].read(node) == f"p{node}"
        assert events.tags.allocated == 3

    def test_first_event_interval_charged_once(self):
        cluster, events = make_system(2, first_event_interval=0.0047)

        def main():
            yield from events.alloc(1, 0)
            yield from events.alloc(1, 1)

        drive(cluster, main())
        spans = list(cluster.trace.find("ompc", "first_event_interval"))
        assert len(spans) == 1
        assert spans[0].duration == pytest.approx(0.0047)
