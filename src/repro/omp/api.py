"""Programmer-facing API: build an OpenMP-annotated program.

An :class:`OmpProgram` records, in program order, what the control
thread would dispatch: mapped buffers, ``target enter/exit data
nowait`` transfers, ``target nowait`` compute tasks, and classical
``task`` regions.  Listing 1 of the paper becomes::

    prog = OmpProgram()
    A = prog.buffer(nbytes=N * 8, data=my_array, name="A")
    prog.target_enter_data(A)                        # map(to: A[:N]) nowait
    prog.target(foo, depend=[inout(A)], cost=0.05)   # target nowait
    prog.target(bar, depend=[inout(A)], cost=0.05)   # target nowait
    prog.target_exit_data(A)                         # map(release/from) nowait

The same program object runs unchanged on the single-node host runtime
(:class:`repro.omp.host.HostRuntime`) or on the OMPC cluster runtime
(:class:`repro.core.runtime.OMPCRuntime`) — the paper's central claim.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable

from repro.omp.depend import DependenceAnalyzer
from repro.omp.task import (
    Buffer,
    Dep,
    DepType,
    Task,
    TaskKind,
    depend_out,
)
from repro.omp.taskgraph import TaskGraph


class OmpProgram:
    """An ordered sequence of annotated tasks plus the derived graph."""

    def __init__(self, name: str = "program"):
        self.name = name
        self.buffers: list[Buffer] = []
        self.graph = TaskGraph()
        self._analyzer = DependenceAnalyzer()
        self._task_ids = itertools.count()

    # -- buffers --------------------------------------------------------
    def buffer(self, nbytes: float, data: Any = None, name: str = "") -> Buffer:
        """Declare a mappable buffer (a future ``map`` clause operand)."""
        buf = Buffer(nbytes, data, name)
        self.buffers.append(buf)
        return buf

    # -- task creation ----------------------------------------------------
    def _add(self, task: Task) -> Task:
        self.graph.add_task(task)
        for pred, succ in self._analyzer.edges_for(task):
            self.graph.add_edge(pred, succ)
        return task

    def target(
        self,
        fn: Callable[..., Any] | None = None,
        depend: Iterable[Dep] = (),
        cost: float = 0.0,
        name: str = "",
        accesses: Iterable[Dep] = (),
        **meta: Any,
    ) -> Task:
        """``#pragma omp target nowait depend(...)`` — offloadable task.

        ``cost`` is the nominal compute time on a speed-1.0 node; ``fn``
        (optional) receives the dependence buffers' ``data`` payloads in
        clause order when the task runs.  ``accesses`` optionally states
        the region's *actual* footprint when it differs from ``depend``
        (feeds the race detector; scheduling still follows ``depend``).
        """
        return self._add(
            Task(
                task_id=next(self._task_ids),
                kind=TaskKind.TARGET,
                deps=tuple(depend),
                cost=cost,
                fn=fn,
                name=name,
                accesses=tuple(accesses),
                meta=dict(meta),
            )
        )

    def task(
        self,
        fn: Callable[..., Any] | None = None,
        depend: Iterable[Dep] = (),
        cost: float = 0.0,
        name: str = "",
        accesses: Iterable[Dep] = (),
        **meta: Any,
    ) -> Task:
        """``#pragma omp task depend(...)`` — classical host task.

        Under OMPC these are unconditionally scheduled on the head node
        (§4.4), preserving OpenMP semantics.
        """
        return self._add(
            Task(
                task_id=next(self._task_ids),
                kind=TaskKind.CLASSICAL,
                deps=tuple(depend),
                cost=cost,
                fn=fn,
                name=name,
                accesses=tuple(accesses),
                meta=dict(meta),
            )
        )

    def target_enter_data(self, *buffers: Buffer, name: str = "") -> Task:
        """``target enter data map(to: ...) nowait depend(out: ...)``.

        Declares each buffer as written (the device copy is created), so
        later readers of the buffer depend on this transfer — exactly
        Listing 1 line 1.
        """
        if not buffers:
            raise ValueError("enter data requires at least one buffer")
        deps = tuple(depend_out(b) for b in buffers)
        return self._add(
            Task(
                task_id=next(self._task_ids),
                kind=TaskKind.TARGET_ENTER_DATA,
                deps=deps,
                buffers=tuple(buffers),
                name=name,
            )
        )

    def target_exit_data(self, *buffers: Buffer, name: str = "") -> Task:
        """``target exit data map(from/release: ...) nowait depend(in|out)``.

        Reads each buffer's final value (retrieving it to the host) and
        releases the device copies — Listing 1 line 6.
        """
        if not buffers:
            raise ValueError("exit data requires at least one buffer")
        deps = tuple(Dep(b, DepType.INOUT) for b in buffers)
        return self._add(
            Task(
                task_id=next(self._task_ids),
                kind=TaskKind.TARGET_EXIT_DATA,
                deps=deps,
                buffers=tuple(buffers),
                name=name,
            )
        )

    # -- inspection ----------------------------------------------------------
    @property
    def tasks(self) -> list[Task]:
        return list(self.graph.tasks())

    def target_tasks(self) -> list[Task]:
        return [t for t in self.graph.tasks() if t.kind == TaskKind.TARGET]

    def validate(self) -> None:
        """Check structural invariants before handing to a runtime."""
        self.graph.validate()
        known = {b.buffer_id for b in self.buffers}
        for task in self.graph.tasks():
            for buf in task.touched:
                if buf.buffer_id not in known:
                    raise ValueError(
                        f"task {task.name} touches undeclared buffer {buf.name}; "
                        "declare buffers via OmpProgram.buffer()"
                    )
            for dep in task.accesses:
                if dep.buffer.buffer_id not in known:
                    raise ValueError(
                        f"task {task.name} accesses undeclared buffer "
                        f"{dep.buffer.name}; declare buffers via "
                        "OmpProgram.buffer()"
                    )
            types: dict[int, set[DepType]] = {}
            for dep in task.deps:
                types.setdefault(dep.buffer.buffer_id, set()).add(dep.type)
            for buffer_id, seen in types.items():
                if DepType.IN in seen and DepType.OUT in seen:
                    buf = next(
                        d.buffer for d in task.deps
                        if d.buffer.buffer_id == buffer_id
                    )
                    raise ValueError(
                        f"task {task.name} lists buffer {buf.name} as both "
                        "depend(in) and depend(out); use depend(inout) for "
                        "a read-modify-write dependence"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<OmpProgram {self.name!r} tasks={len(self.graph)} "
            f"edges={self.graph.num_edges} buffers={len(self.buffers)}>"
        )
