"""Nonblocking-operation handles, mirroring ``MPI_Request``."""

from __future__ import annotations

from repro.sim.core import Event


class Request:
    """Handle for an in-flight nonblocking send or receive.

    ``yield from req.wait()`` blocks the calling process until the
    operation completes and returns its value (the received message's
    payload for receives, ``None`` for sends).  ``test()`` polls without
    blocking.
    """

    def __init__(self, event: Event, kind: str):
        self._event = event
        self.kind = kind

    @property
    def event(self) -> Event:
        return self._event

    def test(self) -> bool:
        """True once the operation has completed."""
        return self._event.processed

    def wait(self):
        """Generator: wait for completion and return the result."""
        value = yield self._event
        return value

    @staticmethod
    def wait_all(requests: list["Request"]):
        """Generator: wait for every request (like ``MPI_Waitall``)."""
        results = []
        for req in requests:
            value = yield req.event
            results.append(value)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.test() else "pending"
        return f"<Request {self.kind} {state}>"
