"""Awave: Reverse Time Migration seismic imaging (§6.2, Fig. 7b).

Awave solves the acoustic wave equation with finite differences to
produce subsurface images from surface seismic data.  Each *shot* (one
source firing recorded by all receivers) migrates independently; shots
are distributed one per worker node through the OMPC programming model
and their images are stacked.

The paper evaluates two published 2-D models we cannot redistribute
(Sigsbee [32] and Marmousi [8]); :mod:`repro.apps.awave.models` builds
synthetic models with the same qualitative structure — a salt body with
a sharp velocity contrast, and a strongly layered/faulted medium.
"""

from repro.apps.awave.models import VelocityModel, marmousi_like, sigsbee_like
from repro.apps.awave.ompc_app import AwaveResult, run_awave
from repro.apps.awave.rtm import RtmConfig, migrate_shot, rtm_cost_seconds
from repro.apps.awave.solver import AcousticSolver2D, ricker_wavelet

__all__ = [
    "AcousticSolver2D",
    "AwaveResult",
    "RtmConfig",
    "VelocityModel",
    "marmousi_like",
    "migrate_shot",
    "ricker_wavelet",
    "rtm_cost_seconds",
    "run_awave",
    "sigsbee_like",
]
