"""Unit tests for the utilization summary and its text rendering."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.obs import format_utilization, utilization_summary
from repro.obs.observer import Observer


class FakeSim:
    def __init__(self):
        self.now = 0.0


def make(num_nodes=3):
    cluster = Cluster(ClusterSpec(num_nodes=num_nodes))
    sim = FakeSim()
    return cluster, sim, Observer(sim)


class TestUtilizationSummary:
    def test_link_usage_from_gauge_and_byte_counter(self):
        cluster, sim, obs = make()
        obs.gauge_add("link.1->2", 1, node=1)  # busy on [0, 4)
        sim.now = 4.0
        obs.gauge_add("link.1->2", -1, node=1)
        obs.count("link.1->2.bytes", 1000.0)
        report = utilization_summary(obs, cluster, makespan=8.0)
        (link,) = report.links
        assert (link.src, link.dst) == (1, 2)
        assert link.nbytes == 1000.0
        assert link.busy_fraction == pytest.approx(0.5)
        bandwidth = cluster.network.spec.bandwidth
        assert link.occupancy == pytest.approx(1000.0 / (8.0 * bandwidth))
        # Byte counters fold into links, not the counter listing.
        assert "link.1->2.bytes" not in report.counters

    def test_node_core_occupancy(self):
        cluster, sim, obs = make()
        cores = cluster.node(1).spec.cores
        obs.gauge_add("node1.cpu_busy", cores, node=1)  # all busy [0, 5)
        sim.now = 5.0
        obs.gauge_add("node1.cpu_busy", -cores, node=1)
        report = utilization_summary(obs, cluster, makespan=10.0)
        (node,) = report.nodes
        assert node.node == 1
        assert node.avg_busy == pytest.approx(cores / 2)
        assert node.occupancy == pytest.approx(0.5)

    def test_head_inflight_and_queue_depths(self):
        cluster, sim, obs = make()
        obs.gauge_add("head.inflight", 3)
        obs.gauge_add("node2.evq", 2, node=2)
        sim.now = 10.0
        report = utilization_summary(obs, cluster, makespan=10.0, head_threads=48)
        assert report.head_inflight_max == 3
        assert report.head_threads == 48
        assert report.queues == [(2, pytest.approx(2.0), 2.0)]

    def test_zero_makespan_falls_back_to_span_extent(self):
        cluster, _sim, obs = make()
        obs.span("task", "t", 0, 0.0, 4.0)
        obs.gauge_add("head.inflight", 1)
        report = utilization_summary(obs, cluster, makespan=0.0)
        assert report.head_inflight_avg == pytest.approx(1.0)


class TestFormatUtilization:
    def test_renders_all_sections(self):
        cluster, sim, obs = make()
        obs.gauge_add("link.1->2", 1, node=1)
        obs.count("link.1->2.bytes", 2048.0)
        obs.gauge_add("node1.cpu_busy", 4, node=1)
        obs.gauge_add("node1.evq", 1, node=1)
        obs.gauge_add("head.inflight", 2)
        obs.count("ompc.events.execute", 5)
        sim.now = 1.0
        report = utilization_summary(obs, cluster, makespan=1.0, head_threads=48)
        text = format_utilization(report)
        assert text.startswith("== utilization (makespan 1000.000 ms) ==")
        assert "1->2" in text and "2.0 KiB" in text
        assert "node1" in text
        assert "head in-flight slots: avg 2.00, max 2 of 48" in text
        assert "event queue node1" in text
        assert "ompc.events.execute = 5" in text
        assert "heartbeat health" not in text  # no hb.* counters folded

    def test_heartbeat_health_line(self):
        cluster, sim, obs = make()
        obs.gauge_add("head.inflight", 1)
        obs.count("hb.missed_windows", 7)
        obs.count("hb.suspect_reports", 3)
        obs.count("hb.suspicions_cleared", 2)
        obs.count("hb.false_positives", 1)
        obs.count("hb.detections", 1)
        sim.now = 1.0
        report = utilization_summary(obs, cluster, makespan=1.0)
        text = format_utilization(report)
        assert (
            "heartbeat health: 7 missed windows, 3 suspicions "
            "(2 cleared, 1 false positives), 1 confirmed detections"
        ) in text
