"""MPI-layer errors."""

from repro.sim.errors import SimulationError


class MpiError(SimulationError):
    """Invalid MPI usage (bad rank, bad tag, mismatched communicator)."""
