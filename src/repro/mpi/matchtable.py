"""Slotted MPI message matching: the fast kernel's match tables.

The reference implementation of message matching is a
:class:`~repro.sim.resources.Store` holding every buffered message for
one ``(rank, comm)`` pair, with each receive expressed as a predicate
closure over ``(src, tag)``.  Matching then costs a linear scan of all
buffered messages per receive and a getters × items fixpoint per
delivery — fine at 4 nodes, dominant at 64.

:class:`MatchStore` keeps the exact same externally observable behavior
(same events, created in the same order, firing at the same times — the
digest property tests assert bit-identical event streams against the
reference) while making both directions O(1) for the common case:

* buffered messages live in per-``(src, tag)`` slots, stamped with a
  global arrival sequence so wildcard receives can compare slot heads;
  the ``ANY_SOURCE``-by-tag pattern — mass fan-in on one tag — skips
  even that scan via a per-tag arrival FIFO with lazy stale discard;
* pending receives live in four pattern buckets — exact ``(src, tag)``,
  ``ANY_SOURCE``-by-tag, ``ANY_TAG``-by-src, and fully wild — stamped
  with a posting sequence so a delivery picks the earliest-posted match
  by comparing at most four bucket heads;
* ``cancel`` is lazy O(1): withdrawn receives are dropped from the
  pending set and swept from bucket heads on the next match attempt
  (the heartbeat monitor cancels one receive per missed window, which
  made the reference's O(getters) scan a hot path under fault storms).

Equivalence argument: an unbounded Store is always at a fixpoint where
no waiting getter matches any buffered item.  A ``put`` can therefore
pair only the new message — with the *earliest-posted* matching receive
(the reference dispatch scans getters in FIFO order).  A ``get`` can
pair only the new receive — with the *earliest-arrival* matching
message (the reference getter scans items in FIFO order).  Those two
rules are exactly what the bucket/slot heads implement.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.core import Event, Simulator
from repro.sim.resources import Store

#: Wildcards (mirrors :data:`repro.mpi.comm.ANY_SOURCE` / ``ANY_TAG``
#: without a circular import).
_ANY = -1


class MatchStore(Store):
    """A Store specialized for MPI ``(src, tag)`` matching.

    Only the unbounded form is supported (MPI matching queues are never
    bounded), and receives must be posted through :meth:`get_match`;
    the generic predicate :meth:`get` is disabled so an accidental
    fallback to linear matching cannot hide here.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        super().__init__(sim, capacity=None, name=name)
        #: Buffered messages per (src, tag), as (arrival_seq, msg).
        self._slots: dict[tuple[int, int], deque[tuple[int, Any]]] = {}
        #: Per-tag arrival FIFO of (arrival_seq, slot_key).  An
        #: ``ANY_SOURCE``-by-tag receive pops this instead of scanning
        #: every live ``(src, tag)`` slot: with N sources fanning in on
        #: one tag (the event system's drain pattern) the slot scan is
        #: O(N) per receive — O(N^2) per drain.  Entries whose message
        #: was consumed by another pattern are discarded lazily; within
        #: one slot arrivals strictly increase, so the first live entry
        #: is the tag's global earliest arrival — the same message the
        #: scan would pick, keeping the digest tests bit-identical.
        self._tag_fifo: dict[int, deque[tuple[int, tuple[int, int]]]] = {}
        self._arrival = 0
        #: Pending receives per pattern, as (post_seq, event, key).
        self._g_exact: dict[tuple[int, int], deque[tuple[int, Event]]] = {}
        self._g_bytag: dict[int, deque[tuple[int, Event]]] = {}
        self._g_bysrc: dict[int, deque[tuple[int, Event]]] = {}
        self._g_any: deque[tuple[int, Event]] = deque()
        self._posted = 0
        #: Receives still pending (drives O(1) cancel; bucket entries
        #: missing from this set were cancelled and are swept lazily).
        self._pending: set[Event] = set()
        self._n_items = 0

    # -- Store API kept coherent ------------------------------------------
    def __len__(self) -> int:
        return self._n_items

    @property
    def items(self) -> tuple:
        """Buffered messages in arrival order (inspection only)."""
        entries = [e for slot in self._slots.values() for e in slot]
        entries.sort()
        return tuple(msg for _arr, msg in entries)

    def peek(self, filter=None) -> Any | None:
        for item in self.items:
            if filter is None or filter(item):
                return item
        return None

    def get(self, filter=None) -> Event:
        raise TypeError(
            "MatchStore receives must use get_match(src, tag); "
            "predicate get() would reintroduce the linear scan"
        )

    # -- matching ----------------------------------------------------------
    def _live_head(self, bucket: deque[tuple[int, Event]] | None):
        """First non-cancelled entry of a bucket (sweeping stale heads)."""
        if not bucket:
            return None
        pending = self._pending
        while bucket:
            entry = bucket[0]
            if entry[1] in pending:
                return entry
            bucket.popleft()  # cancelled; swept lazily
        return None

    def put(self, item: Any) -> Event:
        ev = self.sim.event(self._put_name)
        ev._value = item  # inlined succeed() on a fresh event
        self.sim._schedule(ev)
        src = item.src
        tag = item.tag
        # Earliest-posted pending receive among the four pattern buckets.
        best = self._live_head(self._g_exact.get((src, tag)))
        best_bucket = None
        cand = self._live_head(self._g_bytag.get(tag))
        if cand is not None and (best is None or cand[0] < best[0]):
            best, best_bucket = cand, self._g_bytag[tag]
        cand = self._live_head(self._g_bysrc.get(src))
        if cand is not None and (best is None or cand[0] < best[0]):
            best, best_bucket = cand, self._g_bysrc[src]
        cand = self._live_head(self._g_any)
        if cand is not None and (best is None or cand[0] < best[0]):
            best, best_bucket = cand, self._g_any
        if best is not None:
            if best_bucket is None:
                best_bucket = self._g_exact[(src, tag)]
            best_bucket.popleft()
            gev = best[1]
            self._pending.discard(gev)
            gev._value = item
            self.sim._schedule(gev)
        else:
            slot = self._slots.get((src, tag))
            if slot is None:
                slot = deque()
                self._slots[(src, tag)] = slot
            slot.append((self._arrival, item))
            fifo = self._tag_fifo.get(tag)
            if fifo is None:
                fifo = deque()
                self._tag_fifo[tag] = fifo
            fifo.append((self._arrival, (src, tag)))
            self._arrival += 1
            self._n_items += 1
        return ev

    def get_match(self, src: int, tag: int) -> Event:
        """Post a receive for ``(src, tag)`` (either may be ``-1``/ANY)."""
        ev = self.sim.event(self._get_name)
        # Earliest-arrival buffered message matching the pattern.
        best_key: tuple[int, int] | None = None
        best_arr = -1
        if src != _ANY and tag != _ANY:
            slot = self._slots.get((src, tag))
            if slot:
                best_key = (src, tag)
                best_arr = slot[0][0]
        elif src == _ANY and tag != _ANY:
            # ANY_SOURCE by tag: pop the per-tag arrival FIFO instead
            # of scanning every live slot.  Entries are stale when the
            # slot is gone or its head arrival moved past the recorded
            # one (consumed by an exact / by-src / fully-wild receive);
            # the first live entry is the tag's earliest arrival.
            fifo = self._tag_fifo.get(tag)
            while fifo:
                arr, key = fifo[0]
                slot = self._slots.get(key)
                if slot is not None and slot[0][0] == arr:
                    fifo.popleft()
                    best_key = key
                    best_arr = arr
                    break
                fifo.popleft()  # stale: message already consumed
            if fifo is not None and not fifo:
                del self._tag_fifo[tag]
        else:
            # Wildcard: compare the heads of the matching slots.  Slots
            # are deleted when drained, so this scans live traffic
            # classes, not history.
            for key, slot in self._slots.items():
                if src != _ANY and key[0] != src:
                    continue
                if tag != _ANY and key[1] != tag:
                    continue
                arr = slot[0][0]
                if best_key is None or arr < best_arr:
                    best_key = key
                    best_arr = arr
        if best_key is not None:
            slot = self._slots[best_key]
            _arr, item = slot.popleft()
            if not slot:
                del self._slots[best_key]
            self._n_items -= 1
            ev._value = item  # inlined succeed()
            self.sim._schedule(ev)
            return ev
        entry = (self._posted, ev)
        self._posted += 1
        self._pending.add(ev)
        if src != _ANY and tag != _ANY:
            bucket = self._g_exact.get((src, tag))
            if bucket is None:
                bucket = deque()
                self._g_exact[(src, tag)] = bucket
            bucket.append(entry)
        elif src == _ANY and tag != _ANY:
            bucket = self._g_bytag.get(tag)
            if bucket is None:
                bucket = deque()
                self._g_bytag[tag] = bucket
            bucket.append(entry)
        elif src != _ANY:
            bucket = self._g_bysrc.get(src)
            if bucket is None:
                bucket = deque()
                self._g_bysrc[src] = bucket
            bucket.append(entry)
        else:
            self._g_any.append(entry)
        return ev

    def cancel(self, get_event: Event) -> bool:
        """Withdraw a pending receive in O(1) (lazy bucket sweep)."""
        if get_event in self._pending:
            self._pending.discard(get_event)
            return True
        return False
