"""Tests for the acoustic FD solver: stability, physics sanity."""

import numpy as np
import pytest

from repro.apps.awave import AcousticSolver2D, VelocityModel, ricker_wavelet
from repro.apps.awave.solver import stable_dt


def homogeneous(v=2000.0, nz=60, nx=60, dx=10.0):
    return VelocityModel("homo", np.full((nz, nx), v), dx)


class TestRickerWavelet:
    def test_shape_and_peak(self):
        w = ricker_wavelet(f0=15.0, dt=1e-3, nt=200)
        assert w.shape == (200,)
        assert w.max() == pytest.approx(1.0, abs=1e-6)

    def test_zero_mean_tail(self):
        w = ricker_wavelet(f0=20.0, dt=1e-3, nt=400)
        assert abs(w[-1]) < 1e-8  # decayed to nothing

    def test_validation(self):
        with pytest.raises(ValueError):
            ricker_wavelet(0.0, 1e-3, 100)
        with pytest.raises(ValueError):
            ricker_wavelet(10.0, 1e-3, 0)


class TestStability:
    def test_stable_dt_formula(self):
        m = homogeneous(v=4000.0, dx=10.0)
        assert stable_dt(m) == pytest.approx(0.5 * 10.0 / 4000.0)

    def test_dt_above_cfl_rejected(self):
        m = homogeneous()
        with pytest.raises(ValueError, match="CFL"):
            AcousticSolver2D(m, dt=stable_dt(m) * 2)

    def test_field_stays_bounded(self):
        m = homogeneous()
        solver = AcousticSolver2D(m)
        w = ricker_wavelet(15.0, solver.dt, 300)
        _, snaps = solver.propagate(5, 30, w, snapshot_every=50)
        for s in snaps:
            assert np.isfinite(s).all()
            assert np.abs(s).max() < 1e3


class TestPhysics:
    def test_wave_propagates_at_model_velocity(self):
        v, dx = 2000.0, 10.0
        m = homogeneous(v=v, nz=100, nx=100, dx=dx)
        solver = AcousticSolver2D(m, sponge_cells=0)
        nt = 100  # keep the wavefront well inside the grid
        w = ricker_wavelet(15.0, solver.dt, nt)
        _, snaps = solver.propagate(50, 50, w, snapshot_every=nt)
        field = np.abs(snaps[-1])
        # Expected radius of the wavefront at t = nt*dt (minus the
        # source delay t0 = 1.5/f0).
        t = nt * solver.dt - 1.5 / 15.0
        expected_radius = v * t / dx
        # Center of energy ring: find the radius of maximum energy.
        zz, xx = np.mgrid[0:100, 0:100]
        r = np.hypot(zz - 50, xx - 50).round().astype(int)
        energy_at_r = np.bincount(r.ravel(), weights=(field**2).ravel())
        peak_radius = int(np.argmax(energy_at_r[:45]))
        assert peak_radius == pytest.approx(expected_radius, abs=4)

    def test_sponge_absorbs_energy(self):
        m = homogeneous(nz=80, nx=80)
        sponged = AcousticSolver2D(m, sponge_cells=20)
        hard = AcousticSolver2D(m, sponge_cells=0)
        nt = 500  # long enough for the wave to hit the boundary
        w = ricker_wavelet(15.0, sponged.dt, nt)
        _, snaps_s = sponged.propagate(40, 40, w, snapshot_every=nt)
        _, snaps_h = hard.propagate(40, 40, w, snapshot_every=nt)
        assert (snaps_s[-1] ** 2).sum() < 0.5 * (snaps_h[-1] ** 2).sum()

    def test_receivers_record_arrival(self):
        v, dx = 2000.0, 10.0
        # 81 columns: the grid (and its sponges) is mirror-symmetric
        # about the source column 40.
        m = homogeneous(v=v, nz=80, nx=81, dx=dx)
        solver = AcousticSolver2D(m)
        nt = 400
        w = ricker_wavelet(15.0, solver.dt, nt)
        receivers = np.array([25, 55])
        record, _ = solver.propagate(40, 40, w, receiver_ix=receivers)
        assert record is not None
        np.testing.assert_allclose(
            record.data[:, 0], record.data[:, 1], atol=1e-12
        )
        assert np.abs(record.data).max() > 0

    def test_source_position_validated(self):
        solver = AcousticSolver2D(homogeneous())
        with pytest.raises(ValueError):
            solver.propagate(500, 0, np.zeros(10))


class TestAdjoint:
    def test_snapshots_align_with_forward(self):
        m = homogeneous(nz=50, nx=50)
        solver = AcousticSolver2D(m)
        nt, every = 120, 10
        w = ricker_wavelet(20.0, solver.dt, nt)
        receivers = np.arange(5, 45, 5)
        record, fwd = solver.propagate(
            5, 25, w, receiver_ix=receivers, snapshot_every=every
        )
        bwd = solver.propagate_adjoint(record, snapshot_every=every)
        assert len(fwd) == len(bwd) == nt // every
        assert all(b.shape == (50, 50) for b in bwd)
